//! Structured, leveled events in a bounded ring buffer.
//!
//! An [`Event`] is the runtime's replacement for an ad-hoc `eprintln!`:
//! a severity [`Level`], a monotonic timestamp, the emitting process
//! and thread, a human-readable message, and typed key-value
//! [`FieldValue`] fields (so "which transport, which generation, which
//! attempt" are data, not words buried in a sentence). Events pass a
//! cheap atomic level check first, then land in a fixed-capacity ring
//! (old events are dropped, never the process), and events at or above
//! the stderr threshold are also rendered as one human-readable line —
//! which is what keeps operator output from regressing when `eprintln!`
//! call sites migrate here.
//!
//! Every event is firm-wire encodable, one frame per line
//! ([`Event::encode`] / [`Event::decode`] round-trip exactly), so an
//! exported `--obs-out` JSONL file is machine-parseable with the same
//! codec the fleet protocol uses.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use firm_wire::{DecodeError, JsonValue, Obj, WireDecode, WireEncode};

/// Event severity, ordered from most to least urgent.
///
/// The numeric representation is part of the `FIRM_LOG` contract:
/// enabling a level enables everything more urgent than it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A failure the runtime had to work around (or could not).
    Error = 1,
    /// Something unexpected that the runtime absorbed (worker recycled,
    /// frame dropped).
    Warn = 2,
    /// Operator-relevant lifecycle events (listening, restarted).
    Info = 3,
    /// Per-dispatch / per-session detail.
    Debug = 4,
    /// Everything, including per-scenario timings.
    Trace = 5,
}

impl Level {
    /// The canonical lowercase label (`"info"`, `"warn"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub(crate) fn from_u8(n: u8) -> Option<Level> {
        Some(match n {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => return None,
        })
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected off|error|warn|info|debug|trace)"
            )),
        }
    }
}

/// A typed field value — events carry data, not pre-formatted strings,
/// so exported JSONL stays machine-readable.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (ids, counts, generations).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rates, seconds).
    F64(f64),
    /// A string (labels, reasons).
    Str(String),
    /// A flag.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(n) => write!(f, "{n}"),
            FieldValue::I64(n) => write!(f, "{n}"),
            FieldValue::F64(x) => write!(f, "{x}"),
            FieldValue::Str(s) => {
                if s.contains([' ', '"', '=']) {
                    write!(f, "{s:?}")
                } else {
                    f.write_str(s)
                }
            }
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}

field_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl WireEncode for FieldValue {
    fn encode(&self) -> JsonValue {
        match self {
            FieldValue::U64(n) => JsonValue::U64(*n),
            FieldValue::I64(n) => n.encode(),
            FieldValue::F64(x) => JsonValue::F64(*x),
            FieldValue::Str(s) => JsonValue::Str(s.clone()),
            FieldValue::Bool(b) => JsonValue::Bool(*b),
        }
    }
}

impl WireDecode for FieldValue {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(match v {
            JsonValue::U64(n) => FieldValue::U64(*n),
            JsonValue::I64(n) => FieldValue::I64(*n),
            JsonValue::F64(x) => FieldValue::F64(*x),
            JsonValue::Str(s) => FieldValue::Str(s.clone()),
            JsonValue::Bool(b) => FieldValue::Bool(*b),
            other => return Err(DecodeError::expected("scalar field value", other)),
        })
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic microseconds since this process's obs epoch (the first
    /// obs call). Orders events within one process; never wall clock,
    /// so it cannot go backwards.
    pub ts_us: u64,
    /// Severity.
    pub level: Level,
    /// The emitting component (`"fleet supervisor"`,
    /// `"firm-fleet-worker"`, ...) — doubles as the human-readable
    /// stderr line's prefix.
    pub target: &'static str,
    /// The emitting OS process (distinguishes workers in merged JSONL).
    pub pid: u64,
    /// A small per-process thread ordinal (0 = first thread to emit).
    pub thread: u64,
    /// The human-readable message.
    pub message: String,
    /// Typed key-value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Renders the single-line human form used for stderr:
    /// `target: message key=value ...`.
    pub fn render_human(&self) -> String {
        let mut line = format!("{}: {}", self.target, self.message);
        for (k, v) in &self.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        line
    }
}

impl WireEncode for Event {
    fn encode(&self) -> JsonValue {
        let fields = JsonValue::Object(
            self.fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.encode()))
                .collect(),
        );
        Obj::tagged("event")
            .field("ts_us", self.ts_us)
            .field("level", self.level.label())
            .field("target", self.target)
            .field("pid", self.pid)
            .field("thread", self.thread)
            .field("message", self.message.as_str())
            .field("fields", fields)
            .build()
    }
}

/// The owned-decode counterpart of [`Event`] (decoding cannot resurrect
/// `&'static str` keys, so keys and target come back owned).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// See [`Event::ts_us`].
    pub ts_us: u64,
    /// See [`Event::level`].
    pub level: Level,
    /// See [`Event::target`].
    pub target: String,
    /// See [`Event::pid`].
    pub pid: u64,
    /// See [`Event::thread`].
    pub thread: u64,
    /// See [`Event::message`].
    pub message: String,
    /// See [`Event::fields`].
    pub fields: Vec<(String, FieldValue)>,
}

impl WireDecode for EventRecord {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        if v.tag()? != "event" {
            return Err(DecodeError::new(format!(
                "expected an event frame, found type `{}`",
                v.tag()?
            )));
        }
        let level_label: String = v.field("level")?;
        let level = Level::from_str(&level_label).map_err(DecodeError::new)?;
        let fields_doc: JsonValue = v.field("fields")?;
        let JsonValue::Object(entries) = fields_doc else {
            return Err(DecodeError::new("event fields must be an object"));
        };
        let fields = entries
            .iter()
            .map(|(k, fv)| Ok((k.clone(), FieldValue::decode(fv)?)))
            .collect::<Result<Vec<_>, DecodeError>>()?;
        Ok(EventRecord {
            ts_us: v.field("ts_us")?,
            level,
            target: v.field("target")?,
            pid: v.field("pid")?,
            thread: v.field("thread")?,
            message: v.field("message")?,
            fields,
        })
    }
}

/// The bounded event store: a fixed-capacity ring that drops the oldest
/// event on overflow and counts what it dropped (silent truncation
/// would read as "nothing happened").
pub(crate) struct Ring {
    buf: Vec<Event>,
    /// Index of the logical start (oldest event) once full.
    head: usize,
    cap: usize,
    dropped: u64,
}

impl Ring {
    pub(crate) fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            head: 0,
            cap: cap.max(1),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Drains every buffered event in arrival order and resets the ring
    /// (the drop counter survives, it is cumulative).
    pub(crate) fn drain(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        let head = self.head;
        let len = self.buf.len();
        let buf = std::mem::take(&mut self.buf);
        for i in 0..len {
            out.push(buf[(head + i) % len].clone());
        }
        self.head = 0;
        out
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Monotonic microseconds since the process obs epoch.
pub(crate) fn now_us(epoch: &Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

/// Assigns small stable per-thread ordinals for [`Event::thread`].
pub(crate) fn thread_ordinal(counter: &AtomicU64) -> u64 {
    thread_local! {
        static ORDINAL: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
    }
    ORDINAL.with(|slot| {
        let mut id = slot.get();
        if id == u64::MAX {
            id = counter.fetch_add(1, Ordering::Relaxed);
            slot.set(id);
        }
        id
    })
}

/// A builder for one event; [`EventBuilder::emit`] records it. Obtained
/// from [`crate::event`], which returns a disabled builder (all methods
/// no-ops) when the level is filtered out.
#[must_use = "an event does nothing until .emit()"]
pub struct EventBuilder<'a> {
    pub(crate) state: Option<EventState<'a>>,
}

pub(crate) struct EventState<'a> {
    pub(crate) level: Level,
    pub(crate) target: &'static str,
    pub(crate) message: String,
    pub(crate) fields: Vec<(&'static str, FieldValue)>,
    pub(crate) ring: &'a Mutex<Ring>,
    pub(crate) epoch: &'a Instant,
    pub(crate) thread_counter: &'a AtomicU64,
    pub(crate) stderr: bool,
}

impl EventBuilder<'_> {
    /// Sets the human-readable message.
    pub fn msg(mut self, message: impl Into<String>) -> Self {
        if let Some(s) = self.state.as_mut() {
            s.message = message.into();
        }
        self
    }

    /// Appends one typed field.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(s) = self.state.as_mut() {
            s.fields.push((key, value.into()));
        }
        self
    }

    /// Records the event: into the ring always, and to stderr as one
    /// human-readable line when the level clears the stderr threshold.
    pub fn emit(self) {
        let Some(s) = self.state else { return };
        let event = Event {
            ts_us: now_us(s.epoch),
            level: s.level,
            target: s.target,
            pid: std::process::id() as u64,
            thread: thread_ordinal(s.thread_counter),
            message: s.message,
            fields: s.fields,
        };
        if s.stderr {
            // One write_all per line: concurrent emitters interleave at
            // line granularity, like eprintln! did.
            use std::io::Write;
            let mut line = event.render_human();
            line.push('\n');
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        let mut ring = s.ring.lock().expect("obs ring lock");
        ring.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert!(Level::Error < Level::Trace);
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::from_str(l.label()).unwrap(), l);
            assert_eq!(Level::from_u8(l as u8), Some(l));
        }
        assert!(Level::from_str("loud").is_err());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut ring = Ring::new(3);
        let ev = |n: u64| Event {
            ts_us: n,
            level: Level::Info,
            target: "t",
            pid: 1,
            thread: 0,
            message: format!("m{n}"),
            fields: Vec::new(),
        };
        for n in 0..5 {
            ring.push(ev(n));
        }
        assert_eq!(ring.dropped(), 2);
        let drained: Vec<u64> = ring.drain().iter().map(|e| e.ts_us).collect();
        // Oldest two were overwritten; survivors come out in order.
        assert_eq!(drained, vec![2, 3, 4]);
        // The ring is reusable after a drain and keeps its counter.
        ring.push(ev(9));
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let mut ring = Ring::new(0);
        let ev = Event {
            ts_us: 0,
            level: Level::Info,
            target: "t",
            pid: 1,
            thread: 0,
            message: String::new(),
            fields: Vec::new(),
        };
        ring.push(ev.clone());
        ring.push(ev);
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn events_round_trip_through_the_wire() {
        let event = Event {
            ts_us: 123_456,
            level: Level::Warn,
            target: "fleet supervisor",
            pid: 42,
            thread: 3,
            message: "recycling \"worker\"".into(),
            fields: vec![
                ("transport", FieldValue::Str("tcp:127.0.0.1:7401".into())),
                ("generation", FieldValue::U64(2)),
                ("attempts", FieldValue::U64(1)),
                ("wedged", FieldValue::Bool(true)),
                ("secs", FieldValue::F64(1.5)),
                ("delta", FieldValue::I64(-3)),
            ],
        };
        let frame = firm_wire::encode_line(&event);
        assert_eq!(frame.matches('\n').count(), 1);
        let back: EventRecord = firm_wire::decode_line(&frame).expect("event decodes");
        assert_eq!(back.ts_us, event.ts_us);
        assert_eq!(back.level, event.level);
        assert_eq!(back.target, event.target);
        assert_eq!(back.message, event.message);
        assert_eq!(back.fields.len(), event.fields.len());
        for ((k1, v1), (k2, v2)) in back.fields.iter().zip(&event.fields) {
            assert_eq!(k1, k2);
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn human_rendering_quotes_awkward_strings() {
        let event = Event {
            ts_us: 0,
            level: Level::Info,
            target: "firm-fleet-worker",
            pid: 1,
            thread: 0,
            message: "listening on 127.0.0.1:7401".into(),
            fields: vec![
                ("protocol", FieldValue::U64(2)),
                ("reason", FieldValue::Str("has spaces".into())),
            ],
        };
        assert_eq!(
            event.render_human(),
            "firm-fleet-worker: listening on 127.0.0.1:7401 protocol=2 reason=\"has spaces\""
        );
    }
}
