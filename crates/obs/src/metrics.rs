//! Atomic runtime self-metrics: counters, gauges, and log2-bucketed
//! histograms behind a get-or-create [`Registry`].
//!
//! Recording is wait-free (one or three relaxed atomic RMWs); only
//! registration and snapshotting take a lock. A [`MetricsSnapshot`] is
//! the serializable, mergeable view: entries sorted by key, histograms
//! reduced to sparse bucket counts — which is what lets the fleet
//! coordinator merge per-worker snapshots in deterministic
//! (worker, key) order regardless of arrival timing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use firm_wire::{Context, DecodeError, JsonValue, Obj, WireDecode, WireEncode};

/// A monotonically increasing count (requests dispatched, frames
/// decoded, bytes written).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (queue depth, live workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the value by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per bit width of a `u64`, plus a
/// dedicated zero bucket.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: its bit width (0 for 0, 1 for 1,
/// 2 for 2–3, 3 for 4–7, ... 64 for the top half of `u64`).
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value a bucket can hold — the quantile estimate reported
/// for ranks that fall in it.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        w => (1u64 << w) - 1,
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in
/// microseconds, sizes in bytes). Recording touches three relaxed
/// atomics; quantiles come from [`Histogram::snapshot`].
///
/// Log2 buckets trade precision for zero allocation and a fixed
/// footprint: any quantile estimate is within 2× of the true sample,
/// and the exact `max` is tracked separately so the tail is never
/// overstated.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The current distribution as a serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time, mergeable view of a [`Histogram`]: total count and
/// sum, exact max, and the sparse non-empty buckets (sorted by index).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping add on overflow, like recording).
    pub sum: u64,
    /// Exact largest sample.
    pub max: u64,
    /// `(bucket index, samples in bucket)`, ascending, empty buckets
    /// omitted.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The estimated value at quantile `q` in `[0, 1]`: the upper bound
    /// of the bucket holding the rank-`ceil(q·count)` sample, clamped
    /// to the exact max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(index as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of all samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another snapshot in bucket-wise; counts and sums add, max
    /// takes the larger.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            *merged.entry(i).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

impl WireEncode for HistogramSnapshot {
    fn encode(&self) -> JsonValue {
        let buckets = JsonValue::Array(
            self.buckets
                .iter()
                .map(|&(i, n)| JsonValue::Array(vec![JsonValue::U64(i as u64), JsonValue::U64(n)]))
                .collect(),
        );
        Obj::new()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("max", self.max)
            .field("buckets", buckets)
            .build()
    }
}

impl WireDecode for HistogramSnapshot {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        let buckets_doc: JsonValue = v.field("buckets")?;
        let mut buckets = Vec::new();
        for (slot, pair) in buckets_doc
            .as_array()
            .context("buckets")?
            .iter()
            .enumerate()
        {
            let pair = pair.as_array().context("buckets")?;
            if pair.len() != 2 {
                return Err(DecodeError::new(format!(
                    "histogram bucket {slot} is not an [index, count] pair"
                )));
            }
            let index = u64::decode(&pair[0]).context("buckets")?;
            if index as usize >= BUCKETS {
                return Err(DecodeError::new(format!(
                    "histogram bucket index {index} out of range"
                )));
            }
            buckets.push((index as u8, u64::decode(&pair[1]).context("buckets")?));
        }
        Ok(HistogramSnapshot {
            count: v.field("count")?,
            sum: v.field("sum")?,
            max: v.field("max")?,
            buckets,
        })
    }
}

/// A snapshot of one metric, tagged by kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(i64),
    /// A [`Histogram`] distribution.
    Histogram(HistogramSnapshot),
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn value(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        }
    }
}

/// The get-or-create metric store. Call sites name a metric and get the
/// shared atomic handle back; the first caller creates it. Keys are
/// dotted paths (`fleet.dispatch.latency_us`), and snapshots iterate
/// them in sorted order so two snapshots of the same state render the
/// same bytes.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `key`, created on first use.
    ///
    /// # Panics
    /// If `key` is already registered as a different metric kind.
    pub fn counter(&self, key: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("obs registry lock");
        let metric = metrics
            .entry(key.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric `{key}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `key`, created on first use.
    ///
    /// # Panics
    /// If `key` is already registered as a different metric kind.
    pub fn gauge(&self, key: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("obs registry lock");
        let metric = metrics
            .entry(key.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric `{key}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `key`, created on first use.
    ///
    /// # Panics
    /// If `key` is already registered as a different metric kind.
    pub fn histogram(&self, key: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("obs registry lock");
        let metric = metrics
            .entry(key.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric `{key}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Reads every registered metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("obs registry lock");
        MetricsSnapshot {
            entries: metrics
                .iter()
                .map(|(k, m)| (k.clone(), m.value()))
                .collect(),
        }
    }

    /// Drops every registered metric (handles held by call sites keep
    /// working but are no longer snapshotted). Test isolation only.
    pub fn reset(&self) {
        self.metrics.lock().expect("obs registry lock").clear();
    }
}

/// Every metric in a registry at one point in time, sorted by key.
/// This is what crosses the wire in a `WorkerMessage::Metrics` frame
/// and what an `OpsReport` is built from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(key, value)`, ascending by key.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Folds another snapshot in, key by key: counters and gauges add,
    /// histograms merge bucket-wise, disjoint keys are kept. Same-key
    /// kind mismatches keep `self`'s entry (snapshots from one metric
    /// catalog never disagree on kind).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut merged: BTreeMap<String, MetricValue> = self.entries.drain(..).collect();
        for (key, value) in &other.entries {
            match (merged.get_mut(key), value) {
                (None, v) => {
                    merged.insert(key.clone(), v.clone());
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                    *a = a.wrapping_add(*b);
                }
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => {
                    *a = a.wrapping_add(*b);
                }
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => {
                    a.merge(b);
                }
                (Some(_), _) => {}
            }
        }
        self.entries = merged.into_iter().collect();
    }
}

impl WireEncode for MetricsSnapshot {
    fn encode(&self) -> JsonValue {
        let entries = JsonValue::Array(
            self.entries
                .iter()
                .map(|(key, value)| match value {
                    MetricValue::Counter(n) => Obj::tagged("counter")
                        .field("key", key.as_str())
                        .field("value", *n)
                        .build(),
                    MetricValue::Gauge(n) => Obj::tagged("gauge")
                        .field("key", key.as_str())
                        .field("value", *n)
                        .build(),
                    MetricValue::Histogram(h) => Obj::tagged("histogram")
                        .field("key", key.as_str())
                        .field("value", h)
                        .build(),
                })
                .collect(),
        );
        Obj::tagged("metrics").field("entries", entries).build()
    }
}

impl WireDecode for MetricsSnapshot {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        if v.tag()? != "metrics" {
            return Err(DecodeError::new(format!(
                "expected a metrics frame, found type `{}`",
                v.tag()?
            )));
        }
        let entries_doc: JsonValue = v.field("entries")?;
        let mut entries = Vec::new();
        for entry in entries_doc.as_array().context("entries")? {
            let key: String = entry.field("key").context("entries")?;
            let value = match entry.tag().context("entries")? {
                "counter" => MetricValue::Counter(entry.field("value").context("entries")?),
                "gauge" => MetricValue::Gauge(entry.field("value").context("entries")?),
                "histogram" => MetricValue::Histogram(entry.field("value").context("entries")?),
                other => return Err(DecodeError::new(format!("unknown metric kind `{other}`"))),
            };
            entries.push((key, value));
        }
        Ok(MetricsSnapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        // The zero bucket, then one bucket per bit width: [2^(w-1), 2^w).
        for (value, bucket) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (1023, 10),
            (1024, 11),
            (u64::MAX, 64),
        ] {
            assert_eq!(bucket_index(value), bucket, "value {value}");
            assert!(value <= bucket_upper_bound(bucket));
            if bucket > 0 {
                assert!(value > bucket_upper_bound(bucket - 1));
            }
        }
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 500_500);
        // Estimates are bucket upper bounds: within 2x above the true
        // quantile, never above the exact max.
        assert!(snap.p50() >= 500 && snap.p50() <= 1000);
        assert!(snap.p99() >= 990 && snap.p99() <= 1000);
        assert_eq!(snap.quantile(1.0), 1000);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [1u64, 2, 2, 100] {
            a.record(v);
        }
        for v in [2u64, 3, 5000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 7);
        assert_eq!(merged.max, 5000);
        assert_eq!(merged.sum, 105 + 5005);
        let everything = Histogram::default();
        for v in [1u64, 2, 2, 100, 2, 3, 5000] {
            everything.record(v);
        }
        assert_eq!(merged, everything.snapshot());
    }

    #[test]
    fn registry_get_or_create_returns_shared_handles() {
        let reg = Registry::new();
        reg.counter("a.requests").add(3);
        reg.counter("a.requests").inc();
        reg.gauge("a.depth").set(5);
        reg.gauge("a.depth").add(-2);
        reg.histogram("a.latency_us").record(7);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.get("a.requests"), Some(&MetricValue::Counter(4)));
        assert_eq!(snap.get("a.depth"), Some(&MetricValue::Gauge(3)));
        // Sorted by key.
        let keys: Vec<&str> = snap.entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a.depth", "a.latency_us", "a.requests"]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_rejects_kind_mismatch() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_merge_adds_and_keeps_disjoint_keys() {
        let left = Registry::new();
        left.counter("shared.count").add(2);
        left.histogram("shared.lat").record(10);
        left.counter("only.left").inc();
        let right = Registry::new();
        right.counter("shared.count").add(5);
        right.histogram("shared.lat").record(1000);
        right.gauge("only.right").set(-4);

        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged.get("shared.count"), Some(&MetricValue::Counter(7)));
        assert_eq!(merged.get("only.left"), Some(&MetricValue::Counter(1)));
        assert_eq!(merged.get("only.right"), Some(&MetricValue::Gauge(-4)));
        let MetricValue::Histogram(h) = merged.get("shared.lat").unwrap() else {
            panic!("shared.lat lost its kind");
        };
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1000);
        // Merge result is still sorted.
        let keys: Vec<&str> = merged.entries.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn snapshots_round_trip_through_the_wire() {
        let reg = Registry::new();
        reg.counter("fleet.frames.rx").add(123);
        reg.gauge("fleet.queue.depth").set(-1);
        let h = reg.histogram("fleet.dispatch.latency_us");
        for v in [0u64, 1, 17, 900, 1_000_000] {
            h.record(v);
        }
        firm_wire::assert_round_trip(&reg.snapshot());
    }
}
