//! # firm-obs — zero-dependency runtime observability
//!
//! The FIRM paper's premise is that fine-grained telemetry makes SLO
//! management tractable; this crate applies the same idea to our own
//! runtime. It provides two instruments, both out-of-band by
//! construction — nothing here touches an RNG, a float fold, or any
//! digest-covered byte, so turning observability fully on or fully off
//! cannot move a fleet result (pinned by `tests/obs_determinism.rs` at
//! the workspace root):
//!
//! * **Structured events** ([`event`], [`Event`]): leveled, with
//!   monotonic timestamps, process/thread ids, and typed key-value
//!   fields; recorded into a bounded ring buffer (old events drop, the
//!   process never blocks) and rendered to stderr as one human-readable
//!   line when the level clears the stderr threshold. Filterable at
//!   runtime via the `FIRM_LOG` env var (`off|error|warn|info|debug|
//!   trace`, default `info`), exportable as firm-wire JSONL via
//!   [`drain_events`].
//! * **Metrics** ([`metrics`], [`Registry`]): atomic counters, gauges,
//!   and log2-bucketed histograms (p50/p95/p99/max) for runtime
//!   self-metrics — dispatch latency, queue depth, heartbeat gaps,
//!   frames and bytes on the wire, per-scenario wall time, per-stage
//!   hot-path timings. [`MetricsSnapshot`]s are sorted, mergeable, and
//!   wire-encodable, so each fleet worker can ship its registry to the
//!   coordinator in one frame.
//!
//! Recording costs one atomic load when filtered out and a handful of
//! relaxed atomic RMWs when not, which is what keeps the instrumented
//! hot path within the <2% budget `BENCH_fleet.json` tracks.
//!
//! ```
//! firm_obs::event(firm_obs::Level::Debug, "example")
//!     .msg("dispatched")
//!     .field("slot", 3u64)
//!     .field("transport", "tcp:127.0.0.1:7401")
//!     .emit();
//! let timer = std::time::Instant::now();
//! // ... do the work ...
//! firm_obs::metrics()
//!     .histogram("example.latency_us")
//!     .record(timer.elapsed().as_micros() as u64);
//! let snap = firm_obs::metrics().snapshot();
//! assert!(snap.get("example.latency_us").is_some());
//! ```

mod event;
mod metrics;

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use event::{Event, EventBuilder, EventRecord, FieldValue, Level};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue,
    MetricsSnapshot, Registry, BUCKETS,
};

/// How many events the ring keeps before dropping the oldest.
pub const RING_CAPACITY: usize = 16_384;

/// The numeric encoding of "record nothing" in the level atomics
/// (levels themselves are 1..=5).
const LEVEL_OFF: u8 = 0;
/// Sentinel meaning "not initialized yet — read `FIRM_LOG` first".
const LEVEL_UNSET: u8 = u8::MAX;

struct Globals {
    record_level: AtomicU8,
    stderr_level: AtomicU8,
    epoch: Instant,
    thread_counter: AtomicU64,
    ring: Mutex<event::Ring>,
    registry: Registry,
}

fn globals() -> &'static Globals {
    static GLOBALS: OnceLock<Globals> = OnceLock::new();
    GLOBALS.get_or_init(|| Globals {
        record_level: AtomicU8::new(LEVEL_UNSET),
        stderr_level: AtomicU8::new(Level::Info as u8),
        epoch: Instant::now(),
        thread_counter: AtomicU64::new(0),
        ring: Mutex::new(event::Ring::new(RING_CAPACITY)),
        registry: Registry::new(),
    })
}

/// Parses a `FIRM_LOG`-style filter: a level name, or `off`/`none` for
/// no recording at all.
pub fn parse_filter(s: &str) -> Result<Option<Level>, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Ok(None),
        other => Level::from_str(other).map(Some),
    }
}

fn level_from_env() -> u8 {
    match std::env::var("FIRM_LOG") {
        Ok(raw) => match parse_filter(&raw) {
            Ok(Some(level)) => level as u8,
            Ok(None) => LEVEL_OFF,
            // A typo'd FIRM_LOG falls back to the default rather than
            // silently going dark or refusing to start.
            Err(_) => Level::Info as u8,
        },
        Err(_) => Level::Info as u8,
    }
}

fn current_record_level(g: &Globals) -> u8 {
    let level = g.record_level.load(Ordering::Relaxed);
    if level != LEVEL_UNSET {
        return level;
    }
    let from_env = level_from_env();
    // First-read race: both threads compute the same env-derived value,
    // so whichever store wins is correct.
    g.record_level.store(from_env, Ordering::Relaxed);
    from_env
}

/// The active recording filter (`None` = everything off).
pub fn level() -> Option<Level> {
    match current_record_level(globals()) {
        LEVEL_OFF => None,
        n => Level::from_u8(n),
    }
}

/// Overrides the recording filter at runtime (wins over `FIRM_LOG`).
/// `None` turns event recording off entirely.
pub fn set_level(level: Option<Level>) {
    globals()
        .record_level
        .store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
}

/// Overrides the stderr rendering threshold (default [`Level::Info`]):
/// recorded events at or above it are also printed as one
/// human-readable line. `None` silences stderr without affecting
/// recording.
pub fn set_stderr_level(level: Option<Level>) {
    globals()
        .stderr_level
        .store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
}

/// True when an event at `level` would currently be recorded — the
/// one-atomic-load fast path guarding every instrumentation site.
pub fn enabled(level: Level) -> bool {
    level as u8 <= current_record_level(globals())
}

/// Starts building an event. Returns an inert builder (every method a
/// no-op) when `level` is filtered out, so call sites pay one atomic
/// load and skip all field formatting.
pub fn event(level: Level, target: &'static str) -> EventBuilder<'static> {
    let g = globals();
    if level as u8 > current_record_level(g) {
        return EventBuilder { state: None };
    }
    let stderr = level as u8 <= g.stderr_level.load(Ordering::Relaxed);
    EventBuilder {
        state: Some(event::EventState {
            level,
            target,
            message: String::new(),
            fields: Vec::new(),
            ring: &g.ring,
            epoch: &g.epoch,
            thread_counter: &g.thread_counter,
            stderr,
        }),
    }
}

/// This process's metrics registry.
pub fn metrics() -> &'static Registry {
    &globals().registry
}

/// Drains every buffered event in arrival order, plus the cumulative
/// count of events the ring has dropped since process start.
pub fn drain_events() -> (Vec<Event>, u64) {
    let mut ring = globals().ring.lock().expect("obs ring lock");
    let events = ring.drain();
    (events, ring.dropped())
}

/// Renders every buffered event as firm-wire JSONL (one frame per
/// line), draining the ring.
pub fn drain_events_jsonl() -> String {
    let (events, _) = drain_events();
    let mut out = String::new();
    for e in &events {
        out.push_str(&firm_wire::encode_line(e));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global level state is shared across #[test] threads, so the
    // end-to-end checks live in ONE test body with explicit phases.
    #[test]
    fn global_pipeline_records_filters_and_drains() {
        set_stderr_level(None); // keep test output clean

        // Phase 1: recording at the default-ish level.
        set_level(Some(Level::Debug));
        assert_eq!(level(), Some(Level::Debug));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Debug));
        assert!(!enabled(Level::Trace));
        event(Level::Info, "test")
            .msg("kept")
            .field("n", 1u64)
            .emit();
        event(Level::Trace, "test").msg("filtered").emit();
        let (events, _) = drain_events();
        let mine: Vec<_> = events.iter().filter(|e| e.target == "test").collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].message, "kept");
        assert_eq!(mine[0].fields, vec![("n", FieldValue::U64(1))]);

        // Phase 2: fully off — builders are inert.
        set_level(None);
        assert_eq!(level(), None);
        assert!(!enabled(Level::Error));
        event(Level::Error, "test").msg("dropped").emit();
        let (events, _) = drain_events();
        assert!(events.iter().all(|e| e.target != "test"));

        // Phase 3: JSONL export decodes line by line.
        set_level(Some(Level::Trace));
        event(Level::Trace, "test")
            .msg("a")
            .field("ok", true)
            .emit();
        event(Level::Debug, "test").msg("b").emit();
        let jsonl = drain_events_jsonl();
        let mut decoded = 0;
        for line in jsonl.lines().filter(|l| !l.is_empty()) {
            let rec: EventRecord = firm_wire::decode_line(line).expect("line decodes");
            if rec.target == "test" {
                decoded += 1;
            }
        }
        assert_eq!(decoded, 2);

        set_level(Some(Level::Info));
        set_stderr_level(Some(Level::Info));
    }

    #[test]
    fn filter_parsing_accepts_off_and_levels() {
        assert_eq!(parse_filter("off"), Ok(None));
        assert_eq!(parse_filter("OFF"), Ok(None));
        assert_eq!(parse_filter("none"), Ok(None));
        assert_eq!(parse_filter("info"), Ok(Some(Level::Info)));
        assert_eq!(parse_filter(" Trace "), Ok(Some(Level::Trace)));
        assert!(parse_filter("verbose").is_err());
    }
}
