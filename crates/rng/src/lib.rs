//! The workspace's single canonical PRNG core.
//!
//! Every deterministic stream in the reproduction — the simulator's
//! `firm_sim::SimRng`-style draws, the ML stack's weight init and
//! exploration noise, the fleet's per-scenario seed derivation — is
//! defined by the *byte-level* output of exactly one generator:
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64. Keeping
//! that definition in one crate is what makes "bit-identical at any
//! thread count" a maintainable contract: a constant tweak here
//! changes every stream together, never one copy at a time.
//!
//! No external dependencies; the stream is stable across toolchains.

/// xoshiro256++ state, seeded via SplitMix64 so any 64-bit seed gives a
/// well-mixed starting state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion,
    /// Vigna's reference seeding).
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix_finalize(x)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform f64 in `[0, 1)` from the high 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via widening multiply.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// The SplitMix64 finalizer (bijective avalanche mix).
#[inline]
fn splitmix_finalize(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream index into a decorrelated child
/// seed — how the fleet derives per-scenario seeds from
/// `(fleet seed, catalog index)` with no dependence on scheduling.
pub fn mix64(seed: u64, stream: u64) -> u64 {
    splitmix_finalize(
        seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xA24B_AED4_963E_E407)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = Xoshiro256::new(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = rng.next_below(7) as usize;
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s), "some residues never drawn");
    }

    #[test]
    fn mix64_decorrelates_streams() {
        assert_ne!(mix64(1, 0), mix64(1, 1));
        assert_ne!(mix64(1, 0), mix64(2, 0));
        assert_eq!(mix64(1, 0), mix64(1, 0));
    }
}
