//! The fine-grained resource model FIRM manages.
//!
//! The paper's RL agent controls five resource dimensions per container
//! (§3.4, Table 3): CPU time, memory bandwidth, LLC capacity, disk I/O
//! bandwidth, and network bandwidth. [`ResourceKind`] enumerates them and
//! [`ResourceVec`] is a dense per-resource vector of `f64` used for
//! capacities, limits, demands, and utilizations.
//!
//! Units, by convention throughout the workspace:
//!
//! * `Cpu` — cores (1.0 = one full core; a cgroups quota of 150ms/100ms).
//! * `MemBw` — MB/s of DRAM bandwidth.
//! * `Llc` — MB of last-level-cache capacity.
//! * `IoBw` — MB/s of disk bandwidth.
//! * `NetBw` — MB/s of NIC bandwidth.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A controllable resource dimension (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// CPU time (cores), controlled via cgroups `cpu.cfs_quota_us`.
    Cpu,
    /// Memory bandwidth, controlled via Intel MBA.
    MemBw,
    /// Last-level-cache capacity, controlled via Intel CAT.
    Llc,
    /// Disk I/O bandwidth, controlled via cgroups `blkio`.
    IoBw,
    /// Network bandwidth, controlled via Linux `tc` HTB queueing.
    NetBw,
}

/// All resource kinds in canonical order (the order of Table 3).
pub const RESOURCE_KINDS: [ResourceKind; 5] = [
    ResourceKind::Cpu,
    ResourceKind::MemBw,
    ResourceKind::Llc,
    ResourceKind::IoBw,
    ResourceKind::NetBw,
];

impl ResourceKind {
    /// Canonical index in `[0, 5)`.
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::MemBw => 1,
            ResourceKind::Llc => 2,
            ResourceKind::IoBw => 3,
            ResourceKind::NetBw => 4,
        }
    }

    /// Parses a canonical index back into a kind.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 5`.
    pub fn from_index(i: usize) -> ResourceKind {
        RESOURCE_KINDS[i]
    }

    /// Short lower-case name used in reports (`cpu`, `mem`, `llc`, `io`,
    /// `net`).
    pub const fn short_name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::MemBw => "mem",
            ResourceKind::Llc => "llc",
            ResourceKind::IoBw => "io",
            ResourceKind::NetBw => "net",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A dense per-resource vector of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVec {
    values: [f64; 5],
}

impl ResourceVec {
    /// The all-zero vector.
    pub const ZERO: ResourceVec = ResourceVec { values: [0.0; 5] };

    /// Builds a vector from explicit components.
    pub const fn new(cpu: f64, mem_bw: f64, llc: f64, io_bw: f64, net_bw: f64) -> Self {
        ResourceVec {
            values: [cpu, mem_bw, llc, io_bw, net_bw],
        }
    }

    /// A vector with every component set to `v`.
    pub const fn splat(v: f64) -> Self {
        ResourceVec { values: [v; 5] }
    }

    /// Component accessor by kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        self.values[kind.index()]
    }

    /// Component mutator by kind.
    pub fn set(&mut self, kind: ResourceKind, v: f64) {
        self.values[kind.index()] = v;
    }

    /// Element-wise sum.
    pub fn add(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..5 {
            out.values[i] += other.values[i];
        }
        out
    }

    /// Element-wise saturating (floor-at-zero) difference.
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..5 {
            out.values[i] = (out.values[i] - other.values[i]).max(0.0);
        }
        out
    }

    /// Element-wise scale.
    pub fn scale(&self, k: f64) -> ResourceVec {
        let mut out = *self;
        for v in &mut out.values {
            *v *= k;
        }
        out
    }

    /// Element-wise minimum.
    pub fn min(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..5 {
            out.values[i] = out.values[i].min(other.values[i]);
        }
        out
    }

    /// Element-wise clamp of every component to `[lo, hi]`.
    pub fn clamp_each(&self, lo: &ResourceVec, hi: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..5 {
            out.values[i] = out.values[i].clamp(lo.values[i], hi.values[i]);
        }
        out
    }

    /// True if every component of `self` is ≤ the matching component of
    /// `other` (within `eps`).
    pub fn fits_within(&self, other: &ResourceVec, eps: f64) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| *a <= *b + eps)
    }

    /// Iterates `(kind, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, f64)> + '_ {
        RESOURCE_KINDS.iter().map(move |&k| (k, self.get(k)))
    }

    /// The values as a fixed array in canonical order.
    pub fn as_array(&self) -> [f64; 5] {
        self.values
    }
}

impl Index<ResourceKind> for ResourceVec {
    type Output = f64;

    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.values[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVec {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.values[kind.index()]
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={:.2} mem={:.0} llc={:.1} io={:.0} net={:.0}",
            self.values[0], self.values[1], self.values[2], self.values[3], self.values[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, k) in RESOURCE_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(ResourceKind::from_index(i), *k);
        }
    }

    #[test]
    fn get_set() {
        let mut v = ResourceVec::ZERO;
        v.set(ResourceKind::MemBw, 1024.0);
        assert_eq!(v.get(ResourceKind::MemBw), 1024.0);
        assert_eq!(v[ResourceKind::MemBw], 1024.0);
        v[ResourceKind::Cpu] = 2.0;
        assert_eq!(v.get(ResourceKind::Cpu), 2.0);
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVec::new(1.0, 100.0, 10.0, 50.0, 200.0);
        let b = ResourceVec::new(0.5, 200.0, 5.0, 10.0, 100.0);
        let sum = a.add(&b);
        assert_eq!(sum.get(ResourceKind::Cpu), 1.5);
        let diff = a.saturating_sub(&b);
        assert_eq!(diff.get(ResourceKind::MemBw), 0.0);
        assert_eq!(diff.get(ResourceKind::Llc), 5.0);
        let scaled = a.scale(2.0);
        assert_eq!(scaled.get(ResourceKind::NetBw), 400.0);
    }

    #[test]
    fn fits_within() {
        let small = ResourceVec::splat(1.0);
        let big = ResourceVec::splat(2.0);
        assert!(small.fits_within(&big, 0.0));
        assert!(!big.fits_within(&small, 0.0));
        assert!(big.fits_within(&big, 1e-9));
    }

    #[test]
    fn clamp_each_bounds() {
        let v = ResourceVec::new(-1.0, 5000.0, 3.0, 1.0, 10.0);
        let lo = ResourceVec::splat(0.0);
        let hi = ResourceVec::splat(100.0);
        let c = v.clamp_each(&lo, &hi);
        assert_eq!(c.get(ResourceKind::Cpu), 0.0);
        assert_eq!(c.get(ResourceKind::MemBw), 100.0);
        assert_eq!(c.get(ResourceKind::Llc), 3.0);
    }

    #[test]
    fn iter_order_is_canonical() {
        let v = ResourceVec::new(1.0, 2.0, 3.0, 4.0, 5.0);
        let collected: Vec<f64> = v.iter().map(|(_, x)| x).collect();
        assert_eq!(collected, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(v.as_array(), [1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
