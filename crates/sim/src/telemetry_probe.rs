//! Telemetry snapshots exported by the simulator.
//!
//! The real FIRM deployment scrapes cAdvisor/Prometheus and the Linux perf
//! subsystem (Table 2). The simulator exports the equivalent observables
//! through [`InstanceSnapshot`] and [`NodeSnapshot`]; the `firm-telemetry`
//! crate turns them into named metric time series.

use crate::ids::{InstanceId, NodeId, ServiceId};
use crate::instance::InstanceState;
use crate::resources::ResourceVec;
use crate::spec::IsaArch;
use crate::time::{SimDuration, SimTime};

/// One instance's telemetry over a sampling window.
#[derive(Debug, Clone)]
pub struct InstanceSnapshot {
    /// Window end time.
    pub at: SimTime,
    /// Window length.
    pub window: SimDuration,
    /// The instance.
    pub instance: InstanceId,
    /// Its service.
    pub service: ServiceId,
    /// Its node.
    pub node: NodeId,
    /// Lifecycle state at sampling time.
    pub state: InstanceState,
    /// Resolved resource limits `RLT` (partition or node capacity).
    pub rlt: ResourceVec,
    /// Average resource usage rates over the window (cores, MB/s, MB,
    /// MB/s, MB/s — same units as [`ResourceVec`]).
    pub usage: ResourceVec,
    /// `usage / rlt`, clamped to `[0, 1]` — the RL state's `RU` vector.
    pub utilization: ResourceVec,
    /// Worker threads configured.
    pub workers: u32,
    /// Average queue length over the window.
    pub avg_queue_len: f64,
    /// Requests arrived in the window.
    pub arrivals: u64,
    /// Requests completed in the window.
    pub completions: u64,
    /// Requests dropped in the window.
    pub drops: u64,
    /// Mean per-request span latency in the window (us); 0 if none.
    pub mean_latency_us: f64,
    /// Average DRAM-traffic inflation factor (synthetic LLC-miss
    /// counter: >1 means the working set is not fitting).
    pub mem_inflation: f64,
    /// Per-core DRAM traffic, MB/s per core of quota (the Fig. 1
    /// "per-core DRAM access" series).
    pub per_core_dram_mbps: f64,
}

/// One node's telemetry over a sampling window.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// Window end time.
    pub at: SimTime,
    /// The node.
    pub node: NodeId,
    /// Its ISA (for the Fig. 9(b) x86-vs-ppc64 split).
    pub arch: IsaArch,
    /// Capacity vector.
    pub capacity: ResourceVec,
    /// Anomaly contender load, absolute units.
    pub anomaly_load: ResourceVec,
    /// Sum of instance usage rates on the node.
    pub used: ResourceVec,
    /// Number of live (running) instances.
    pub live_instances: u32,
}

impl NodeSnapshot {
    /// Node-level utilization of one resource in `[0, 1]`.
    pub fn utilization(&self, kind: crate::resources::ResourceKind) -> f64 {
        let cap = self.capacity.get(kind);
        if cap <= 0.0 {
            0.0
        } else {
            (self.used.get(kind) / cap).clamp(0.0, 1.0)
        }
    }
}

/// A full telemetry window: every instance and node.
#[derive(Debug, Clone, Default)]
pub struct TelemetryWindow {
    /// Per-instance snapshots (only instances that exist).
    pub instances: Vec<InstanceSnapshot>,
    /// Per-node snapshots.
    pub nodes: Vec<NodeSnapshot>,
    /// Offered arrival rate over the window, requests/second.
    pub arrival_rate: f64,
    /// Request-type composition over the window (fractions summing to 1
    /// when any requests arrived).
    pub request_mix: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceKind;

    #[test]
    fn node_utilization_clamps() {
        let snap = NodeSnapshot {
            at: SimTime::ZERO,
            node: NodeId(0),
            arch: IsaArch::X86,
            capacity: ResourceVec::new(48.0, 25_600.0, 35.0, 2_000.0, 1_250.0),
            anomaly_load: ResourceVec::ZERO,
            used: ResourceVec::new(24.0, 51_200.0, 0.0, 0.0, 0.0),
            live_instances: 3,
        };
        assert!((snap.utilization(ResourceKind::Cpu) - 0.5).abs() < 1e-12);
        assert_eq!(snap.utilization(ResourceKind::MemBw), 1.0);
        assert_eq!(snap.utilization(ResourceKind::Llc), 0.0);
    }
}
