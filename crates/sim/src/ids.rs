//! Strongly-typed identifiers used across the simulator.
//!
//! All identifiers are small dense integers so that per-entity state can be
//! stored in plain `Vec`s, which keeps the simulator fast and — importantly
//! for reproducibility — free of hash-map iteration-order effects.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $raw:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $raw);

        impl $name {
            /// The raw integer value.
            pub const fn raw(self) -> $raw {
                self.0
            }

            /// The identifier as a `usize` index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$raw> for $name {
            fn from(v: $raw) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A physical node (server) in the cluster.
    NodeId,
    u16
);
id_type!(
    /// A microservice (logical service, possibly many replicas).
    ServiceId,
    u16
);
id_type!(
    /// A deployed container instance of a microservice.
    InstanceId,
    u32
);
id_type!(
    /// A request type (e.g. `post-compose`), indexing the workload mix.
    RequestTypeId,
    u16
);
id_type!(
    /// A distributed trace: one end-to-end user request.
    TraceId,
    u64
);
id_type!(
    /// A span within a trace: the work done at one instance.
    SpanId,
    u64
);
id_type!(
    /// A performance-anomaly injection in flight.
    AnomalyId,
    u32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_and_index() {
        let s = ServiceId(7);
        assert_eq!(s.raw(), 7);
        assert_eq!(s.index(), 7);
        assert_eq!(ServiceId::from(7), s);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(format!("{}", NodeId(3)), "NodeId(3)");
        assert_eq!(format!("{}", TraceId(12)), "TraceId(12)");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(InstanceId(1) < InstanceId(2));
    }
}
