//! Span records emitted by the simulator.
//!
//! Each service activity produces a [`SpanRecord`] — the "most basic single
//! unit of work" of §3.1 — with send/receive timestamps for every RPC it
//! issued. Completed end-to-end requests bundle their spans into a
//! [`CompletedRequest`], which the `firm-trace` coordinator turns into
//! execution-history graphs.

use crate::ids::{InstanceId, RequestTypeId, ServiceId, SpanId, TraceId};
use crate::time::{SimDuration, SimTime};

/// One RPC edge out of a span.
#[derive(Debug, Clone, Copy)]
pub struct CallRecord {
    /// The span created at the callee.
    pub child_span: SpanId,
    /// The callee service.
    pub target: ServiceId,
    /// When the request message left the caller (`send_req`).
    pub sent: SimTime,
    /// When the response arrived back (`recv_req`); `None` for background
    /// calls, which never respond.
    pub returned: Option<SimTime>,
    /// Fire-and-forget call (background workflow, §3.2).
    pub background: bool,
}

/// The work done by one request at one microservice instance.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The trace (end-to-end request) this span belongs to.
    pub trace_id: TraceId,
    /// Unique span identifier within the simulation.
    pub span_id: SpanId,
    /// The parent span, if any (the root span has none).
    pub parent: Option<SpanId>,
    /// The service that produced this span.
    pub service: ServiceId,
    /// The concrete replica that produced it.
    pub instance: InstanceId,
    /// The request type of the trace.
    pub request_type: RequestTypeId,
    /// When the request arrived at the instance (enqueued).
    pub start: SimTime,
    /// When the response was handed to the network (or processing
    /// finished, for background spans).
    pub end: SimTime,
    /// When a worker actually began processing (end of queueing).
    pub work_start: SimTime,
    /// This span was reached via a background call.
    pub background: bool,
    /// The request was dropped at this instance (queue overflow).
    pub dropped: bool,
    /// RPCs issued while handling the request.
    pub calls: Vec<CallRecord>,
}

impl SpanRecord {
    /// Total span duration (arrival to response): the paper's per-service
    /// *latency*.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Time spent waiting in the instance queue: the congestion the
    /// paper's CI feature (p99/p50) is designed to expose.
    pub fn queue_wait(&self) -> SimDuration {
        self.work_start - self.start
    }
}

/// A finished end-to-end request with its full trace.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// Trace identifier.
    pub trace_id: TraceId,
    /// Request type.
    pub request_type: RequestTypeId,
    /// Client-observed arrival time.
    pub started: SimTime,
    /// Completion time (response at the client, or drop time).
    pub finished: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// The request was dropped (queue overflow somewhere on its path).
    pub dropped: bool,
    /// All spans of the trace, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl CompletedRequest {
    /// The root span (the entry service), if the trace recorded one.
    pub fn root_span(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Sum of all per-span durations; an upper bound on the critical-path
    /// length when everything is sequential.
    pub fn total_span_time(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for s in &self.spans {
            total += s.duration();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start_us: u64, end_us: u64, work_us: u64) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(1),
            span_id: SpanId(1),
            parent: None,
            service: ServiceId(0),
            instance: InstanceId(0),
            request_type: RequestTypeId(0),
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            work_start: SimTime::from_micros(work_us),
            background: false,
            dropped: false,
            calls: Vec::new(),
        }
    }

    #[test]
    fn span_durations() {
        let s = span(100, 700, 250);
        assert_eq!(s.duration().as_micros(), 600);
        assert_eq!(s.queue_wait().as_micros(), 150);
    }

    #[test]
    fn completed_request_helpers() {
        let mut child = span(200, 400, 210);
        child.span_id = SpanId(2);
        child.parent = Some(SpanId(1));
        let req = CompletedRequest {
            trace_id: TraceId(1),
            request_type: RequestTypeId(0),
            started: SimTime::from_micros(100),
            finished: SimTime::from_micros(700),
            latency: SimDuration::from_micros(600),
            dropped: false,
            spans: vec![span(100, 700, 120), child],
        };
        assert_eq!(req.root_span().unwrap().span_id, SpanId(1));
        assert_eq!(req.total_span_time().as_micros(), 800);
    }
}
