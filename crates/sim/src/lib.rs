//! Deterministic discrete-event cluster and microservice simulator.
//!
//! This crate is the substrate of the FIRM reproduction (Qiu et al.,
//! OSDI 2020). The paper evaluates FIRM on a 15-node Kubernetes cluster;
//! this crate substitutes a laptop-scale, fully deterministic simulator
//! that exposes the same observation and action surface the real cluster
//! offered to FIRM:
//!
//! * **Observations** — distributed-tracing spans for every request
//!   ([`SpanRecord`]), and per-instance/per-node telemetry (resource
//!   utilization, queue lengths, drop counts, synthetic performance
//!   counters).
//! * **Actions** — fine-grained resource partitioning (CPU quota, memory
//!   bandwidth, LLC capacity, disk I/O bandwidth, network bandwidth —
//!   the cgroups/CAT/MBA/HTB equivalents of §3.5 of the paper), and
//!   scale-out/in of replicas, all with the actuation latencies reported
//!   in Table 6.
//!
//! The simulator models an application as a service graph with
//! sequential/parallel/background workflows (§3.2 of the paper), executes
//! requests through bounded worker queues on containers placed on nodes,
//! and derives service times from a bottleneck contention model over the
//! shared node resources. Performance anomalies (§3.6) are first-class:
//! they consume node resources or inflate network delay, which is exactly
//! the observable effect of the paper's iBench/pmbw/tc/sysbench injectors.
//!
//! # Examples
//!
//! ```
//! use firm_sim::{
//!     spec::{AppSpec, ClusterSpec},
//!     ArrivalProcess,
//!     ConstantArrivals,
//!     SimDuration,
//!     Simulation,
//! };
//!
//! // A trivial one-service app on a two-node cluster, driven at 100 req/s.
//! let app = AppSpec::single_service_demo();
//! let cluster = ClusterSpec::small(2);
//! let arrivals: Box<dyn ArrivalProcess> = Box::new(ConstantArrivals::new(100.0));
//! let mut sim = Simulation::builder(cluster, app, 42)
//!     .arrivals(arrivals)
//!     .build();
//! sim.run_for(SimDuration::from_secs(5));
//! let done = sim.drain_completed();
//! assert!(!done.is_empty());
//! ```

pub mod actuator;
pub mod anomaly;
pub mod arrival;
pub mod contention;
pub mod engine;
pub mod ids;
pub mod instance;
pub mod node;
pub mod resources;
pub mod rng;
pub mod span;
pub mod spec;
pub mod stats;
pub mod telemetry_probe;
pub mod time;
pub mod wire;

pub use actuator::{ActuationLatency, Command};
pub use anomaly::{AnomalyKind, AnomalySpec};
pub use arrival::{ArrivalProcess, ConstantArrivals, PoissonArrivals};
pub use engine::{ArrivalRecord, RunStats, Simulation, SimulationBuilder};
pub use ids::{AnomalyId, InstanceId, NodeId, RequestTypeId, ServiceId, SpanId, TraceId};
pub use resources::{ResourceKind, ResourceVec, RESOURCE_KINDS};
pub use rng::SimRng;
pub use span::{CallRecord, CompletedRequest, SpanRecord};
pub use stats::{Histogram, Welford};
pub use time::{SimDuration, SimTime};
