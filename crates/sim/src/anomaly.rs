//! Performance-anomaly model (§3.6 of the paper).
//!
//! The paper's injector bundles seven anomaly types (Table 5) built from
//! iBench/pmbw/stress-ng/sysbench/tc/trickle/wrk2. Their *observable*
//! effect on a victim is either (a) consuming part of a node's shared
//! resource pool, (b) delaying network packets, or (c) inflating the
//! offered load. The simulator models those effects directly; the
//! `firm-core` injector builds campaigns (intensity, duration, timing) on
//! top of [`AnomalySpec`].

use crate::ids::{InstanceId, NodeId};
use crate::resources::ResourceKind;
use crate::time::SimDuration;

/// The seven anomaly types of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Workload variation (wrk2): multiplies the request arrival rate.
    WorkloadVariation,
    /// Network delay (tc netem): adds normally distributed delay to every
    /// RPC touching the node.
    NetworkDelay,
    /// CPU stressor (iBench/stress-ng): consumes cores.
    CpuStress,
    /// LLC bandwidth & capacity stressor (iBench/pmbw): consumes LLC.
    LlcStress,
    /// Memory-bandwidth stressor (iBench/pmbw): consumes DRAM bandwidth.
    MemBwStress,
    /// Disk I/O stressor (sysbench): consumes disk bandwidth.
    IoStress,
    /// Network-bandwidth stressor (tc/trickle): consumes NIC bandwidth.
    NetBwStress,
}

/// All anomaly kinds, in Table 5 order.
pub const ANOMALY_KINDS: [AnomalyKind; 7] = [
    AnomalyKind::WorkloadVariation,
    AnomalyKind::NetworkDelay,
    AnomalyKind::CpuStress,
    AnomalyKind::LlcStress,
    AnomalyKind::MemBwStress,
    AnomalyKind::IoStress,
    AnomalyKind::NetBwStress,
];

impl AnomalyKind {
    /// The node resource this anomaly contends for, if it is a resource
    /// stressor.
    pub const fn contended_resource(self) -> Option<ResourceKind> {
        match self {
            AnomalyKind::CpuStress => Some(ResourceKind::Cpu),
            AnomalyKind::LlcStress => Some(ResourceKind::Llc),
            AnomalyKind::MemBwStress => Some(ResourceKind::MemBw),
            AnomalyKind::IoStress => Some(ResourceKind::IoBw),
            AnomalyKind::NetBwStress => Some(ResourceKind::NetBw),
            AnomalyKind::WorkloadVariation | AnomalyKind::NetworkDelay => None,
        }
    }

    /// Report label matching Table 5.
    pub const fn label(self) -> &'static str {
        match self {
            AnomalyKind::WorkloadVariation => "Workload Variation",
            AnomalyKind::NetworkDelay => "Network Delay",
            AnomalyKind::CpuStress => "CPU Utilization",
            AnomalyKind::LlcStress => "LLC Bandwidth & Capacity",
            AnomalyKind::MemBwStress => "Memory Bandwidth",
            AnomalyKind::IoStress => "I/O Bandwidth",
            AnomalyKind::NetBwStress => "Network Bandwidth",
        }
    }

    /// The tools the paper used for this anomaly (Table 5).
    pub const fn paper_tools(self) -> &'static str {
        match self {
            AnomalyKind::WorkloadVariation => "wrk2",
            AnomalyKind::NetworkDelay => "tc",
            AnomalyKind::CpuStress => "iBench, stress-ng",
            AnomalyKind::LlcStress => "iBench, pmbw",
            AnomalyKind::MemBwStress => "iBench, pmbw",
            AnomalyKind::IoStress => "Sysbench",
            AnomalyKind::NetBwStress => "tc, Trickle",
        }
    }
}

/// A single anomaly injection: what, where, how hard, and for how long.
#[derive(Debug, Clone, Copy)]
pub struct AnomalySpec {
    /// The anomaly type.
    pub kind: AnomalyKind,
    /// The node under attack (ignored for [`AnomalyKind::WorkloadVariation`],
    /// which is cluster-wide).
    pub node: NodeId,
    /// For container-level injection (the paper's §3.6 injector is
    /// bundled *into* the microservice containers): the stressed
    /// instance. The contention then hits this instance directly, with
    /// half-intensity spillover onto its node. `None` = node-level.
    pub target_instance: Option<InstanceId>,
    /// Intensity in `[0, 1]`: the fraction of the node's resource the
    /// contender consumes, the relative arrival-rate increase (workload),
    /// or the delay scale (network delay: intensity 1.0 ≈ 50 ms mean).
    pub intensity: f64,
    /// How long the anomaly lasts.
    pub duration: SimDuration,
}

impl AnomalySpec {
    /// Creates a node-level spec with intensity clamped to `[0, 1]`.
    pub fn new(kind: AnomalyKind, node: NodeId, intensity: f64, duration: SimDuration) -> Self {
        AnomalySpec {
            kind,
            node,
            target_instance: None,
            intensity: intensity.clamp(0.0, 1.0),
            duration,
        }
    }

    /// Creates a container-level spec; the engine resolves the node from
    /// the instance at injection time.
    pub fn at_instance(
        kind: AnomalyKind,
        instance: InstanceId,
        intensity: f64,
        duration: SimDuration,
    ) -> Self {
        AnomalySpec {
            kind,
            node: NodeId(0),
            target_instance: Some(instance),
            intensity: intensity.clamp(0.0, 1.0),
            duration,
        }
    }

    /// Mean added network delay for a [`AnomalyKind::NetworkDelay`]
    /// anomaly of this intensity.
    pub fn network_delay_mean(&self) -> SimDuration {
        SimDuration::from_micros((self.intensity * 50_000.0) as u64)
    }

    /// Arrival-rate multiplier for a [`AnomalyKind::WorkloadVariation`]
    /// anomaly of this intensity (1.0 → 3x load).
    pub fn workload_multiplier(&self) -> f64 {
        1.0 + 2.0 * self.intensity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_mapping_matches_table5() {
        assert_eq!(
            AnomalyKind::MemBwStress.contended_resource(),
            Some(ResourceKind::MemBw)
        );
        assert_eq!(AnomalyKind::NetworkDelay.contended_resource(), None);
        assert_eq!(AnomalyKind::WorkloadVariation.contended_resource(), None);
        assert_eq!(ANOMALY_KINDS.len(), 7);
    }

    #[test]
    fn intensity_clamped() {
        let a = AnomalySpec::new(
            AnomalyKind::CpuStress,
            NodeId(0),
            7.0,
            SimDuration::from_secs(1),
        );
        assert_eq!(a.intensity, 1.0);
        let b = AnomalySpec::new(
            AnomalyKind::CpuStress,
            NodeId(0),
            -1.0,
            SimDuration::from_secs(1),
        );
        assert_eq!(b.intensity, 0.0);
    }

    #[test]
    fn derived_effects() {
        let a = AnomalySpec::new(
            AnomalyKind::NetworkDelay,
            NodeId(0),
            0.5,
            SimDuration::from_secs(1),
        );
        assert_eq!(a.network_delay_mean().as_micros(), 25_000);
        let w = AnomalySpec::new(
            AnomalyKind::WorkloadVariation,
            NodeId(0),
            1.0,
            SimDuration::from_secs(1),
        );
        assert!((w.workload_multiplier() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn labels_cover_all_kinds() {
        for k in ANOMALY_KINDS {
            assert!(!k.label().is_empty());
            assert!(!k.paper_tools().is_empty());
        }
    }
}
