//! The shared-resource contention model.
//!
//! This module computes the *effective* resource rates a container
//! instance observes, given the node's capacity, active anomaly
//! contenders, explicit partitions, and the activity of co-located
//! instances. It encodes the semantics of the actuators FIRM drives
//! (§3.5):
//!
//! * **Reservations** (Intel CAT for LLC, Intel MBA for memory bandwidth):
//!   carve capacity out of the shared pool; a reserved instance is
//!   *protected* from contenders up to its reservation, and capped at it.
//! * **Throttles** (cgroups `cpu.cfs_quota_us`, `blkio`, `tc` HTB for
//!   CPU/disk/network): cap an instance's use but do **not** protect it —
//!   a throttled instance still competes in the best-effort pool.
//!
//! Anomaly contenders take their share off the top of the unreserved pool
//! (streaming stressors are deliberately aggressive; this mirrors how
//! iBench/pmbw behave), and the remaining best-effort capacity is shared
//! in proportion to instance activity (busy workers). Scale-up therefore
//! increases an instance's share of contended bandwidth — the mechanism
//! behind Fig. 1's mitigation — while a reservation protects it outright.

use crate::instance::{Instance, InstanceState};
use crate::node::Node;
use crate::resources::ResourceKind;

/// Fraction of the pool a saturating stressor cannot take (hardware always
/// retains some victim throughput).
const CONTENDER_FLOOR: f64 = 0.05;
/// Minimum effective rate, as a fraction of capacity, to keep service
/// times finite under total saturation.
const RATE_FLOOR_FRAC: f64 = 0.01;
/// Reservations may cover at most this fraction of a node's capacity.
pub const MAX_RESERVABLE_FRAC: f64 = 0.9;

/// Effective resource rates for one instance at one moment.
#[derive(Debug, Clone, Copy)]
pub struct EffectiveRates {
    /// Per-worker CPU speed in cores (≤ 1.0 × node speed).
    pub cpu_per_worker: f64,
    /// Memory bandwidth, MB/s.
    pub mem_mbps: f64,
    /// LLC share, MB.
    pub llc_mb: f64,
    /// Disk bandwidth, MB/s.
    pub io_mbps: f64,
    /// Network bandwidth, MB/s.
    pub net_mbps: f64,
    /// DRAM-traffic inflation factor from LLC shortfall (≥ 1).
    pub mem_inflation: f64,
}

/// Whether a resource's partition acts as a reservation (protects) or a
/// throttle (caps only).
pub const fn is_reservation(kind: ResourceKind) -> bool {
    matches!(kind, ResourceKind::MemBw | ResourceKind::Llc)
}

/// Activity weight of an instance in best-effort sharing: its busy
/// workers, counting the instance as active while it holds queued work.
fn weight(inst: &Instance) -> f64 {
    let w = inst.busy_workers as f64;
    if w == 0.0 && !inst.queue.is_empty() {
        1.0
    } else {
        w
    }
}

/// The live (non-removed) instances placed on `node`, in placement
/// order — the peer set the contention model shares capacity over.
/// A cloneable iterator, so the hot path never materializes a `Vec`.
pub fn node_peers<'a>(
    node: &'a Node,
    instances: &'a [Instance],
) -> impl Iterator<Item = &'a Instance> + Clone {
    node.instances
        .iter()
        .map(move |id| &instances[id.index()])
        .filter(|i| i.state != InstanceState::Removed)
}

/// Effective rate of `target` on resource `kind`.
///
/// `peers` must contain every instance placed on the node, including the
/// target itself. The returned rate is never below `RATE_FLOOR_FRAC` of
/// capacity, so service times stay finite under full saturation.
pub fn effective_rate(
    node: &Node,
    peers: &[&Instance],
    target: &Instance,
    kind: ResourceKind,
) -> f64 {
    effective_rate_iter(node, peers.iter().copied(), target, kind)
}

/// Iterator form of [`effective_rate`]: the engine's per-chunk hot path
/// passes the node's placement list directly instead of collecting a
/// `Vec<&Instance>` per compute chunk. Iteration order (and therefore
/// every floating-point sum) is identical to the slice form.
pub fn effective_rate_iter<'a>(
    node: &Node,
    peers: impl Iterator<Item = &'a Instance> + Clone,
    target: &Instance,
    kind: ResourceKind,
) -> f64 {
    let capacity = node.capacity(kind);
    let floor = capacity * RATE_FLOOR_FRAC;

    // Reservations (CAT/MBA) are *work-conserving* guarantees: a
    // reserved instance is protected up to its guarantee, but the part
    // of the guarantee it cannot plausibly use (bounded by its activity
    // share) returns to the best-effort pool, so idle reservations do
    // not starve co-located containers.
    let mut reserved_sum = 0.0;
    let mut reserved_carve = 0.0;
    let mut be_weight_sum = 0.0;
    let mut all_weight_sum = 0.0;
    for inst in peers.clone() {
        all_weight_sum += weight(inst);
    }
    for inst in peers {
        match inst.partition(kind) {
            Some(p) if is_reservation(kind) => {
                reserved_sum += p;
                let activity_share = weight(inst) / all_weight_sum.max(1.0) * capacity * 1.5;
                reserved_carve += p.min(activity_share);
            }
            _ => be_weight_sum += weight(inst),
        }
    }

    let reserve_cap = capacity * MAX_RESERVABLE_FRAC;
    let rescale = if reserved_sum > reserve_cap {
        reserve_cap / reserved_sum
    } else {
        1.0
    };

    // An explicit partition may be far below the contention floor; only a
    // tiny absolute epsilon keeps service times finite.
    let epsilon = capacity * 1e-4;

    if is_reservation(kind) {
        if let Some(p) = target.partition(kind) {
            return (p * rescale).max(epsilon);
        }
    }

    // Best-effort pool: capacity minus the *used* part of reservations
    // minus the anomaly's off-the-top consumption.
    let pool = (capacity - reserved_carve.min(reserve_cap)).max(0.0);
    let anomaly = node.anomaly_fraction(kind) * pool * (1.0 - CONTENDER_FLOOR);
    let free = (pool - anomaly).max(floor);

    let my_weight = weight(target).max(1.0);
    let total_weight = be_weight_sum.max(my_weight);
    // The contention floor applies to the *shared* rate; a throttle below
    // it still sticks (an operator-chosen quota must be honoured).
    let fair_share = (free * my_weight / total_weight).max(floor);

    // A throttle caps but does not protect.
    match target.partition(kind) {
        Some(p) if !is_reservation(kind) => fair_share.min(p.max(epsilon)),
        _ => fair_share,
    }
}

/// DRAM-traffic inflation from an LLC share smaller than the working set.
///
/// `sensitivity` is the demand profile's `llc_sensitivity`; a share equal
/// to the working set gives factor 1.0, zero share gives
/// `1 + sensitivity`.
pub fn llc_inflation(llc_share_mb: f64, working_set_mb: f64, sensitivity: f64) -> f64 {
    if working_set_mb <= 0.0 {
        return 1.0;
    }
    let shortfall = (1.0 - llc_share_mb / working_set_mb).clamp(0.0, 1.0);
    1.0 + sensitivity.max(0.0) * shortfall
}

/// Computes all effective rates for `target` in one pass.
/// Per-core slowdown under CPU-stressor contention: a saturating
/// stressor timeslices against victim threads, so even a single-threaded
/// victim with quota headroom slows down (factor 3× at full intensity).
pub fn cpu_stress_slowdown(stress_fraction: f64) -> f64 {
    1.0 / (1.0 + 2.0 * stress_fraction.clamp(0.0, 1.0))
}

/// Per-resource slowdown gain of an in-container stressor at full
/// intensity: CPU timeslicing halves-to-thirds the victim; saturating
/// memory/LLC streams cost memory-bound code an order of magnitude
/// (iBench-style); disk/network saturation sits in between.
const STRESS_GAIN: [f64; 5] = [2.0, 9.0, 9.0, 6.0, 6.0];

/// Direct in-container stress slowdown for one resource: a container-
/// level stressor (the paper's injector runs inside the container)
/// competes head-to-head with the service on that resource.
fn instance_stress_factor(target: &Instance, kind: ResourceKind) -> f64 {
    1.0 / (1.0 + STRESS_GAIN[kind.index()] * target.stress[kind.index()].max(0.0))
}

pub fn effective_rates(
    node: &Node,
    peers: &[&Instance],
    target: &Instance,
    llc_working_set_mb: f64,
    llc_sensitivity: f64,
) -> EffectiveRates {
    effective_rates_iter(
        node,
        peers.iter().copied(),
        target,
        llc_working_set_mb,
        llc_sensitivity,
    )
}

/// Iterator form of [`effective_rates`] (see [`effective_rate_iter`]).
///
/// Fused: one pass computes the activity-weight total and one more
/// accumulates every resource kind's reservation/best-effort sums, so
/// the per-chunk hot path walks the peer list twice instead of ten
/// times (and evaluates each peer's activity weight once per pass).
/// Per kind, every sum still folds in peer order — results are
/// bit-identical to five independent [`effective_rate`] calls.
pub fn effective_rates_iter<'a>(
    node: &Node,
    peers: impl Iterator<Item = &'a Instance> + Clone,
    target: &Instance,
    llc_working_set_mb: f64,
    llc_sensitivity: f64,
) -> EffectiveRates {
    use crate::resources::RESOURCE_KINDS;

    let mut all_weight_sum = 0.0;
    for inst in peers.clone() {
        all_weight_sum += weight(inst);
    }
    let mut reserved_sum = [0.0f64; RESOURCE_KINDS.len()];
    let mut reserved_carve = [0.0f64; RESOURCE_KINDS.len()];
    let mut be_weight_sum = [0.0f64; RESOURCE_KINDS.len()];
    for inst in peers {
        let w = weight(inst);
        for kind in RESOURCE_KINDS {
            let k = kind.index();
            match inst.partition(kind) {
                Some(p) if is_reservation(kind) => {
                    reserved_sum[k] += p;
                    let activity_share = w / all_weight_sum.max(1.0) * node.capacity(kind) * 1.5;
                    reserved_carve[k] += p.min(activity_share);
                }
                _ => be_weight_sum[k] += w,
            }
        }
    }

    let my_weight = weight(target).max(1.0);
    let rate = |kind: ResourceKind| -> f64 {
        let k = kind.index();
        let capacity = node.capacity(kind);
        let floor = capacity * RATE_FLOOR_FRAC;
        let reserve_cap = capacity * MAX_RESERVABLE_FRAC;
        let rescale = if reserved_sum[k] > reserve_cap {
            reserve_cap / reserved_sum[k]
        } else {
            1.0
        };
        let epsilon = capacity * 1e-4;
        if is_reservation(kind) {
            if let Some(p) = target.partition(kind) {
                return (p * rescale).max(epsilon);
            }
        }
        let pool = (capacity - reserved_carve[k].min(reserve_cap)).max(0.0);
        let anomaly = node.anomaly_fraction(kind) * pool * (1.0 - CONTENDER_FLOOR);
        let free = (pool - anomaly).max(floor);
        let total_weight = be_weight_sum[k].max(my_weight);
        let fair_share = (free * my_weight / total_weight).max(floor);
        match target.partition(kind) {
            Some(p) if !is_reservation(kind) => fair_share.min(p.max(epsilon)),
            _ => fair_share,
        }
    };

    let cpu_total = rate(ResourceKind::Cpu);
    let busy = target.busy_workers.max(1) as f64;
    let slowdown = cpu_stress_slowdown(node.anomaly_fraction(ResourceKind::Cpu))
        * instance_stress_factor(target, ResourceKind::Cpu);
    let cpu_per_worker = (cpu_total / busy).min(1.0) * node.spec.speed * slowdown;

    let mem_mbps = rate(ResourceKind::MemBw) * instance_stress_factor(target, ResourceKind::MemBw);
    let llc_mb = rate(ResourceKind::Llc) * instance_stress_factor(target, ResourceKind::Llc);
    let io_mbps = rate(ResourceKind::IoBw) * instance_stress_factor(target, ResourceKind::IoBw);
    let net_mbps = rate(ResourceKind::NetBw) * instance_stress_factor(target, ResourceKind::NetBw);
    let mem_inflation = llc_inflation(llc_mb, llc_working_set_mb, llc_sensitivity);

    EffectiveRates {
        cpu_per_worker: cpu_per_worker.max(0.02),
        mem_mbps,
        llc_mb,
        io_mbps,
        net_mbps,
        mem_inflation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AnomalyId, NodeId, ServiceId};
    use crate::instance::InstanceState;
    use crate::node::ActiveContender;
    use crate::spec::NodeSpec;
    use crate::time::SimTime;

    fn node() -> Node {
        Node::new(NodeSpec::x86_default())
    }

    fn inst(cpu: f64, busy: u32) -> Instance {
        let mut i = Instance::new(
            ServiceId(0),
            NodeId(0),
            cpu,
            64,
            128,
            InstanceState::Running,
            SimTime::ZERO,
        );
        i.busy_workers = busy;
        i
    }

    /// The fused five-kind pass must reproduce five independent
    /// per-kind computations bit for bit — partitions, reservations,
    /// contenders and stress included.
    #[test]
    fn fused_rates_match_per_kind_rates_bit_for_bit() {
        let mut n = node();
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(0),
            resource: ResourceKind::MemBw,
            intensity: 0.6,
        });
        let mut a = inst(2.0, 3);
        a.set_partition(ResourceKind::MemBw, Some(9_000.0));
        a.set_partition(ResourceKind::Llc, Some(12.0));
        a.stress[ResourceKind::Cpu.index()] = 0.4;
        let mut b = inst(4.0, 1);
        b.set_partition(ResourceKind::IoBw, Some(300.0));
        let c = inst(1.0, 0);
        let peers = [&a, &b, &c];
        for target in peers {
            let fused = effective_rates(&n, &peers, target, 2.0, 0.7);
            let busy = target.busy_workers.max(1) as f64;
            let slowdown = cpu_stress_slowdown(n.anomaly_fraction(ResourceKind::Cpu))
                * instance_stress_factor(target, ResourceKind::Cpu);
            let cpu = (effective_rate(&n, &peers, target, ResourceKind::Cpu) / busy).min(1.0)
                * n.spec.speed
                * slowdown;
            assert_eq!(fused.cpu_per_worker.to_bits(), cpu.max(0.02).to_bits());
            let per_kind = |kind: ResourceKind| {
                effective_rate(&n, &peers, target, kind) * instance_stress_factor(target, kind)
            };
            assert_eq!(
                fused.mem_mbps.to_bits(),
                per_kind(ResourceKind::MemBw).to_bits()
            );
            assert_eq!(
                fused.llc_mb.to_bits(),
                per_kind(ResourceKind::Llc).to_bits()
            );
            assert_eq!(
                fused.io_mbps.to_bits(),
                per_kind(ResourceKind::IoBw).to_bits()
            );
            assert_eq!(
                fused.net_mbps.to_bits(),
                per_kind(ResourceKind::NetBw).to_bits()
            );
        }
    }

    #[test]
    fn sole_instance_gets_whole_pool() {
        let n = node();
        let i = inst(4.0, 2);
        let rate = effective_rate(&n, &[&i], &i, ResourceKind::MemBw);
        assert!((rate - 25_600.0).abs() < 1.0, "rate was {rate}");
    }

    #[test]
    fn cpu_throttle_caps() {
        let n = node();
        let i = inst(4.0, 2);
        let rate = effective_rate(&n, &[&i], &i, ResourceKind::Cpu);
        assert!((rate - 4.0).abs() < 1e-9, "rate was {rate}");
    }

    #[test]
    fn anomaly_shrinks_best_effort_share() {
        let mut n = node();
        let i = inst(4.0, 2);
        let before = effective_rate(&n, &[&i], &i, ResourceKind::MemBw);
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(0),
            resource: ResourceKind::MemBw,
            intensity: 0.8,
        });
        let after = effective_rate(&n, &[&i], &i, ResourceKind::MemBw);
        assert!(after < before * 0.35, "before={before} after={after}");
        assert!(after > 0.0);
    }

    #[test]
    fn reservation_protects_from_anomaly() {
        let mut n = node();
        let mut i = inst(4.0, 2);
        i.set_partition(ResourceKind::MemBw, Some(8_000.0));
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(0),
            resource: ResourceKind::MemBw,
            intensity: 1.0,
        });
        let rate = effective_rate(&n, &[&i], &i, ResourceKind::MemBw);
        assert!((rate - 8_000.0).abs() < 1.0, "rate was {rate}");
    }

    #[test]
    fn reservation_also_caps() {
        let n = node();
        let mut i = inst(4.0, 2);
        i.set_partition(ResourceKind::MemBw, Some(1_000.0));
        let rate = effective_rate(&n, &[&i], &i, ResourceKind::MemBw);
        assert!((rate - 1_000.0).abs() < 1.0, "rate was {rate}");
    }

    #[test]
    fn oversubscribed_reservations_rescale() {
        let n = node();
        let mut a = inst(4.0, 1);
        let mut b = inst(4.0, 1);
        // 2 × 20,000 MB/s of reservations on a 25,600 MB/s node.
        a.set_partition(ResourceKind::MemBw, Some(20_000.0));
        b.set_partition(ResourceKind::MemBw, Some(20_000.0));
        let rate = effective_rate(&n, &[&a, &b], &a, ResourceKind::MemBw);
        // 90% of capacity split pro rata: 0.9 × 25,600 / 2.
        assert!((rate - 11_520.0).abs() < 1.0, "rate was {rate}");
    }

    #[test]
    fn best_effort_shares_by_busy_workers() {
        let n = node();
        let a = inst(8.0, 6);
        let b = inst(8.0, 2);
        let ra = effective_rate(&n, &[&a, &b], &a, ResourceKind::MemBw);
        let rb = effective_rate(&n, &[&a, &b], &b, ResourceKind::MemBw);
        assert!((ra / rb - 3.0).abs() < 0.01, "ratio was {}", ra / rb);
    }

    #[test]
    fn scale_up_increases_bandwidth_share() {
        // The Fig. 1 mechanism: more busy workers → bigger share of the
        // contended memory bandwidth.
        let mut n = node();
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(0),
            resource: ResourceKind::MemBw,
            intensity: 0.6,
        });
        let small = inst(2.0, 2);
        let other = inst(8.0, 8);
        let before = effective_rate(&n, &[&small, &other], &small, ResourceKind::MemBw);
        let grown = inst(8.0, 8);
        let after = effective_rate(&n, &[&grown, &other], &grown, ResourceKind::MemBw);
        assert!(after > before * 2.0, "before={before} after={after}");
    }

    #[test]
    fn rate_never_zero_under_full_saturation() {
        let mut n = node();
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(0),
            resource: ResourceKind::IoBw,
            intensity: 1.0,
        });
        let i = inst(1.0, 1);
        let rate = effective_rate(&n, &[&i], &i, ResourceKind::IoBw);
        assert!(rate >= 2_000.0 * RATE_FLOOR_FRAC * 0.99);
    }

    #[test]
    fn idle_queued_instance_has_weight() {
        let n = node();
        let mut a = inst(4.0, 0);
        a.queue.push_back(0);
        let b = inst(4.0, 4);
        let ra = effective_rate(&n, &[&a, &b], &a, ResourceKind::MemBw);
        // Weight 1 vs 4 → a gets 1/5 of the pool.
        assert!((ra / 25_600.0 - 0.2).abs() < 0.01);
    }

    #[test]
    fn llc_inflation_bounds() {
        assert_eq!(llc_inflation(4.0, 4.0, 0.8), 1.0);
        assert!((llc_inflation(0.0, 4.0, 0.8) - 1.8).abs() < 1e-12);
        assert!((llc_inflation(2.0, 4.0, 0.8) - 1.4).abs() < 1e-12);
        assert_eq!(llc_inflation(8.0, 4.0, 0.8), 1.0);
        assert_eq!(llc_inflation(0.0, 0.0, 0.8), 1.0);
    }

    #[test]
    fn cpu_stress_slows_single_threaded_victims() {
        // A single worker with quota headroom still slows under a CPU
        // stressor (timeslice contention), even though its fair share
        // exceeds one core.
        let mut n = node();
        let i = inst(2.0, 1);
        let before = effective_rates(&n, &[&i], &i, 1.0, 0.2).cpu_per_worker;
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(0),
            resource: ResourceKind::Cpu,
            intensity: 1.0,
        });
        let after = effective_rates(&n, &[&i], &i, 1.0, 0.2).cpu_per_worker;
        assert!((before - 1.0).abs() < 1e-9, "before {before}");
        assert!((after - 1.0 / 3.0).abs() < 1e-9, "after {after}");
        assert_eq!(cpu_stress_slowdown(0.0), 1.0);
        assert_eq!(cpu_stress_slowdown(0.5), 0.5);
    }

    #[test]
    fn effective_rates_per_worker_speed() {
        let n = node();
        let mut i = inst(2.0, 4);
        i.busy_workers = 4;
        let rates = effective_rates(&n, &[&i], &i, 1.0, 0.5);
        // Quota 2 cores over 4 busy workers → 0.5 cores per worker.
        assert!((rates.cpu_per_worker - 0.5).abs() < 1e-9);
        assert!(rates.mem_inflation >= 1.0);
    }
}
