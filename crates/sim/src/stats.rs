//! Streaming statistics: log-bucketed histograms and online moments.
//!
//! The paper reports latency percentiles (p50/p99), latency CDFs, and
//! per-instance congestion intensity (p99/p50, Alg. 2). Those all need a
//! quantile sketch that is cheap to update on every completed request.
//! [`Histogram`] is an HDR-style log-bucketed histogram with bounded
//! relative error; [`Welford`] provides numerically stable online
//! mean/variance for features such as relative importance.

/// Number of linear sub-buckets per power-of-two bucket; 32 gives a
/// worst-case relative quantile error of about 3%.
const SUB_BUCKETS: usize = 32;
/// Histogram value ceiling: one hour in microseconds comfortably covers
/// any simulated latency.
const MAX_VALUE: u64 = 3_600_000_000;

/// A log-bucketed histogram over `u64` values (typically microseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let levels = 64 - (MAX_VALUE.leading_zeros() as usize);
        Histogram {
            buckets: vec![0; (levels + 1) * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        let v = value.min(MAX_VALUE);
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let level = 63 - v.leading_zeros() as usize;
        // Position within the level: top bits below the leading one.
        let shift = level.saturating_sub(5);
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        let base = (level - 4) * SUB_BUCKETS;
        base + sub
    }

    /// Representative (upper-edge) value of a bucket index.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let level = index / SUB_BUCKETS + 4;
        let sub = index % SUB_BUCKETS;
        let shift = level - 5;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` in `[0, 1]`, or 0 when empty.
    ///
    /// The returned value is the representative value of the bucket
    /// containing the requested rank (relative error ≈ 3%); the extremes
    /// are exact (`q = 0` returns the min, `q = 1` the max).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Convenience: the median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all recorded observations.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Evaluates the empirical CDF at `points`, returning `(value, F(value))`
    /// pairs; used by the figure-reproduction binaries.
    pub fn cdf(&self, points: &[u64]) -> Vec<(u64, f64)> {
        points
            .iter()
            .map(|&p| {
                let below: u64 = self
                    .buckets
                    .iter()
                    .enumerate()
                    .take_while(|(i, _)| Self::bucket_value(*i) <= p)
                    .map(|(_, c)| *c)
                    .sum();
                let f = if self.count == 0 {
                    0.0
                } else {
                    below as f64 / self.count as f64
                };
                (p, f)
            })
            .collect()
    }
}

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance, or 0 with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// This is the paper's *relative importance* measure (Alg. 2): the
/// correlation between a microservice's per-request latency and the
/// critical-path latency. Returns 0 for degenerate inputs (length < 2,
/// length mismatch, or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    // Clamp: rounding can push a perfect correlation past ±1.
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Exact quantile of a small in-memory sample (linear interpolation);
/// used where raw per-window vectors are available (Alg. 2 features).
pub fn sample_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn histogram_quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(i);
        }
        for &(q, expect) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q}: got {got}, expected ~{expect}");
        }
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for i in 0..1000u64 {
            a.record(i * 7 % 5000);
            c.record(i * 7 % 5000);
        }
        for i in 0..1000u64 {
            b.record(i * 13 % 9000);
            c.record(i * 13 % 9000);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.quantile(0.5), c.quantile(0.5));
        assert_eq!(a.quantile(0.99), c.quantile(0.99));
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn histogram_clear_resets() {
        let mut h = Histogram::new();
        h.record(55);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_huge_values_saturate() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        // The quantile is capped to the recorded max.
        assert_eq!(h.quantile(0.5), u64::MAX);
    }

    #[test]
    fn cdf_monotone() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i);
        }
        let pts: Vec<u64> = (0..10).map(|i| i * 1_200).collect();
        let cdf = h.cdf(&pts);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(cdf.last().unwrap().1 > 0.9);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.mean(), 3.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_zero() {
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn sample_quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(sample_quantile(&xs, 0.0), 10.0);
        assert_eq!(sample_quantile(&xs, 1.0), 40.0);
        assert!((sample_quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(sample_quantile(&[], 0.5), 0.0);
    }
}
