//! The discrete-event simulation engine.
//!
//! [`Simulation`] owns the cluster, the application, all in-flight request
//! state, and a time-ordered event queue. External controllers (FIRM, the
//! baselines, the anomaly injector, experiment harnesses) interleave with
//! it by running the clock forward ([`Simulation::run_until`] /
//! [`Simulation::run_for`]), draining completed traces and telemetry
//! windows, and applying [`Command`]s, which take effect after their
//! Table 6 actuation latency.
//!
//! # Determinism
//!
//! Events are ordered by `(time, sequence)`, every random draw comes from
//! one seeded [`SimRng`], and per-entity state lives in index-addressed
//! vectors, so a `(spec, seed)` pair reproduces a run bit-for-bit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::actuator::Command;
use crate::anomaly::{AnomalyKind, AnomalySpec};
use crate::arrival::ArrivalProcess;
use crate::contention;
use crate::ids::{AnomalyId, InstanceId, NodeId, RequestTypeId, ServiceId, SpanId, TraceId};
use crate::instance::{Instance, InstanceState};
use crate::node::{ActiveContender, ActiveDelay, Node};
use crate::resources::{ResourceKind, ResourceVec, RESOURCE_KINDS};
use crate::rng::SimRng;
use crate::span::{CallRecord, CompletedRequest, SpanRecord};
use crate::spec::{AppSpec, ClusterSpec};
use crate::telemetry_probe::{InstanceSnapshot, NodeSnapshot, TelemetryWindow};
use crate::time::{SimDuration, SimTime};

/// Tunable engine constants.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// One-way base latency of an inter-service RPC.
    pub base_rtt: SimDuration,
    /// One-way latency between the client and the entry service.
    pub client_rtt: SimDuration,
    /// Queue-length sampling period.
    pub sample_period: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            base_rtt: SimDuration::from_micros(150),
            client_rtt: SimDuration::from_micros(250),
            sample_period: SimDuration::from_millis(100),
        }
    }
}

/// Cumulative run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Client requests generated.
    pub arrivals: u64,
    /// Requests completed (including degraded ones that had internal
    /// drops).
    pub completions: u64,
    /// Requests dropped somewhere on their path.
    pub drops: u64,
    /// Completed, non-dropped requests whose end-to-end latency exceeded
    /// their type's SLO.
    pub slo_violations: u64,
    /// Sum of end-to-end latencies of completed, non-dropped requests, us.
    pub latency_sum_us: u128,
}

impl RunStats {
    /// Mean end-to-end latency of completed requests, us.
    pub fn mean_latency_us(&self) -> f64 {
        let ok = self.completions.saturating_sub(self.drops);
        if ok == 0 {
            0.0
        } else {
            self.latency_sum_us as f64 / ok as f64
        }
    }

    /// Fraction of completed requests that violated their SLO.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }
}

/// One client arrival, as recorded when the simulation is built with
/// [`SimulationBuilder::record_arrivals`]. A run's arrival log is the
/// raw material of trace replay: feeding the recorded times back in as
/// an arrival process reproduces the run's load shape exactly —
/// incident re-runs instead of synthetic arrival curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalRecord {
    /// When the client request arrived.
    pub at: SimTime,
    /// The request type drawn for it.
    pub request_type: RequestTypeId,
}

#[derive(Debug, Clone)]
enum EventKind {
    Arrival,
    HopDeliver { act: usize },
    ComputeDone { act: usize },
    ResponseDeliver { parent_act: usize, call_idx: usize },
    RootResponse { trace_slot: usize },
    AnomalyStart { id: AnomalyId },
    AnomalyEnd { id: AnomalyId },
    ActuationDone { cmd: Command },
    Sample,
}

#[derive(Debug)]
struct EventEntry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug)]
struct Activity {
    trace_slot: usize,
    span_id: SpanId,
    parent: Option<(usize, usize)>,
    parent_span: Option<SpanId>,
    instance: InstanceId,
    service: ServiceId,
    rt: RequestTypeId,
    background: bool,
    arrived: SimTime,
    work_start: SimTime,
    stage: usize,
    pending_children: u32,
    calls: Vec<CallRecord>,
    live: bool,
}

#[derive(Debug, Default)]
struct TraceBuf {
    trace_id: TraceId,
    rt: RequestTypeId,
    started: SimTime,
    spans: Vec<SpanRecord>,
    open_activities: u32,
    root_response_at: Option<SimTime>,
    dropped: bool,
    live: bool,
}

#[derive(Debug, Default)]
struct ServiceRuntime {
    replicas: Vec<InstanceId>,
    rr_cursor: usize,
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    cluster: ClusterSpec,
    app: AppSpec,
    seed: u64,
    arrivals: Option<Box<dyn ArrivalProcess>>,
    config: EngineConfig,
    record_arrivals: bool,
}

impl SimulationBuilder {
    /// Sets the arrival process (default: 100 req/s Poisson).
    pub fn arrivals(mut self, arrivals: Box<dyn ArrivalProcess>) -> Self {
        self.arrivals = Some(arrivals);
        self
    }

    /// Records every client arrival into [`Simulation::arrival_log`]
    /// (off by default: most runs never replay their load).
    pub fn record_arrivals(mut self, record: bool) -> Self {
        self.record_arrivals = record;
        self
    }

    /// Overrides engine constants.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the simulation and places the initial replicas.
    ///
    /// # Panics
    ///
    /// Panics if the application spec fails validation.
    pub fn build(self) -> Simulation {
        let SimulationBuilder {
            cluster,
            app,
            seed,
            arrivals,
            config,
            record_arrivals,
        } = self;
        app.validate().expect("invalid application spec");
        assert!(!cluster.nodes.is_empty(), "cluster must have nodes");

        let mut sim = Simulation {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            rng: SimRng::new(seed),
            config,
            nodes: cluster.nodes.into_iter().map(Node::new).collect(),
            app,
            instances: Vec::new(),
            services: Vec::new(),
            arrivals: arrivals
                .unwrap_or_else(|| Box::new(crate::arrival::PoissonArrivals::new(100.0))),
            activities: Vec::new(),
            free_activities: Vec::new(),
            traces: Vec::new(),
            free_traces: Vec::new(),
            completed: Vec::new(),
            active_anomalies: Vec::new(),
            next_anomaly: 0,
            next_trace: 0,
            next_span: 0,
            load_multipliers: Vec::new(),
            stats: RunStats::default(),
            window_started: SimTime::ZERO,
            window_arrivals: 0,
            window_mix: Vec::new(),
            paused_arrivals: false,
            record_arrivals,
            arrival_log: Vec::new(),
            rt_weights: Vec::new(),
            replica_scratch: Vec::new(),
        };
        sim.window_mix = vec![0u64; sim.app.request_types.len()];
        sim.rt_weights = sim.app.request_types.iter().map(|r| r.weight).collect();
        sim.services = (0..sim.app.services.len())
            .map(|_| ServiceRuntime::default())
            .collect();

        // Place the initial replicas round-robin across nodes.
        let mut node_cursor = 0usize;
        for sid in 0..sim.app.services.len() {
            let spec = sim.app.services[sid].clone();
            for _ in 0..spec.initial_replicas.max(1) {
                let node = NodeId(node_cursor as u16);
                node_cursor = (node_cursor + 1) % sim.nodes.len();
                sim.spawn_instance(
                    ServiceId(sid as u16),
                    node,
                    spec.initial_cpu,
                    InstanceState::Running,
                    SimTime::ZERO,
                );
            }
        }

        // Seed the arrival stream and the sampling tick.
        let first = sim.next_arrival_gap();
        sim.schedule(sim.now + first, EventKind::Arrival);
        let sample = sim.config.sample_period;
        sim.schedule(sim.now + sample, EventKind::Sample);
        sim
    }
}

/// The discrete-event simulator.
pub struct Simulation {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<EventEntry>>,
    rng: SimRng,
    config: EngineConfig,
    nodes: Vec<Node>,
    app: AppSpec,
    instances: Vec<Instance>,
    services: Vec<ServiceRuntime>,
    arrivals: Box<dyn ArrivalProcess>,
    activities: Vec<Activity>,
    free_activities: Vec<usize>,
    traces: Vec<TraceBuf>,
    free_traces: Vec<usize>,
    completed: Vec<CompletedRequest>,
    active_anomalies: Vec<(AnomalyId, AnomalySpec, SimTime)>,
    next_anomaly: u32,
    next_trace: u64,
    next_span: u64,
    load_multipliers: Vec<(AnomalyId, f64)>,
    stats: RunStats,
    window_started: SimTime,
    window_arrivals: u64,
    window_mix: Vec<u64>,
    paused_arrivals: bool,
    record_arrivals: bool,
    arrival_log: Vec<ArrivalRecord>,
    /// Request-type sampling weights, cached at build time (the mix is
    /// part of the immutable [`AppSpec`]) so each arrival avoids
    /// rebuilding the weight vector.
    rt_weights: Vec<f64>,
    /// Reusable buffer for replica selection (live-replica list).
    replica_scratch: Vec<InstanceId>,
}

impl Simulation {
    /// Starts building a simulation.
    pub fn builder(cluster: ClusterSpec, app: AppSpec, seed: u64) -> SimulationBuilder {
        SimulationBuilder {
            cluster,
            app,
            seed,
            arrivals: None,
            config: EngineConfig::default(),
            record_arrivals: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The application under simulation.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// Cumulative run statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The cluster nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All instances ever created (including removed slots).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// One instance by id.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.index()]
    }

    /// Live (non-removed) replicas of a service.
    pub fn replicas(&self, service: ServiceId) -> Vec<InstanceId> {
        self.services[service.index()]
            .replicas
            .iter()
            .copied()
            .filter(|id| self.instances[id.index()].state != InstanceState::Removed)
            .collect()
    }

    /// Sum of CPU quotas across live instances, in cores — the paper's
    /// "requested CPU limit" (Fig. 10b).
    pub fn total_requested_cpu(&self) -> f64 {
        self.instances
            .iter()
            .filter(|i| i.state == InstanceState::Running || i.state == InstanceState::Starting)
            .map(|i| i.cpu_limit())
            .sum()
    }

    /// Currently active anomaly injections (ground truth for training).
    pub fn active_anomalies(&self) -> &[(AnomalyId, AnomalySpec, SimTime)] {
        &self.active_anomalies
    }

    /// Every client arrival recorded so far (empty unless the simulation
    /// was built with [`SimulationBuilder::record_arrivals`]). In order
    /// of arrival time; feed it to a replay arrival process to re-run
    /// the load as a recorded incident.
    pub fn arrival_log(&self) -> &[ArrivalRecord] {
        &self.arrival_log
    }

    /// The current workload multiplier from workload-variation anomalies.
    pub fn load_multiplier(&self) -> f64 {
        self.load_multipliers.iter().map(|(_, m)| m).product()
    }

    /// Pauses or resumes client arrivals (used by training harnesses to
    /// reset the environment between episodes).
    pub fn set_arrivals_paused(&mut self, paused: bool) {
        if self.paused_arrivals && !paused {
            let gap = self.next_arrival_gap();
            self.schedule(self.now + gap, EventKind::Arrival);
        }
        self.paused_arrivals = paused;
    }

    /// Replaces the arrival process from now on.
    pub fn set_arrivals(&mut self, arrivals: Box<dyn ArrivalProcess>) {
        self.arrivals = arrivals;
    }

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(EventEntry { time, seq, kind }));
    }

    /// Runs the simulation until `deadline` (inclusive of events at it).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(head)) = self.events.peek() {
            if head.time > deadline {
                break;
            }
            let Reverse(entry) = self.events.pop().expect("peeked");
            debug_assert!(entry.time >= self.now, "time went backwards");
            self.now = entry.time;
            self.dispatch(entry.kind);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs the simulation for `d` from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Takes all requests completed since the last drain.
    pub fn drain_completed(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completed)
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrival => self.on_arrival(),
            EventKind::HopDeliver { act } => self.on_hop_deliver(act),
            EventKind::ComputeDone { act } => self.on_compute_done(act),
            EventKind::ResponseDeliver {
                parent_act,
                call_idx,
            } => self.on_response_deliver(parent_act, call_idx),
            EventKind::RootResponse { trace_slot } => self.on_root_response(trace_slot),
            EventKind::AnomalyStart { id } => self.on_anomaly_start(id),
            EventKind::AnomalyEnd { id } => self.on_anomaly_end(id),
            EventKind::ActuationDone { cmd } => self.on_actuation_done(cmd),
            EventKind::Sample => self.on_sample(),
        }
    }

    // ----- arrivals and request routing -------------------------------

    fn next_arrival_gap(&mut self) -> SimDuration {
        let gap = self.arrivals.next_interarrival(self.now, &mut self.rng);
        let mult = self.load_multiplier();
        if mult > 1.0 {
            gap.mul_f64(1.0 / mult)
        } else {
            gap
        }
    }

    fn on_arrival(&mut self) {
        if !self.paused_arrivals {
            let gap = self.next_arrival_gap();
            self.schedule(self.now + gap, EventKind::Arrival);
        } else {
            return;
        }

        let rt = RequestTypeId(self.rng.weighted_index(&self.rt_weights) as u16);
        self.stats.arrivals += 1;
        self.window_arrivals += 1;
        self.window_mix[rt.index()] += 1;
        if self.record_arrivals {
            self.arrival_log.push(ArrivalRecord {
                at: self.now,
                request_type: rt,
            });
        }

        let trace_id = TraceId(self.next_trace);
        self.next_trace += 1;
        let trace_slot = self.alloc_trace(trace_id, rt);

        let entry = self.app.request_types[rt.index()].entry;
        let act = self.alloc_activity(trace_slot, None, None, entry, rt, false);
        let delay = self.config.client_rtt + self.entry_delay(entry);
        self.schedule(self.now + delay, EventKind::HopDeliver { act });
    }

    fn entry_delay(&mut self, service: ServiceId) -> SimDuration {
        // Injected network delay on whichever node hosts a replica of the
        // entry service (client traffic crosses its NIC).
        if let Some(&iid) = self.services[service.index()].replicas.first() {
            let node = self.instances[iid.index()].node;
            return self.sample_node_delay(node);
        }
        SimDuration::ZERO
    }

    fn sample_node_delay(&mut self, node: NodeId) -> SimDuration {
        let mean = self.nodes[node.index()].extra_delay_mean();
        if mean == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let m = mean.as_micros() as f64;
        SimDuration::from_micros(self.rng.normal_at_least(m, m / 4.0, 0.0) as u64)
    }

    fn alloc_trace(&mut self, trace_id: TraceId, rt: RequestTypeId) -> usize {
        let buf = TraceBuf {
            trace_id,
            rt,
            started: self.now,
            // One up-front allocation instead of doubling through the
            // first few span pushes; 8 covers the built-in benchmarks'
            // common trace sizes.
            spans: Vec::with_capacity(8),
            open_activities: 0,
            root_response_at: None,
            dropped: false,
            live: true,
        };
        if let Some(slot) = self.free_traces.pop() {
            self.traces[slot] = buf;
            slot
        } else {
            self.traces.push(buf);
            self.traces.len() - 1
        }
    }

    fn alloc_activity(
        &mut self,
        trace_slot: usize,
        parent: Option<(usize, usize)>,
        parent_span: Option<SpanId>,
        service: ServiceId,
        rt: RequestTypeId,
        background: bool,
    ) -> usize {
        let span_id = SpanId(self.next_span);
        self.next_span += 1;
        self.traces[trace_slot].open_activities += 1;
        let instance = self.pick_replica(service);
        let act = Activity {
            trace_slot,
            span_id,
            parent,
            parent_span,
            instance: instance.unwrap_or(InstanceId(u32::MAX)),
            service,
            rt,
            background,
            arrived: self.now,
            work_start: self.now,
            stage: 0,
            pending_children: 0,
            calls: Vec::new(),
            live: true,
        };
        if let Some(slot) = self.free_activities.pop() {
            self.activities[slot] = act;
            slot
        } else {
            self.activities.push(act);
            self.activities.len() - 1
        }
    }

    fn free_activity(&mut self, idx: usize) {
        self.activities[idx].live = false;
        self.free_activities.push(idx);
    }

    /// Least-loaded replica of a service (ties broken round-robin).
    ///
    /// Runs on a reusable scratch buffer — replica selection happens at
    /// least twice per span (allocation and delivery-time
    /// re-validation), so a fresh `Vec` here would dominate the
    /// allocator profile.
    fn pick_replica(&mut self, service: ServiceId) -> Option<InstanceId> {
        let mut live = std::mem::take(&mut self.replica_scratch);
        live.clear();
        live.extend(
            self.services[service.index()]
                .replicas
                .iter()
                .copied()
                .filter(|id| self.instances[id.index()].accepts_load()),
        );
        if live.is_empty() {
            self.replica_scratch = live;
            return None;
        }
        let rt = &mut self.services[service.index()];
        rt.rr_cursor = rt.rr_cursor.wrapping_add(1);
        let start = rt.rr_cursor % live.len();
        let mut best = live[start];
        let mut best_load = self.instances[best.index()].load();
        for k in 1..live.len() {
            let cand = live[(start + k) % live.len()];
            let load = self.instances[cand.index()].load();
            if load < best_load {
                best = cand;
                best_load = load;
            }
        }
        self.replica_scratch = live;
        Some(best)
    }

    // ----- activity lifecycle -----------------------------------------

    fn on_hop_deliver(&mut self, act_idx: usize) {
        if !self.activities[act_idx].live {
            return;
        }
        // Re-validate the chosen replica at delivery time.
        let service = self.activities[act_idx].service;
        let chosen = self.activities[act_idx].instance;
        let ok = chosen != InstanceId(u32::MAX) && self.instances[chosen.index()].accepts_load();
        let target = if ok {
            Some(chosen)
        } else {
            self.pick_replica(service)
        };
        let Some(iid) = target else {
            self.drop_activity(act_idx);
            return;
        };
        self.activities[act_idx].instance = iid;
        self.activities[act_idx].arrived = self.now;

        let inst = &mut self.instances[iid.index()];
        inst.window.arrivals += 1;
        if inst.free_workers() > 0 {
            inst.busy_workers += 1;
            self.begin_work(act_idx);
        } else if inst.queue.len() < inst.queue_cap {
            inst.queue.push_back(act_idx);
        } else {
            inst.window.drops += 1;
            inst.total_drops += 1;
            self.drop_activity(act_idx);
        }
    }

    fn begin_work(&mut self, act_idx: usize) {
        self.activities[act_idx].work_start = self.now;
        self.activities[act_idx].stage = 0;
        self.start_chunk(act_idx);
    }

    /// Computes the duration of the current compute chunk and schedules
    /// its completion.
    fn start_chunk(&mut self, act_idx: usize) {
        let (iid, service, rt) = {
            let a = &self.activities[act_idx];
            (a.instance, a.service, a.rt)
        };
        let behavior = self
            .app
            .behavior(service, rt)
            .expect("activity without behaviour");
        let nstages = behavior.stages.len();
        let demand = behavior.demand;
        let chunk_frac = 1.0 / (nstages as f64 + 1.0);

        let dur = if let Some(d) = demand {
            let inst = &self.instances[iid.index()];
            let node = &self.nodes[inst.node.index()];
            let rates = contention::effective_rates_iter(
                node,
                contention::node_peers(node, &self.instances),
                inst,
                d.llc_ws_mb,
                d.llc_sensitivity,
            );

            // LLC misses stall the pipeline: compute time inflates with
            // the same miss factor as DRAM traffic.
            let cpu_t = d.cpu_us * chunk_frac * rates.mem_inflation / rates.cpu_per_worker;
            let mem_mb = d.mem_mb * chunk_frac * rates.mem_inflation;
            let mem_t = mem_mb / rates.mem_mbps * 1e6;
            let io_t = d.io_mb * chunk_frac / rates.io_mbps * 1e6;
            let mut noise = self.rng.lognormal_mean_cv(1.0, d.cv);
            // In-container stressors fluctuate (iBench/pmbw phases), so
            // the victim's slowdown wobbles — the latency-variance
            // signature Algorithm 2's features are built to detect.
            let stressed: f64 = self.instances[iid.index()].stress.iter().sum();
            if stressed > 0.0 {
                noise *= self.rng.lognormal_mean_cv(1.0, (stressed * 0.8).min(1.2));
            }
            let dur_us = (cpu_t + mem_t + io_t) * noise;

            let inst = &mut self.instances[iid.index()];
            inst.window.cpu_core_us += d.cpu_us * chunk_frac;
            inst.window.mem_mb += mem_mb;
            inst.window.io_mb += d.io_mb * chunk_frac;
            inst.window.llc_share_sum += rates.llc_mb;
            inst.window.inflation_sum += rates.mem_inflation;
            inst.window.chunks += 1;

            SimDuration::from_micros(dur_us.max(1.0) as u64)
        } else {
            SimDuration::from_micros(1)
        };

        self.schedule(self.now + dur, EventKind::ComputeDone { act: act_idx });
    }

    fn on_compute_done(&mut self, act_idx: usize) {
        if !self.activities[act_idx].live {
            return;
        }
        let (service, rt, stage) = {
            let a = &self.activities[act_idx];
            (a.service, a.rt, a.stage)
        };
        let nstages = self
            .app
            .behavior(service, rt)
            .map(|b| b.stages.len())
            .unwrap_or(0);

        if stage < nstages {
            let pending = self.fire_stage_calls(act_idx, service, rt, stage);
            if pending == 0 {
                self.activities[act_idx].stage += 1;
                self.start_chunk(act_idx);
            } else {
                self.activities[act_idx].pending_children = pending;
            }
        } else {
            self.complete_activity(act_idx, false);
        }
    }

    /// Issues the calls of one behaviour stage; returns the number of
    /// synchronous children the caller must wait for. Calls are fetched
    /// by index from the (immutable) application spec — `Call` is
    /// `Copy` — so no per-stage call list is cloned on the hot path.
    fn fire_stage_calls(
        &mut self,
        act_idx: usize,
        service: ServiceId,
        rt: RequestTypeId,
        stage: usize,
    ) -> u32 {
        let (trace_slot, my_span, my_instance) = {
            let a = &self.activities[act_idx];
            (a.trace_slot, a.span_id, a.instance)
        };
        let ncalls = self
            .app
            .behavior(service, rt)
            .expect("checked by caller")
            .stages[stage]
            .calls
            .len();
        let src_node = self.instances[my_instance.index()].node;
        self.activities[act_idx].calls.reserve(ncalls);
        let mut pending = 0u32;
        for ci in 0..ncalls {
            let call = self
                .app
                .behavior(service, rt)
                .expect("checked by caller")
                .stages[stage]
                .calls[ci];
            let child = self.alloc_activity(
                trace_slot,
                if call.background {
                    None
                } else {
                    Some((act_idx, self.activities[act_idx].calls.len()))
                },
                Some(my_span),
                call.target,
                rt,
                call.background,
            );
            let child_span = self.activities[child].span_id;
            self.activities[act_idx].calls.push(CallRecord {
                child_span,
                target: call.target,
                sent: self.now,
                returned: None,
                background: call.background,
            });
            if !call.background {
                pending += 1;
            }
            let dst = self.activities[child].instance;
            let transfer = self.transfer_time(call.req_kb, src_node, dst);
            self.schedule(self.now + transfer, EventKind::HopDeliver { act: child });
        }
        pending
    }

    /// Network transfer time for `kb` from `src_node` to the node of
    /// `dst` (if it resolves), including injected delays.
    fn transfer_time(&mut self, kb: f64, src_node: NodeId, dst: InstanceId) -> SimDuration {
        let mut t = self.config.base_rtt;
        t += self.sample_node_delay(src_node);
        let dst_node = if dst != InstanceId(u32::MAX) {
            Some(self.instances[dst.index()].node)
        } else {
            None
        };
        if let Some(dn) = dst_node {
            if dn != src_node {
                t += self.sample_node_delay(dn);
            }
            let rate = self.net_rate_between(src_node, dn, dst);
            let mb = kb / 1024.0;
            t += SimDuration::from_micros((mb / rate * 1e6).max(0.0) as u64);
            // Account network bytes to the sender-side instance window.
            if let Some(&first) = self.nodes[src_node.index()].instances.first() {
                self.instances[first.index()].window.net_mb += mb;
            }
        }
        t
    }

    fn net_rate_between(&self, src: NodeId, dst: NodeId, dst_inst: InstanceId) -> f64 {
        if src == dst {
            // Loopback: far faster than the NIC.
            return 20_000.0;
        }
        let node = &self.nodes[dst.index()];
        let inst = &self.instances[dst_inst.index()];
        contention::effective_rate_iter(
            node,
            contention::node_peers(node, &self.instances),
            inst,
            ResourceKind::NetBw,
        )
        .max(1.0)
    }

    fn complete_activity(&mut self, act_idx: usize, dropped: bool) {
        let (iid, trace_slot, parent, resp_kb) = {
            let a = &self.activities[act_idx];
            let resp = self
                .app
                .behavior(a.service, a.rt)
                .and_then(|b| b.demand)
                .map(|d| d.resp_kb)
                .unwrap_or(1.0);
            (a.instance, a.trace_slot, a.parent, resp)
        };

        self.emit_span(act_idx, dropped);

        // Free the worker and admit queued work.
        if iid != InstanceId(u32::MAX) && !dropped {
            let inst = &mut self.instances[iid.index()];
            inst.busy_workers = inst.busy_workers.saturating_sub(1);
            inst.window.completions += 1;
            inst.total_completions += 1;
            let span_latency = (self.now - self.activities[act_idx].arrived).as_micros();
            inst.window.latency_sum_us += span_latency;
            if let Some(next) = self.instances[iid.index()].queue.pop_front() {
                self.instances[iid.index()].busy_workers += 1;
                self.begin_work(next);
            }
            self.maybe_finish_draining(iid);
        }

        // Deliver the response.
        let is_background = self.activities[act_idx].background;
        if let Some((p_act, call_idx)) = parent {
            let src_node = if iid != InstanceId(u32::MAX) {
                self.instances[iid.index()].node
            } else {
                NodeId(0)
            };
            let p_inst = self.activities[p_act].instance;
            let transfer = if dropped {
                self.config.base_rtt
            } else {
                self.transfer_time(resp_kb, src_node, p_inst)
            };
            self.schedule(
                self.now + transfer,
                EventKind::ResponseDeliver {
                    parent_act: p_act,
                    call_idx,
                },
            );
        } else if !is_background {
            // Root span: response to the client.
            let transfer = self.config.client_rtt;
            self.schedule(self.now + transfer, EventKind::RootResponse { trace_slot });
        }

        self.close_activity(act_idx);
    }

    fn drop_activity(&mut self, act_idx: usize) {
        self.traces[self.activities[act_idx].trace_slot].dropped = true;
        self.complete_activity(act_idx, true);
    }

    fn emit_span(&mut self, act_idx: usize, dropped: bool) {
        // The activity is finished: its call records *move* into the
        // span (the buffer travels on through the trace store) instead
        // of being cloned and dropped.
        let a = &mut self.activities[act_idx];
        let calls = std::mem::take(&mut a.calls);
        let span = SpanRecord {
            trace_id: self.traces[a.trace_slot].trace_id,
            span_id: a.span_id,
            parent: a.parent_span,
            service: a.service,
            instance: a.instance,
            request_type: a.rt,
            start: a.arrived,
            end: self.now,
            work_start: a.work_start,
            background: a.background,
            dropped,
            calls,
        };
        self.traces[a.trace_slot].spans.push(span);
    }

    fn close_activity(&mut self, act_idx: usize) {
        let trace_slot = self.activities[act_idx].trace_slot;
        self.traces[trace_slot].open_activities -= 1;
        self.free_activity(act_idx);
        self.try_finalize_trace(trace_slot);
    }

    fn on_response_deliver(&mut self, parent_act: usize, call_idx: usize) {
        if !self.activities[parent_act].live {
            return;
        }
        self.activities[parent_act].calls[call_idx].returned = Some(self.now);
        let a = &mut self.activities[parent_act];
        a.pending_children = a.pending_children.saturating_sub(1);
        if a.pending_children == 0 {
            a.stage += 1;
            self.start_chunk(parent_act);
        }
    }

    fn on_root_response(&mut self, trace_slot: usize) {
        if !self.traces[trace_slot].live {
            return;
        }
        self.traces[trace_slot].root_response_at = Some(self.now);
        self.try_finalize_trace(trace_slot);
    }

    fn try_finalize_trace(&mut self, trace_slot: usize) {
        let buf = &self.traces[trace_slot];
        if !buf.live || buf.open_activities > 0 || buf.root_response_at.is_none() {
            return;
        }
        let finished = buf.root_response_at.expect("checked above");
        let latency = finished - buf.started;
        let rt = buf.rt;
        let dropped = buf.dropped;

        self.stats.completions += 1;
        if dropped {
            self.stats.drops += 1;
        } else {
            self.stats.latency_sum_us += latency.as_micros() as u128;
            if latency.as_micros() > self.app.request_types[rt.index()].slo_latency_us {
                self.stats.slo_violations += 1;
            }
        }

        let buf = &mut self.traces[trace_slot];
        let completed = CompletedRequest {
            trace_id: buf.trace_id,
            request_type: rt,
            started: buf.started,
            finished,
            latency,
            dropped,
            spans: std::mem::take(&mut buf.spans),
        };
        buf.live = false;
        self.free_traces.push(trace_slot);
        self.completed.push(completed);
    }

    // ----- anomalies ----------------------------------------------------

    /// Injects an anomaly now; returns its id. The anomaly ends after its
    /// duration.
    pub fn inject(&mut self, spec: AnomalySpec) -> AnomalyId {
        self.inject_at(spec, self.now)
    }

    /// Injects an anomaly at a future time.
    pub fn inject_at(&mut self, spec: AnomalySpec, at: SimTime) -> AnomalyId {
        let id = AnomalyId(self.next_anomaly);
        self.next_anomaly += 1;
        let at = at.max(self.now);
        // Container-level injections resolve their node now, so ground
        // truth and node spillover agree.
        let mut spec = spec;
        if let Some(target) = spec.target_instance {
            if target.index() < self.instances.len() {
                spec.node = self.instances[target.index()].node;
            } else {
                spec.target_instance = None;
            }
        }
        self.active_anomalies.push((id, spec, at));
        self.schedule(at, EventKind::AnomalyStart { id });
        self.schedule(at + spec.duration, EventKind::AnomalyEnd { id });
        id
    }

    /// Cancels an anomaly immediately.
    pub fn cancel_anomaly(&mut self, id: AnomalyId) {
        self.on_anomaly_end(id);
    }

    fn on_anomaly_start(&mut self, id: AnomalyId) {
        let Some(&(_, spec, _)) = self.active_anomalies.iter().find(|(a, _, _)| *a == id) else {
            return;
        };
        let node_idx = spec.node.index().min(self.nodes.len() - 1);
        match spec.kind {
            AnomalyKind::WorkloadVariation => {
                self.load_multipliers.push((id, spec.workload_multiplier()));
            }
            AnomalyKind::NetworkDelay => {
                self.nodes[node_idx].delays.push(ActiveDelay {
                    anomaly: id,
                    mean: spec.network_delay_mean(),
                });
            }
            _ => {
                if let Some(resource) = spec.kind.contended_resource() {
                    match spec.target_instance {
                        // Container-level: direct stress on the target,
                        // half-intensity spillover onto the node pool.
                        Some(target) if target.index() < self.instances.len() => {
                            self.instances[target.index()].stress[resource.index()] +=
                                spec.intensity;
                            // An LLC stressor also saturates the victim's
                            // LLC *bandwidth*, which manifests on its
                            // memory path (Table 5 bundles both).
                            if spec.kind == AnomalyKind::LlcStress {
                                self.instances[target.index()].stress
                                    [ResourceKind::MemBw.index()] += spec.intensity * 0.7;
                            }
                            self.nodes[node_idx].contenders.push(ActiveContender {
                                anomaly: id,
                                resource,
                                intensity: spec.intensity * 0.5,
                            });
                        }
                        _ => {
                            self.nodes[node_idx].contenders.push(ActiveContender {
                                anomaly: id,
                                resource,
                                intensity: spec.intensity,
                            });
                        }
                    }
                }
            }
        }
    }

    fn on_anomaly_end(&mut self, id: AnomalyId) {
        // Undo direct container stress, if any.
        if let Some(&(_, spec, _)) = self.active_anomalies.iter().find(|(a, _, _)| *a == id) {
            if let (Some(target), Some(resource)) =
                (spec.target_instance, spec.kind.contended_resource())
            {
                if target.index() < self.instances.len() {
                    let s = &mut self.instances[target.index()].stress[resource.index()];
                    *s = (*s - spec.intensity).max(0.0);
                    if spec.kind == AnomalyKind::LlcStress {
                        let m =
                            &mut self.instances[target.index()].stress[ResourceKind::MemBw.index()];
                        *m = (*m - spec.intensity * 0.7).max(0.0);
                    }
                }
            }
        }
        self.load_multipliers.retain(|(a, _)| *a != id);
        for node in &mut self.nodes {
            node.remove_anomaly(id);
        }
        self.active_anomalies.retain(|(a, _, _)| *a != id);
    }

    // ----- actuation ------------------------------------------------------

    /// Applies a command after its Table 6 actuation latency; returns the
    /// sampled latency.
    pub fn apply(&mut self, cmd: Command) -> SimDuration {
        let latency = cmd.latency().sample(&mut self.rng);
        if let Command::ScaleOut { service, .. } = cmd {
            // The container starts now and becomes ready after the start
            // latency.
            let node = self.pick_node_for(service);
            let template = self.template_limits(service);
            let iid = self.spawn_instance(
                service,
                node,
                template,
                InstanceState::Starting,
                self.now + latency,
            );
            // Copy non-CPU partitions from an existing replica.
            if let Some(&src) = self.services[service.index()]
                .replicas
                .iter()
                .find(|id| self.instances[id.index()].state == InstanceState::Running)
            {
                for kind in RESOURCE_KINDS {
                    if kind != ResourceKind::Cpu {
                        let p = self.instances[src.index()].partition(kind);
                        self.instances[iid.index()].set_partition(kind, p);
                    }
                }
            }
        }
        self.schedule(self.now + latency, EventKind::ActuationDone { cmd });
        latency
    }

    fn template_limits(&self, service: ServiceId) -> f64 {
        self.services[service.index()]
            .replicas
            .iter()
            .filter(|id| self.instances[id.index()].state == InstanceState::Running)
            .map(|id| self.instances[id.index()].cpu_limit())
            .next()
            .unwrap_or(self.app.services[service.index()].initial_cpu)
    }

    /// The node with the most free (unallocated) CPU.
    fn pick_node_for(&self, _service: ServiceId) -> NodeId {
        let mut best = NodeId(0);
        let mut best_free = f64::MIN;
        for (ni, node) in self.nodes.iter().enumerate() {
            let allocated: f64 = node
                .instances
                .iter()
                .map(|id| &self.instances[id.index()])
                .filter(|i| i.state != InstanceState::Removed)
                .map(|i| i.cpu_limit())
                .sum();
            let free = node.capacity(ResourceKind::Cpu) - allocated;
            if free > best_free {
                best_free = free;
                best = NodeId(ni as u16);
            }
        }
        best
    }

    fn spawn_instance(
        &mut self,
        service: ServiceId,
        node: NodeId,
        cpu: f64,
        state: InstanceState,
        ready_at: SimTime,
    ) -> InstanceId {
        let spec = &self.app.services[service.index()];
        let inst = Instance::new(
            service,
            node,
            cpu,
            spec.max_threads,
            spec.queue_cap,
            state,
            ready_at,
        );
        let id = InstanceId(self.instances.len() as u32);
        self.instances.push(inst);
        self.nodes[node.index()].instances.push(id);
        self.services[service.index()].replicas.push(id);
        id
    }

    fn on_actuation_done(&mut self, cmd: Command) {
        match cmd {
            Command::SetPartition {
                instance,
                kind,
                amount,
            } => {
                if instance.index() >= self.instances.len() {
                    return;
                }
                let node = self.instances[instance.index()].node;
                let cap = self.nodes[node.index()].capacity(kind);
                let amount = amount.clamp(cap * 0.001, cap);
                self.instances[instance.index()].set_partition(kind, Some(amount));
            }
            Command::ClearPartition { instance, kind } => {
                // The CPU quota is structural (it defines the worker pool);
                // it can be resized but not removed.
                if kind != ResourceKind::Cpu && instance.index() < self.instances.len() {
                    self.instances[instance.index()].set_partition(kind, None);
                }
            }
            Command::ScaleOut { service, .. } => {
                // Flip the newest starting replica to running.
                if let Some(&iid) = self.services[service.index()]
                    .replicas
                    .iter()
                    .rev()
                    .find(|id| self.instances[id.index()].state == InstanceState::Starting)
                {
                    self.instances[iid.index()].state = InstanceState::Running;
                }
            }
            Command::ScaleIn { service } => {
                let live = self.replicas(service);
                if live.len() <= 1 {
                    return;
                }
                // Drain the least-loaded replica.
                let victim = *live
                    .iter()
                    .min_by_key(|id| self.instances[id.index()].load())
                    .expect("non-empty");
                self.instances[victim.index()].state = InstanceState::Draining;
                self.maybe_finish_draining(victim);
            }
        }
    }

    fn maybe_finish_draining(&mut self, iid: InstanceId) {
        let inst = &mut self.instances[iid.index()];
        if inst.state == InstanceState::Draining && inst.busy_workers == 0 && inst.queue.is_empty()
        {
            inst.state = InstanceState::Removed;
        }
    }

    // ----- telemetry ------------------------------------------------------

    fn on_sample(&mut self) {
        let period = self.config.sample_period;
        self.schedule(self.now + period, EventKind::Sample);
        for inst in &mut self.instances {
            if inst.state != InstanceState::Removed {
                inst.window.queue_len_sum += inst.queue.len() as u64;
                inst.window.queue_samples += 1;
            }
        }
    }

    /// Drains the telemetry window accumulated since the previous drain,
    /// resetting the accumulators.
    pub fn drain_telemetry(&mut self) -> TelemetryWindow {
        let window = self.now - self.window_started;
        let window_s = window.as_secs_f64().max(1e-9);
        let window_us = window.as_micros().max(1) as f64;

        let mut out = TelemetryWindow {
            instances: Vec::new(),
            nodes: Vec::new(),
            arrival_rate: self.window_arrivals as f64 / window_s,
            request_mix: {
                let total: u64 = self.window_mix.iter().sum();
                self.window_mix
                    .iter()
                    .map(|&c| {
                        if total == 0 {
                            0.0
                        } else {
                            c as f64 / total as f64
                        }
                    })
                    .collect()
            },
        };

        let mut node_used = vec![ResourceVec::ZERO; self.nodes.len()];

        for (ii, inst) in self.instances.iter_mut().enumerate() {
            if inst.state == InstanceState::Removed {
                inst.window.clear();
                continue;
            }
            let node_cap = self.nodes[inst.node.index()].spec.capacity;
            let rlt = inst.rlt(&node_cap);
            let usage = ResourceVec::new(
                inst.window.cpu_core_us / window_us,
                inst.window.mem_mb / window_s,
                inst.window.avg_llc_share(),
                inst.window.io_mb / window_s,
                inst.window.net_mb / window_s,
            );
            let mut utilization = ResourceVec::ZERO;
            for kind in RESOURCE_KINDS {
                let lim = rlt.get(kind).max(1e-9);
                utilization.set(kind, (usage.get(kind) / lim).clamp(0.0, 1.0));
            }
            node_used[inst.node.index()] = node_used[inst.node.index()].add(&usage);

            let w = &inst.window;
            out.instances.push(InstanceSnapshot {
                at: self.now,
                window,
                instance: InstanceId(ii as u32),
                service: inst.service,
                node: inst.node,
                state: inst.state,
                rlt,
                usage,
                utilization,
                workers: inst.workers(),
                avg_queue_len: w.avg_queue_len(),
                arrivals: w.arrivals,
                completions: w.completions,
                drops: w.drops,
                mean_latency_us: if w.completions == 0 {
                    0.0
                } else {
                    w.latency_sum_us as f64 / w.completions as f64
                },
                mem_inflation: w.avg_inflation(),
                per_core_dram_mbps: usage.get(ResourceKind::MemBw) / inst.cpu_limit().max(0.1),
            });
            inst.window.clear();
        }

        for (ni, node) in self.nodes.iter().enumerate() {
            out.nodes.push(NodeSnapshot {
                at: self.now,
                node: NodeId(ni as u16),
                arch: node.spec.arch,
                capacity: node.spec.capacity,
                anomaly_load: node.anomaly_load(),
                used: node_used[ni],
                live_instances: node
                    .instances
                    .iter()
                    .filter(|id| self.instances[id.index()].state == InstanceState::Running)
                    .count() as u32,
            });
        }

        self.window_started = self.now;
        self.window_arrivals = 0;
        self.window_mix.iter_mut().for_each(|c| *c = 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ConstantArrivals;
    use crate::spec::AppSpec;

    fn demo_sim(seed: u64) -> Simulation {
        Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), seed)
            .arrivals(Box::new(ConstantArrivals::new(200.0)))
            .build()
    }

    #[test]
    fn simulation_is_send() {
        // Fleet runtimes move whole simulations (and their builders)
        // onto worker threads; a regression here breaks `firm-fleet`.
        fn assert_send<T: Send>() {}
        assert_send::<Simulation>();
        assert_send::<SimulationBuilder>();
    }

    #[test]
    fn requests_flow_end_to_end() {
        let mut sim = demo_sim(1);
        sim.run_for(SimDuration::from_secs(2));
        let done = sim.drain_completed();
        assert!(done.len() > 300, "only {} completed", done.len());
        let dropped = done.iter().filter(|r| r.dropped).count();
        assert_eq!(dropped, 0, "unexpected drops in light load");
        for r in &done {
            assert!(r.latency > SimDuration::ZERO);
            assert!(r.root_span().is_some());
            // Three-tier demo: frontend + logic-a + logic-b + store + logger.
            assert_eq!(r.spans.len(), 5, "trace had {} spans", r.spans.len());
        }
    }

    #[test]
    fn trace_structure_is_consistent() {
        let mut sim = demo_sim(2);
        sim.run_for(SimDuration::from_secs(1));
        let done = sim.drain_completed();
        let r = &done[done.len() / 2];
        let root = r.root_span().unwrap();
        assert_eq!(root.calls.len(), 3);
        let background: Vec<_> = r.spans.iter().filter(|s| s.background).collect();
        assert_eq!(background.len(), 1);
        // Parent links resolve within the trace.
        for s in &r.spans {
            if let Some(p) = s.parent {
                assert!(r.spans.iter().any(|o| o.span_id == p));
            }
        }
        // Synchronous calls returned.
        for c in &root.calls {
            if !c.background {
                assert!(c.returned.is_some());
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut sim = demo_sim(seed);
            sim.run_for(SimDuration::from_secs(2));
            let done = sim.drain_completed();
            let lat: Vec<u64> = done.iter().map(|r| r.latency.as_micros()).collect();
            (sim.stats().arrivals, lat)
        };
        let (a1, l1) = run(7);
        let (a2, l2) = run(7);
        assert_eq!(a1, a2);
        assert_eq!(l1, l2);
        let (_, l3) = run(8);
        assert_ne!(l1, l3);
    }

    #[test]
    fn anomaly_inflates_latency_and_recovers() {
        let mut sim = demo_sim(3);
        sim.run_for(SimDuration::from_secs(2));
        let baseline: Vec<u64> = sim
            .drain_completed()
            .iter()
            .filter(|r| !r.dropped)
            .map(|r| r.latency.as_micros())
            .collect();

        // Memory-bandwidth stress on node 0 (frontend and friends).
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            0.95,
            SimDuration::from_secs(2),
        ));
        sim.run_for(SimDuration::from_secs(2));
        let stressed: Vec<u64> = sim
            .drain_completed()
            .iter()
            .filter(|r| !r.dropped)
            .map(|r| r.latency.as_micros())
            .collect();

        sim.run_for(SimDuration::from_secs(2));
        let recovered: Vec<u64> = sim
            .drain_completed()
            .iter()
            .filter(|r| !r.dropped)
            .map(|r| r.latency.as_micros())
            .collect();

        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&stressed) > mean(&baseline) * 1.3,
            "baseline {} stressed {}",
            mean(&baseline),
            mean(&stressed)
        );
        assert!(
            mean(&recovered) < mean(&stressed),
            "stressed {} recovered {}",
            mean(&stressed),
            mean(&recovered)
        );
    }

    #[test]
    fn workload_anomaly_scales_arrivals() {
        let mut sim = demo_sim(4);
        sim.run_for(SimDuration::from_secs(2));
        let before = sim.stats().arrivals;
        sim.inject(AnomalySpec::new(
            AnomalyKind::WorkloadVariation,
            NodeId(0),
            1.0,
            SimDuration::from_secs(2),
        ));
        sim.run_for(SimDuration::from_secs(2));
        let during = sim.stats().arrivals - before;
        assert!(
            during as f64 > before as f64 * 2.0,
            "before {before} during {during}"
        );
    }

    #[test]
    fn scale_out_becomes_ready_after_latency() {
        let mut sim = demo_sim(5);
        let svc = sim.app().service_by_name("logic-a").unwrap();
        assert_eq!(sim.replicas(svc).len(), 1);
        sim.apply(Command::ScaleOut {
            service: svc,
            warm: true,
        });
        // Before the warm-start latency the replica is not Running.
        let starting = sim
            .replicas(svc)
            .iter()
            .filter(|id| sim.instance(**id).state == InstanceState::Starting)
            .count();
        assert_eq!(starting, 1);
        sim.run_for(SimDuration::from_millis(200));
        let running = sim
            .replicas(svc)
            .iter()
            .filter(|id| sim.instance(**id).state == InstanceState::Running)
            .count();
        assert_eq!(running, 2);
    }

    #[test]
    fn scale_in_drains_to_removal() {
        let mut sim = demo_sim(6);
        let svc = sim.app().service_by_name("logic-a").unwrap();
        sim.apply(Command::ScaleOut {
            service: svc,
            warm: true,
        });
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.replicas(svc).len(), 2);
        sim.apply(Command::ScaleIn { service: svc });
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.replicas(svc).len(), 1);
    }

    #[test]
    fn scale_in_never_removes_last_replica() {
        let mut sim = demo_sim(7);
        let svc = sim.app().service_by_name("store").unwrap();
        sim.apply(Command::ScaleIn { service: svc });
        sim.run_for(SimDuration::from_millis(200));
        assert_eq!(sim.replicas(svc).len(), 1);
    }

    #[test]
    fn set_partition_takes_effect_after_latency() {
        let mut sim = demo_sim(8);
        let iid = InstanceId(0);
        sim.apply(Command::SetPartition {
            instance: iid,
            kind: ResourceKind::MemBw,
            amount: 4_000.0,
        });
        assert_eq!(sim.instance(iid).partition(ResourceKind::MemBw), None);
        sim.run_for(SimDuration::from_millis(200));
        assert_eq!(
            sim.instance(iid).partition(ResourceKind::MemBw),
            Some(4_000.0)
        );
        sim.apply(Command::ClearPartition {
            instance: iid,
            kind: ResourceKind::MemBw,
        });
        sim.run_for(SimDuration::from_millis(200));
        assert_eq!(sim.instance(iid).partition(ResourceKind::MemBw), None);
    }

    #[test]
    fn partition_amount_clamped_to_capacity() {
        let mut sim = demo_sim(9);
        let iid = InstanceId(0);
        sim.apply(Command::SetPartition {
            instance: iid,
            kind: ResourceKind::MemBw,
            amount: 1e9,
        });
        sim.run_for(SimDuration::from_millis(200));
        let p = sim.instance(iid).partition(ResourceKind::MemBw).unwrap();
        assert!(p <= 25_600.0 + 1e-9);
    }

    #[test]
    fn telemetry_windows_report_usage() {
        let mut sim = demo_sim(10);
        sim.run_for(SimDuration::from_secs(1));
        let t = sim.drain_telemetry();
        assert_eq!(t.nodes.len(), 2);
        assert!(!t.instances.is_empty());
        assert!(
            (t.arrival_rate - 200.0).abs() < 30.0,
            "rate {}",
            t.arrival_rate
        );
        assert!((t.request_mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let frontend = &t.instances[0];
        assert!(frontend.arrivals > 0);
        assert!(frontend.usage.get(ResourceKind::Cpu) > 0.0);
        assert!(frontend.utilization.get(ResourceKind::Cpu) <= 1.0);
        // Second drain starts a fresh window.
        sim.run_for(SimDuration::from_secs(1));
        let t2 = sim.drain_telemetry();
        assert!(t2.instances[0].arrivals > 0);
    }

    #[test]
    fn cpu_quota_squeeze_causes_queueing() {
        let mut sim = demo_sim(11);
        sim.run_for(SimDuration::from_secs(1));
        sim.drain_completed();
        // Squeeze the frontend to a tiny quota: one worker at 0.05 cores
        // serves ~150 req/s of this workload, below the 200 req/s offered.
        sim.apply(Command::SetPartition {
            instance: InstanceId(0),
            kind: ResourceKind::Cpu,
            amount: 0.05,
        });
        sim.run_for(SimDuration::from_secs(4));
        let done = sim.drain_completed();
        let p99 = {
            let mut v: Vec<u64> = done
                .iter()
                .filter(|r| !r.dropped)
                .map(|r| r.latency.as_micros())
                .collect();
            v.sort_unstable();
            v[(v.len() as f64 * 0.99) as usize - 1]
        };
        assert!(p99 > 20_000, "p99 was {p99}us");
    }

    #[test]
    fn run_stats_accumulate() {
        let mut sim = demo_sim(12);
        sim.run_for(SimDuration::from_secs(2));
        let s = sim.stats();
        assert!(s.arrivals > 300);
        assert!(s.completions > 300);
        assert!(s.mean_latency_us() > 0.0);
        assert!(s.violation_rate() < 0.2);
    }

    #[test]
    fn total_requested_cpu_tracks_quotas() {
        let sim = demo_sim(13);
        let total = sim.total_requested_cpu();
        // 4.0 (frontend) + 2 + 2 + 2 + 2 from the demo defaults.
        assert!((total - 12.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn arrival_log_records_every_arrival_when_enabled() {
        let mut sim = Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 15)
            .arrivals(Box::new(ConstantArrivals::new(200.0)))
            .record_arrivals(true)
            .build();
        sim.run_for(SimDuration::from_secs(2));
        let log = sim.arrival_log();
        assert_eq!(log.len() as u64, sim.stats().arrivals);
        assert!(log.windows(2).all(|w| w[0].at <= w[1].at), "log unsorted");

        // Off by default.
        let mut quiet = demo_sim(15);
        quiet.run_for(SimDuration::from_secs(1));
        assert!(quiet.arrival_log().is_empty());
    }

    #[test]
    fn paused_arrivals_stop_the_stream() {
        let mut sim = demo_sim(14);
        sim.run_for(SimDuration::from_secs(1));
        let before = sim.stats().arrivals;
        sim.set_arrivals_paused(true);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.stats().arrivals, before);
        sim.set_arrivals_paused(false);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.stats().arrivals > before);
    }
}
