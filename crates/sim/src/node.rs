//! Runtime state of a physical node.

use crate::ids::{AnomalyId, InstanceId};
use crate::resources::{ResourceKind, ResourceVec};
use crate::spec::NodeSpec;
use crate::time::SimDuration;

/// A live anomaly contender pinned to this node.
#[derive(Debug, Clone, Copy)]
pub struct ActiveContender {
    /// The injection that created it.
    pub anomaly: AnomalyId,
    /// The resource it stresses.
    pub resource: ResourceKind,
    /// Fraction of the node's capacity it tries to consume, in `[0, 1]`.
    pub intensity: f64,
}

/// A live network-delay injection on this node.
#[derive(Debug, Clone, Copy)]
pub struct ActiveDelay {
    /// The injection that created it.
    pub anomaly: AnomalyId,
    /// Mean added delay per RPC touching this node.
    pub mean: SimDuration,
}

/// Runtime node state: spec plus dynamic contention and placement.
#[derive(Debug, Clone)]
pub struct Node {
    /// Static description.
    pub spec: NodeSpec,
    /// Instances currently placed here (includes starting/draining ones).
    pub instances: Vec<InstanceId>,
    /// Resource-stressing anomalies active on the node.
    pub contenders: Vec<ActiveContender>,
    /// Network-delay anomalies active on the node.
    pub delays: Vec<ActiveDelay>,
}

impl Node {
    /// Wraps a spec into an empty runtime node.
    pub fn new(spec: NodeSpec) -> Self {
        Node {
            spec,
            instances: Vec::new(),
            contenders: Vec::new(),
            delays: Vec::new(),
        }
    }

    /// Capacity of one resource.
    pub fn capacity(&self, kind: ResourceKind) -> f64 {
        self.spec.capacity.get(kind)
    }

    /// Total anomaly pressure on `kind`, as a fraction of capacity in
    /// `[0, 1]` (multiple stressors accumulate but saturate at 1).
    pub fn anomaly_fraction(&self, kind: ResourceKind) -> f64 {
        let total: f64 = self
            .contenders
            .iter()
            .filter(|c| c.resource == kind)
            .map(|c| c.intensity)
            .sum();
        total.min(1.0)
    }

    /// Anomaly pressure on every resource, as absolute units.
    pub fn anomaly_load(&self) -> ResourceVec {
        let mut v = ResourceVec::ZERO;
        for (kind, cap) in self.spec.capacity.iter() {
            v.set(kind, self.anomaly_fraction(kind) * cap);
        }
        v
    }

    /// Mean extra network delay for RPCs touching this node.
    pub fn extra_delay_mean(&self) -> SimDuration {
        let total: u64 = self.delays.iter().map(|d| d.mean.as_micros()).sum();
        SimDuration::from_micros(total)
    }

    /// Removes every contender/delay created by `anomaly`.
    pub fn remove_anomaly(&mut self, anomaly: AnomalyId) {
        self.contenders.retain(|c| c.anomaly != anomaly);
        self.delays.retain(|d| d.anomaly != anomaly);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomaly_fraction_accumulates_and_saturates() {
        let mut n = Node::new(NodeSpec::x86_default());
        assert_eq!(n.anomaly_fraction(ResourceKind::MemBw), 0.0);
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(1),
            resource: ResourceKind::MemBw,
            intensity: 0.6,
        });
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(2),
            resource: ResourceKind::MemBw,
            intensity: 0.7,
        });
        assert_eq!(n.anomaly_fraction(ResourceKind::MemBw), 1.0);
        assert_eq!(n.anomaly_fraction(ResourceKind::Cpu), 0.0);
    }

    #[test]
    fn remove_anomaly_clears_both_kinds() {
        let mut n = Node::new(NodeSpec::x86_default());
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(1),
            resource: ResourceKind::Cpu,
            intensity: 0.5,
        });
        n.delays.push(ActiveDelay {
            anomaly: AnomalyId(1),
            mean: SimDuration::from_millis(5),
        });
        n.remove_anomaly(AnomalyId(1));
        assert!(n.contenders.is_empty());
        assert!(n.delays.is_empty());
    }

    #[test]
    fn anomaly_load_absolute_units() {
        let mut n = Node::new(NodeSpec::x86_default());
        n.contenders.push(ActiveContender {
            anomaly: AnomalyId(1),
            resource: ResourceKind::Cpu,
            intensity: 0.25,
        });
        let load = n.anomaly_load();
        assert_eq!(load.get(ResourceKind::Cpu), 12.0);
        assert_eq!(load.get(ResourceKind::IoBw), 0.0);
    }

    #[test]
    fn delay_means_add() {
        let mut n = Node::new(NodeSpec::x86_default());
        n.delays.push(ActiveDelay {
            anomaly: AnomalyId(1),
            mean: SimDuration::from_millis(5),
        });
        n.delays.push(ActiveDelay {
            anomaly: AnomalyId(2),
            mean: SimDuration::from_millis(3),
        });
        assert_eq!(n.extra_delay_mean().as_micros(), 8_000);
    }
}
