//! Application and cluster specifications.
//!
//! A [`ClusterSpec`] describes the physical nodes; an [`AppSpec`] describes
//! a microservice application as a service graph with per-request-type
//! behaviours. The four benchmark topologies of the paper (Social Network,
//! Media Service, Hotel Reservation, Train-Ticket) are constructed as
//! `AppSpec`s by the `firm-workload` crate.

use crate::ids::{RequestTypeId, ServiceId};
use crate::resources::ResourceVec;

/// Instruction-set architecture of a node; the paper's cluster mixes Intel
/// x86 Xeons and IBM ppc64 Power8/9 machines (§4.1) and Fig. 9(b) compares
/// localization accuracy across the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaArch {
    /// Intel Xeon (x86_64).
    X86,
    /// IBM Power (ppc64).
    Ppc64,
}

impl IsaArch {
    /// Human-readable label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            IsaArch::X86 => "Intel Xeon",
            IsaArch::Ppc64 => "IBM Power",
        }
    }
}

/// Specification of one physical node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Node capacity on each resource dimension.
    pub capacity: ResourceVec,
    /// Processor architecture (affects nothing but reporting and a small
    /// deterministic speed factor, mirroring the paper's heterogeneity).
    pub arch: IsaArch,
    /// Relative per-core speed (1.0 = baseline x86 core).
    pub speed: f64,
}

impl NodeSpec {
    /// A mid-size x86 node: 48 cores, 25.6 GB/s memory bandwidth, 35 MB
    /// LLC, 2 GB/s disk, 1.25 GB/s (10 GbE) network.
    pub fn x86_default() -> Self {
        NodeSpec {
            capacity: ResourceVec::new(48.0, 25_600.0, 35.0, 2_000.0, 1_250.0),
            arch: IsaArch::X86,
            speed: 1.0,
        }
    }

    /// A POWER node: more cores and bandwidth, slightly slower single
    /// thread in our normalization.
    pub fn ppc64_default() -> Self {
        NodeSpec {
            capacity: ResourceVec::new(64.0, 38_400.0, 60.0, 2_400.0, 1_250.0),
            arch: IsaArch::Ppc64,
            speed: 0.92,
        }
    }
}

/// Specification of the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The nodes, indexed by [`crate::ids::NodeId`].
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// The paper's evaluation cluster shape: 15 nodes, 9 x86 + 6 ppc64
    /// (§4.1).
    pub fn paper_cluster() -> Self {
        let mut nodes = Vec::with_capacity(15);
        for _ in 0..9 {
            nodes.push(NodeSpec::x86_default());
        }
        for _ in 0..6 {
            nodes.push(NodeSpec::ppc64_default());
        }
        ClusterSpec { nodes }
    }

    /// A small homogeneous x86 cluster for tests and examples.
    pub fn small(n: usize) -> Self {
        ClusterSpec {
            nodes: (0..n).map(|_| NodeSpec::x86_default()).collect(),
        }
    }

    /// Total capacity across all nodes.
    pub fn total_capacity(&self) -> ResourceVec {
        self.nodes
            .iter()
            .fold(ResourceVec::ZERO, |acc, n| acc.add(&n.capacity))
    }
}

/// Per-request resource demand of one service for one request type.
///
/// Demands are *work amounts*; the simulator divides them by effective
/// resource rates (after contention) to obtain service-time components.
#[derive(Debug, Clone, Copy)]
pub struct DemandProfile {
    /// CPU work per request, in core-microseconds.
    pub cpu_us: f64,
    /// DRAM traffic per request, in MB (before LLC-miss inflation).
    pub mem_mb: f64,
    /// LLC working-set size, in MB; misses inflate DRAM traffic when the
    /// effective LLC share is smaller than this.
    pub llc_ws_mb: f64,
    /// Sensitivity of DRAM traffic to LLC shortfall (0 = insensitive;
    /// 1 = traffic doubles when the service gets no cache).
    pub llc_sensitivity: f64,
    /// Disk I/O per request, in MB.
    pub io_mb: f64,
    /// Response-message size sent back to the caller, in KB.
    pub resp_kb: f64,
    /// Coefficient of variation of the intrinsic service-time noise
    /// (log-normal), modelling per-request heterogeneity.
    pub cv: f64,
}

impl DemandProfile {
    /// A pure-CPU demand with mild variability.
    pub fn cpu_bound(cpu_us: f64) -> Self {
        DemandProfile {
            cpu_us,
            mem_mb: 0.05,
            llc_ws_mb: 0.5,
            llc_sensitivity: 0.2,
            io_mb: 0.0,
            resp_kb: 2.0,
            cv: 0.15,
        }
    }

    /// A memory-bandwidth-heavy demand (e.g. an in-memory store scan).
    pub fn mem_bound(cpu_us: f64, mem_mb: f64) -> Self {
        DemandProfile {
            cpu_us,
            mem_mb,
            llc_ws_mb: 4.0,
            llc_sensitivity: 0.8,
            io_mb: 0.0,
            resp_kb: 8.0,
            cv: 0.2,
        }
    }

    /// An I/O-heavy demand (e.g. a persistent store).
    pub fn io_bound(cpu_us: f64, io_mb: f64) -> Self {
        DemandProfile {
            cpu_us,
            mem_mb: 0.2,
            llc_ws_mb: 1.0,
            llc_sensitivity: 0.3,
            io_mb,
            resp_kb: 4.0,
            cv: 0.25,
        }
    }

    /// Scales every work component by `k` (used to model request-type
    /// weight differences).
    pub fn scaled(&self, k: f64) -> Self {
        DemandProfile {
            cpu_us: self.cpu_us * k,
            mem_mb: self.mem_mb * k,
            io_mb: self.io_mb * k,
            ..*self
        }
    }
}

impl Default for DemandProfile {
    fn default() -> Self {
        DemandProfile::cpu_bound(500.0)
    }
}

/// One downstream RPC issued by a service while handling a request.
#[derive(Debug, Clone, Copy)]
pub struct Call {
    /// The callee service.
    pub target: ServiceId,
    /// Fire-and-forget: the caller does not wait for the response and the
    /// callee's span is excluded from critical paths (§3.2, background
    /// workflows such as `writeTimeline` in Fig. 2).
    pub background: bool,
    /// Request-message size, in KB (transferred over the network).
    pub req_kb: f64,
}

impl Call {
    /// A synchronous call with a small request message.
    pub fn sync(target: ServiceId) -> Self {
        Call {
            target,
            background: false,
            req_kb: 2.0,
        }
    }

    /// A background (fire-and-forget) call.
    pub fn background(target: ServiceId) -> Self {
        Call {
            target,
            background: true,
            req_kb: 2.0,
        }
    }
}

/// A stage of calls issued in parallel; stages run sequentially.
///
/// This encodes the paper's three workflow patterns (§3.2): calls within a
/// stage are *parallel*, consecutive stages are *sequential*, and calls
/// flagged background are *background* workflows.
#[derive(Debug, Clone, Default)]
pub struct Stage {
    /// The calls fired concurrently in this stage.
    pub calls: Vec<Call>,
}

impl Stage {
    /// A stage with a single synchronous call.
    pub fn single(target: ServiceId) -> Self {
        Stage {
            calls: vec![Call::sync(target)],
        }
    }

    /// A stage with several parallel synchronous calls.
    pub fn parallel(targets: &[ServiceId]) -> Self {
        Stage {
            calls: targets.iter().map(|&t| Call::sync(t)).collect(),
        }
    }
}

/// How one service behaves for one request type.
#[derive(Debug, Clone, Default)]
pub struct Behavior {
    /// Resource demand of the local compute phases.
    pub demand: Option<DemandProfile>,
    /// Downstream call stages.
    pub stages: Vec<Stage>,
}

impl Behavior {
    /// Leaf behaviour: compute only, no downstream calls.
    pub fn leaf(demand: DemandProfile) -> Self {
        Behavior {
            demand: Some(demand),
            stages: Vec::new(),
        }
    }

    /// Behaviour with compute plus call stages.
    pub fn with_stages(demand: DemandProfile, stages: Vec<Stage>) -> Self {
        Behavior {
            demand: Some(demand),
            stages,
        }
    }
}

/// A microservice (logical service) in the application graph.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Service name (e.g. `composePost`).
    pub name: String,
    /// Behaviour per request type; `None` entries mean the service does
    /// not participate in that request type.
    pub behaviors: Vec<Option<Behavior>>,
    /// Initial number of replicas.
    pub initial_replicas: u32,
    /// Initial CPU limit per replica (cores).
    pub initial_cpu: f64,
    /// Maximum worker threads per replica; the effective worker count is
    /// `ceil(cpu_limit)` capped by this (§3.4: CPU limit above the thread
    /// count yields no benefit).
    pub max_threads: u32,
    /// Bounded request-queue length per replica; overflow drops the
    /// request (Fig. 10(c) counts drops).
    pub queue_cap: usize,
}

impl ServiceSpec {
    /// Creates a service with no behaviours registered yet.
    pub fn new(name: impl Into<String>, request_types: usize) -> Self {
        ServiceSpec {
            name: name.into(),
            behaviors: vec![None; request_types],
            initial_replicas: 1,
            initial_cpu: 2.0,
            max_threads: 64,
            queue_cap: 512,
        }
    }
}

/// A request type with its workload-mix weight and entry service.
#[derive(Debug, Clone)]
pub struct RequestTypeSpec {
    /// Request-type name (e.g. `post-compose`).
    pub name: String,
    /// The entry (user-facing) service, e.g. Nginx.
    pub entry: ServiceId,
    /// Relative weight in the generated mix.
    pub weight: f64,
    /// End-to-end latency SLO for this request type.
    pub slo_latency_us: u64,
}

/// A complete microservice application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Services, indexed by [`ServiceId`].
    pub services: Vec<ServiceSpec>,
    /// Request types, indexed by [`RequestTypeId`].
    pub request_types: Vec<RequestTypeSpec>,
}

impl AppSpec {
    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Looks up a service by name.
    pub fn service_by_name(&self, name: &str) -> Option<ServiceId> {
        self.services
            .iter()
            .position(|s| s.name == name)
            .map(|i| ServiceId(i as u16))
    }

    /// The behaviour of `service` for `rt`, if it participates.
    pub fn behavior(&self, service: ServiceId, rt: RequestTypeId) -> Option<&Behavior> {
        self.services
            .get(service.index())?
            .behaviors
            .get(rt.index())?
            .as_ref()
    }

    /// Validates structural invariants: behaviours sized to the request
    /// types, call targets in range, at least one request type, no
    /// self-calls, and acyclic synchronous call graphs per request type.
    pub fn validate(&self) -> Result<(), String> {
        if self.request_types.is_empty() {
            return Err("no request types".into());
        }
        for (si, svc) in self.services.iter().enumerate() {
            if svc.behaviors.len() != self.request_types.len() {
                return Err(format!(
                    "service {} has {} behaviours for {} request types",
                    svc.name,
                    svc.behaviors.len(),
                    self.request_types.len()
                ));
            }
            for behavior in svc.behaviors.iter().flatten() {
                for stage in &behavior.stages {
                    for call in &stage.calls {
                        if call.target.index() >= self.services.len() {
                            return Err(format!(
                                "service {} calls out-of-range target {}",
                                svc.name, call.target
                            ));
                        }
                        if call.target.index() == si {
                            return Err(format!("service {} calls itself", svc.name));
                        }
                    }
                }
            }
        }
        for (ri, rt) in self.request_types.iter().enumerate() {
            if rt.entry.index() >= self.services.len() {
                return Err(format!("request type {} has invalid entry", rt.name));
            }
            if self.behavior(rt.entry, RequestTypeId(ri as u16)).is_none() {
                return Err(format!(
                    "entry service of request type {} has no behaviour for it",
                    rt.name
                ));
            }
            self.check_acyclic(rt.entry, RequestTypeId(ri as u16))?;
        }
        Ok(())
    }

    fn check_acyclic(&self, entry: ServiceId, rt: RequestTypeId) -> Result<(), String> {
        // Depth-first search with an explicit on-path marker.
        fn visit(
            app: &AppSpec,
            rt: RequestTypeId,
            s: ServiceId,
            on_path: &mut Vec<bool>,
            done: &mut Vec<bool>,
        ) -> Result<(), String> {
            if done[s.index()] {
                return Ok(());
            }
            if on_path[s.index()] {
                return Err(format!(
                    "cycle through service {} for request type {}",
                    app.services[s.index()].name,
                    rt
                ));
            }
            on_path[s.index()] = true;
            if let Some(b) = app.behavior(s, rt) {
                for stage in &b.stages {
                    for call in &stage.calls {
                        visit(app, rt, call.target, on_path, done)?;
                    }
                }
            }
            on_path[s.index()] = false;
            done[s.index()] = true;
            Ok(())
        }
        let mut on_path = vec![false; self.services.len()];
        let mut done = vec![false; self.services.len()];
        visit(self, rt, entry, &mut on_path, &mut done)
    }

    /// A single-service demo application used by doctests and unit tests.
    pub fn single_service_demo() -> AppSpec {
        let mut svc = ServiceSpec::new("frontend", 1);
        svc.behaviors[0] = Some(Behavior::leaf(DemandProfile::cpu_bound(800.0)));
        svc.initial_cpu = 4.0;
        AppSpec {
            name: "demo".into(),
            services: vec![svc],
            request_types: vec![RequestTypeSpec {
                name: "get".into(),
                entry: ServiceId(0),
                weight: 1.0,
                slo_latency_us: 50_000,
            }],
        }
    }

    /// A three-tier demo (frontend → logic → store) exercising sequential
    /// and parallel stages plus a background call; used by tests.
    pub fn three_tier_demo() -> AppSpec {
        let mut frontend = ServiceSpec::new("frontend", 1);
        let mut logic_a = ServiceSpec::new("logic-a", 1);
        let mut logic_b = ServiceSpec::new("logic-b", 1);
        let mut store = ServiceSpec::new("store", 1);
        let mut logger = ServiceSpec::new("logger", 1);

        store.behaviors[0] = Some(Behavior::leaf(DemandProfile::io_bound(200.0, 0.05)));
        logger.behaviors[0] = Some(Behavior::leaf(DemandProfile::cpu_bound(150.0)));
        logic_a.behaviors[0] = Some(Behavior::with_stages(
            DemandProfile::cpu_bound(600.0),
            vec![Stage::single(ServiceId(3))],
        ));
        logic_b.behaviors[0] = Some(Behavior::leaf(DemandProfile::mem_bound(300.0, 2.0)));
        frontend.behaviors[0] = Some(Behavior {
            demand: Some(DemandProfile::cpu_bound(250.0)),
            stages: vec![
                Stage::parallel(&[ServiceId(1), ServiceId(2)]),
                Stage {
                    calls: vec![Call::background(ServiceId(4))],
                },
            ],
        });
        frontend.initial_cpu = 4.0;

        AppSpec {
            name: "three-tier".into(),
            services: vec![frontend, logic_a, logic_b, store, logger],
            request_types: vec![RequestTypeSpec {
                name: "request".into(),
                entry: ServiceId(0),
                weight: 1.0,
                slo_latency_us: 100_000,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_specs_validate() {
        assert!(AppSpec::single_service_demo().validate().is_ok());
        assert!(AppSpec::three_tier_demo().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let mut app = AppSpec::single_service_demo();
        app.request_types[0].entry = ServiceId(9);
        assert!(app.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_call() {
        let mut app = AppSpec::single_service_demo();
        app.services[0].behaviors[0] = Some(Behavior::with_stages(
            DemandProfile::default(),
            vec![Stage::single(ServiceId(5))],
        ));
        assert!(app.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_call() {
        let mut app = AppSpec::single_service_demo();
        app.services[0].behaviors[0] = Some(Behavior::with_stages(
            DemandProfile::default(),
            vec![Stage::single(ServiceId(0))],
        ));
        assert!(app.validate().is_err());
    }

    #[test]
    fn validate_rejects_cycle() {
        let mut a = ServiceSpec::new("a", 1);
        let mut b = ServiceSpec::new("b", 1);
        a.behaviors[0] = Some(Behavior::with_stages(
            DemandProfile::default(),
            vec![Stage::single(ServiceId(1))],
        ));
        b.behaviors[0] = Some(Behavior::with_stages(
            DemandProfile::default(),
            vec![Stage::single(ServiceId(0))],
        ));
        let app = AppSpec {
            name: "cyclic".into(),
            services: vec![a, b],
            request_types: vec![RequestTypeSpec {
                name: "r".into(),
                entry: ServiceId(0),
                weight: 1.0,
                slo_latency_us: 1_000,
            }],
        };
        assert!(app.validate().is_err());
    }

    #[test]
    fn validate_rejects_mismatched_behaviors() {
        let mut app = AppSpec::single_service_demo();
        app.services[0].behaviors.push(None);
        assert!(app.validate().is_err());
    }

    #[test]
    fn service_lookup_by_name() {
        let app = AppSpec::three_tier_demo();
        assert_eq!(app.service_by_name("store"), Some(ServiceId(3)));
        assert_eq!(app.service_by_name("nope"), None);
    }

    #[test]
    fn cluster_paper_shape() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.nodes.len(), 15);
        let x86 = c.nodes.iter().filter(|n| n.arch == IsaArch::X86).count();
        assert_eq!(x86, 9);
        assert!(c.total_capacity().get(crate::ResourceKind::Cpu) > 500.0);
    }

    #[test]
    fn demand_profile_scaled() {
        let d = DemandProfile::cpu_bound(100.0).scaled(2.0);
        assert_eq!(d.cpu_us, 200.0);
        assert_eq!(d.mem_mb, 0.1);
    }
}
