//! Wire-codec impls for the simulator's plain-data types.
//!
//! Durations travel as integer microseconds (the simulator's native
//! unit, so the round trip is exact); identifiers as their raw
//! integers; anomaly kinds as their report labels, decoded by lookup in
//! [`crate::anomaly::ANOMALY_KINDS`].

use firm_wire::{DecodeError, JsonValue, WireDecode, WireEncode};

use crate::anomaly::{AnomalyKind, ANOMALY_KINDS};
use crate::ids::{InstanceId, NodeId, ServiceId};
use crate::time::SimDuration;

impl WireEncode for SimDuration {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(self.as_micros())
    }
}

impl WireDecode for SimDuration {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(SimDuration::from_micros(u64::decode(v)?))
    }
}

macro_rules! wire_id {
    ($($ty:ident => $raw:ty),*) => {$(
        impl WireEncode for $ty {
            fn encode(&self) -> JsonValue {
                JsonValue::U64(self.raw() as u64)
            }
        }

        impl WireDecode for $ty {
            fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
                Ok($ty(<$raw>::decode(v)?))
            }
        }
    )*};
}

wire_id!(NodeId => u16, ServiceId => u16, InstanceId => u32);

impl WireEncode for AnomalyKind {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.label().to_string())
    }
}

impl WireDecode for AnomalyKind {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        let label = v.as_str()?;
        ANOMALY_KINDS
            .into_iter()
            .find(|k| k.label() == label)
            .ok_or_else(|| DecodeError::new(format!("unknown anomaly kind {label:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_wire::assert_round_trip;

    #[test]
    fn durations_round_trip_exactly() {
        for us in [0u64, 1, 999_999, 30_000_000, u64::MAX / 2] {
            assert_round_trip(&SimDuration::from_micros(us));
        }
    }

    #[test]
    fn ids_round_trip_and_reject_out_of_range() {
        assert_round_trip(&NodeId(7));
        assert_round_trip(&ServiceId(u16::MAX));
        assert_round_trip(&InstanceId(u32::MAX));
        assert!(NodeId::decode(&JsonValue::U64(1 << 20)).is_err());
    }

    #[test]
    fn every_anomaly_kind_round_trips_by_label() {
        for kind in ANOMALY_KINDS {
            assert_round_trip(&kind);
        }
        assert!(AnomalyKind::decode(&JsonValue::Str("nonesuch".into())).is_err());
    }
}
