//! Runtime state of a container instance (one replica of a microservice).

use crate::ids::{NodeId, ServiceId};
use crate::resources::{ResourceKind, ResourceVec, RESOURCE_KINDS};
use crate::time::SimTime;

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Container is starting (Table 6 warm/cold start latency); it is not
    /// yet eligible for load balancing.
    Starting,
    /// Serving requests.
    Running,
    /// Excluded from load balancing, finishing its queue before removal.
    Draining,
    /// Removed from the cluster; the slot is retained for stable IDs.
    Removed,
}

/// Per-window usage accounting for one instance.
///
/// Usage is accumulated as *work amounts* (core-us, MB) and converted to
/// rates/utilizations when a window snapshot is taken.
#[derive(Debug, Clone, Copy, Default)]
pub struct UsageWindow {
    /// CPU work executed, in core-microseconds.
    pub cpu_core_us: f64,
    /// DRAM traffic, in MB (after LLC-miss inflation).
    pub mem_mb: f64,
    /// Disk traffic, in MB.
    pub io_mb: f64,
    /// Network traffic, in MB.
    pub net_mb: f64,
    /// Sum of the LLC share the instance observed at each chunk start
    /// (divide by `chunks` for the average share).
    pub llc_share_sum: f64,
    /// Sum of the observed memory-inflation factors at chunk starts.
    pub inflation_sum: f64,
    /// Number of compute chunks started.
    pub chunks: u64,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests that completed.
    pub completions: u64,
    /// Requests dropped on queue overflow.
    pub drops: u64,
    /// Sum of sampled queue lengths.
    pub queue_len_sum: u64,
    /// Number of queue-length samples.
    pub queue_samples: u64,
    /// Sum of per-request span latencies (us) for completed requests.
    pub latency_sum_us: u64,
}

impl UsageWindow {
    /// Resets the window.
    pub fn clear(&mut self) {
        *self = UsageWindow::default();
    }

    /// Average observed memory-inflation factor (1.0 when no chunks ran).
    pub fn avg_inflation(&self) -> f64 {
        if self.chunks == 0 {
            1.0
        } else {
            self.inflation_sum / self.chunks as f64
        }
    }

    /// Average observed LLC share in MB (0 when no chunks ran).
    pub fn avg_llc_share(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.llc_share_sum / self.chunks as f64
        }
    }

    /// Mean queue length over the window's samples.
    pub fn avg_queue_len(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_len_sum as f64 / self.queue_samples as f64
        }
    }
}

/// A container instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The microservice this instance replicates.
    pub service: ServiceId,
    /// The node it is placed on.
    pub node: NodeId,
    /// Lifecycle state.
    pub state: InstanceState,
    /// When the instance becomes `Running` (while `Starting`).
    pub ready_at: SimTime,
    /// Per-resource partitions: `Some(amount)` = an explicit limit
    /// (cgroups quota / MBA / CAT / blkio / HTB); `None` = best-effort.
    /// CPU always has a quota, Kubernetes-style.
    pub partitions: [Option<f64>; 5],
    /// Maximum worker threads (from the service spec).
    pub max_threads: u32,
    /// Busy workers right now.
    pub busy_workers: u32,
    /// Queued activity handles (indices into the engine's activity slab).
    pub queue: std::collections::VecDeque<usize>,
    /// Queue capacity (overflow drops).
    pub queue_cap: usize,
    /// Current usage-accounting window.
    pub window: UsageWindow,
    /// Lifetime drop counter.
    pub total_drops: u64,
    /// Lifetime completion counter.
    pub total_completions: u64,
    /// Per-resource direct stress from container-level anomaly
    /// injections (§3.6: the injector runs inside the container);
    /// intensity sums in `[0, 1+]` per canonical resource index.
    pub stress: [f64; 5],
}

impl Instance {
    /// Creates an instance in the given lifecycle state.
    pub fn new(
        service: ServiceId,
        node: NodeId,
        cpu_limit: f64,
        max_threads: u32,
        queue_cap: usize,
        state: InstanceState,
        ready_at: SimTime,
    ) -> Self {
        let mut partitions = [None; 5];
        partitions[ResourceKind::Cpu.index()] = Some(cpu_limit);
        Instance {
            service,
            node,
            state,
            ready_at,
            partitions,
            max_threads,
            busy_workers: 0,
            queue: std::collections::VecDeque::new(),
            queue_cap,
            window: UsageWindow::default(),
            total_drops: 0,
            total_completions: 0,
            stress: [0.0; 5],
        }
    }

    /// The instance's CPU quota in cores.
    pub fn cpu_limit(&self) -> f64 {
        self.partitions[ResourceKind::Cpu.index()].unwrap_or(1.0)
    }

    /// Worker-thread count: `ceil(cpu quota)` capped by `max_threads`
    /// (§3.4: raising the CPU limit beyond the thread count cannot help).
    pub fn workers(&self) -> u32 {
        (self.cpu_limit().ceil() as u32).clamp(1, self.max_threads)
    }

    /// Free worker slots.
    pub fn free_workers(&self) -> u32 {
        self.workers().saturating_sub(self.busy_workers)
    }

    /// The partition of `kind`, if set.
    pub fn partition(&self, kind: ResourceKind) -> Option<f64> {
        self.partitions[kind.index()]
    }

    /// Sets or clears the partition of `kind`.
    pub fn set_partition(&mut self, kind: ResourceKind, amount: Option<f64>) {
        self.partitions[kind.index()] = amount;
    }

    /// The resolved resource-limit vector `RLT` (Table 3): the partition
    /// where set, otherwise the node capacity (best-effort is effectively
    /// "limited" only by the hardware).
    pub fn rlt(&self, node_capacity: &ResourceVec) -> ResourceVec {
        let mut v = *node_capacity;
        for kind in RESOURCE_KINDS {
            if let Some(p) = self.partition(kind) {
                v.set(kind, p);
            }
        }
        v
    }

    /// True if the instance participates in load balancing.
    pub fn accepts_load(&self) -> bool {
        self.state == InstanceState::Running
    }

    /// Load metric used by the least-loaded balancer: busy workers plus
    /// queue length.
    pub fn load(&self) -> usize {
        self.busy_workers as usize + self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(cpu: f64) -> Instance {
        Instance::new(
            ServiceId(0),
            NodeId(0),
            cpu,
            64,
            128,
            InstanceState::Running,
            SimTime::ZERO,
        )
    }

    #[test]
    fn workers_follow_quota() {
        assert_eq!(inst(0.5).workers(), 1);
        assert_eq!(inst(1.0).workers(), 1);
        assert_eq!(inst(2.3).workers(), 3);
        let mut i = inst(100.0);
        i.max_threads = 16;
        assert_eq!(i.workers(), 16);
    }

    #[test]
    fn partitions_roundtrip() {
        let mut i = inst(2.0);
        assert_eq!(i.partition(ResourceKind::MemBw), None);
        i.set_partition(ResourceKind::MemBw, Some(512.0));
        assert_eq!(i.partition(ResourceKind::MemBw), Some(512.0));
        i.set_partition(ResourceKind::MemBw, None);
        assert_eq!(i.partition(ResourceKind::MemBw), None);
    }

    #[test]
    fn rlt_falls_back_to_capacity() {
        let mut i = inst(2.0);
        i.set_partition(ResourceKind::IoBw, Some(100.0));
        let cap = ResourceVec::new(48.0, 25_600.0, 35.0, 2_000.0, 1_250.0);
        let rlt = i.rlt(&cap);
        assert_eq!(rlt.get(ResourceKind::Cpu), 2.0);
        assert_eq!(rlt.get(ResourceKind::IoBw), 100.0);
        assert_eq!(rlt.get(ResourceKind::MemBw), 25_600.0);
    }

    #[test]
    fn usage_window_averages() {
        let mut w = UsageWindow::default();
        assert_eq!(w.avg_inflation(), 1.0);
        w.chunks = 2;
        w.inflation_sum = 3.0;
        w.llc_share_sum = 10.0;
        assert_eq!(w.avg_inflation(), 1.5);
        assert_eq!(w.avg_llc_share(), 5.0);
        w.queue_len_sum = 9;
        w.queue_samples = 3;
        assert_eq!(w.avg_queue_len(), 3.0);
        w.clear();
        assert_eq!(w.chunks, 0);
    }

    #[test]
    fn free_workers_saturates() {
        let mut i = inst(2.0);
        i.busy_workers = 5;
        assert_eq!(i.free_workers(), 0);
    }
}
