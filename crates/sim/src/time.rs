//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a monotonically non-decreasing count of microseconds
//! since the start of the run. Microsecond resolution matches the paper's
//! measurement granularity (end-to-end latencies are reported in `us`/`ms`
//! and actuation latencies in fractions of milliseconds).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any practical simulation horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating at zero for negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond and saturating at zero for negative inputs.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e3).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Duration scaled by a non-negative factor, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d.as_micros(), 500_000);
    }

    #[test]
    fn subtraction_saturates() {
        let d = SimTime::from_secs(1) - SimTime::from_secs(2);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_micros(5).saturating_sub(SimDuration::from_micros(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(4);
        assert_eq!(b.since(a).as_secs_f64(), 3.0);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(2.1).as_micros(), 2_100);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(2.5);
        assert_eq!(d.as_micros(), 25_000);
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(-1.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(42)), "42us");
        assert_eq!(format!("{}", SimDuration::from_micros(4_200)), "4.200ms");
        assert_eq!(format!("{}", SimDuration::from_secs(4)), "4.000s");
    }
}
