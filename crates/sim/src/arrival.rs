//! Open-loop request arrival processes.
//!
//! The paper drives its benchmarks with wrk2-style open-loop generators
//! using constant, diurnal, exponential, and spike-laden load shapes
//! (§4.1). The concrete shapes live in `firm-workload`; this module
//! defines the interface the engine pulls arrivals from, plus the two
//! basic processes used by tests.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A source of request inter-arrival times.
///
/// The engine calls [`ArrivalProcess::next_interarrival`] after each
/// arrival; implementations may shape the rate over time (diurnal
/// patterns, spikes). A global load multiplier (workload-variation
/// anomalies) is applied by the engine itself, not by implementations.
///
/// The `Send` supertrait keeps [`crate::Simulation`] (which boxes its
/// arrival process) movable across threads, so fleet runtimes can shard
/// independent simulations over OS workers.
pub trait ArrivalProcess: Send {
    /// Time until the next client request after `now`.
    fn next_interarrival(&mut self, now: SimTime, rng: &mut SimRng) -> SimDuration;

    /// The nominal request rate at `now`, in requests/second; used for
    /// telemetry (the RL state's workload-change feature).
    fn nominal_rate(&self, now: SimTime) -> f64;
}

/// Deterministic constant-rate arrivals.
#[derive(Debug, Clone)]
pub struct ConstantArrivals {
    rate: f64,
}

impl ConstantArrivals {
    /// Creates a constant process at `rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        ConstantArrivals { rate }
    }
}

impl ArrivalProcess for ConstantArrivals {
    fn next_interarrival(&mut self, _now: SimTime, _rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rate)
    }

    fn nominal_rate(&self, _now: SimTime) -> f64 {
        self.rate
    }
}

/// Poisson arrivals (exponential inter-arrival times) at a fixed rate.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process at `rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        PoissonArrivals { rate }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_interarrival(&mut self, _now: SimTime, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.rate))
    }

    fn nominal_rate(&self, _now: SimTime) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_spacing() {
        let mut p = ConstantArrivals::new(200.0);
        let mut rng = SimRng::new(1);
        let d = p.next_interarrival(SimTime::ZERO, &mut rng);
        assert_eq!(d.as_micros(), 5_000);
        assert_eq!(p.nominal_rate(SimTime::ZERO), 200.0);
    }

    #[test]
    fn poisson_mean_close() {
        let mut p = PoissonArrivals::new(100.0);
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| p.next_interarrival(SimTime::ZERO, &mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean was {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        ConstantArrivals::new(0.0);
    }
}
