//! Resource actuation commands and their latencies (§3.5, Table 6).
//!
//! On the real cluster FIRM executes actions through cgroups (CPU, blkio),
//! Intel MBA/CAT (memory bandwidth, LLC), and `tc` HTB (network), plus
//! container start for scale-out. Each operation has a measured latency
//! (Table 6) that lower-bounds how fast any SLO violation can be
//! mitigated (§5). The simulator reproduces those delays: a command takes
//! effect only after its sampled actuation latency elapses.

use crate::ids::{InstanceId, ServiceId};
use crate::resources::ResourceKind;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Mean/standard-deviation actuation latency of one operation class.
#[derive(Debug, Clone, Copy)]
pub struct ActuationLatency {
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Standard deviation in milliseconds.
    pub sd_ms: f64,
}

impl ActuationLatency {
    /// Samples a concrete latency (normal, truncated at 0.1 ms).
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_millis_f64(rng.normal_at_least(self.mean_ms, self.sd_ms, 0.1))
    }
}

/// Table 6 of the paper: average latency for resource-management
/// operations, per resource partition plus warm/cold container start.
pub mod table6 {
    use super::ActuationLatency;
    use crate::resources::ResourceKind;

    /// CPU quota update (`cpu.cfs_quota_us`): 2.1 ± 0.3 ms.
    pub const CPU: ActuationLatency = ActuationLatency {
        mean_ms: 2.1,
        sd_ms: 0.3,
    };
    /// Memory-bandwidth partition (Intel MBA): 42.4 ± 11.0 ms.
    pub const MEM: ActuationLatency = ActuationLatency {
        mean_ms: 42.4,
        sd_ms: 11.0,
    };
    /// LLC partition (Intel CAT): 39.8 ± 9.2 ms.
    pub const LLC: ActuationLatency = ActuationLatency {
        mean_ms: 39.8,
        sd_ms: 9.2,
    };
    /// Disk I/O limit (cgroups blkio): 2.3 ± 0.4 ms.
    pub const IO: ActuationLatency = ActuationLatency {
        mean_ms: 2.3,
        sd_ms: 0.4,
    };
    /// Network limit (tc HTB): 12.3 ± 1.1 ms.
    pub const NET: ActuationLatency = ActuationLatency {
        mean_ms: 12.3,
        sd_ms: 1.1,
    };
    /// Warm container start: 45.7 ± 6.9 ms.
    pub const CONTAINER_WARM: ActuationLatency = ActuationLatency {
        mean_ms: 45.7,
        sd_ms: 6.9,
    };
    /// Cold container start: 2050.8 ± 291.4 ms.
    pub const CONTAINER_COLD: ActuationLatency = ActuationLatency {
        mean_ms: 2050.8,
        sd_ms: 291.4,
    };

    /// Partition-update latency for a resource kind.
    pub const fn partition(kind: ResourceKind) -> ActuationLatency {
        match kind {
            ResourceKind::Cpu => CPU,
            ResourceKind::MemBw => MEM,
            ResourceKind::Llc => LLC,
            ResourceKind::IoBw => IO,
            ResourceKind::NetBw => NET,
        }
    }
}

/// A command issued to the cluster by a resource manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Set the partition (guarantee + cap) of one resource on one
    /// instance; the CAT/MBA/cgroups/HTB write of §3.5.
    SetPartition {
        /// Target instance.
        instance: InstanceId,
        /// The resource to repartition.
        kind: ResourceKind,
        /// New partition size, in the resource's native units.
        amount: f64,
    },
    /// Remove the partition of one resource (back to best-effort sharing).
    ClearPartition {
        /// Target instance.
        instance: InstanceId,
        /// The resource to release.
        kind: ResourceKind,
    },
    /// Start one more replica of a service (scale-out).
    ScaleOut {
        /// The service to scale.
        service: ServiceId,
        /// Whether the image is warm on the chosen node (Table 6 warm vs
        /// cold container-start latency).
        warm: bool,
    },
    /// Remove one replica of a service (scale-in), if more than one runs.
    ScaleIn {
        /// The service to shrink.
        service: ServiceId,
    },
}

impl Command {
    /// The actuation latency class for this command.
    pub fn latency(&self) -> ActuationLatency {
        match self {
            Command::SetPartition { kind, .. } | Command::ClearPartition { kind, .. } => {
                table6::partition(*kind)
            }
            Command::ScaleOut { warm: true, .. } => table6::CONTAINER_WARM,
            Command::ScaleOut { warm: false, .. } => table6::CONTAINER_COLD,
            // Scale-in is a deletion; model it like a CPU-quota write.
            Command::ScaleIn { .. } => table6::CPU,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_values_match_paper() {
        assert_eq!(table6::CPU.mean_ms, 2.1);
        assert_eq!(table6::MEM.mean_ms, 42.4);
        assert_eq!(table6::LLC.mean_ms, 39.8);
        assert_eq!(table6::IO.mean_ms, 2.3);
        assert_eq!(table6::NET.mean_ms, 12.3);
        assert_eq!(table6::CONTAINER_WARM.mean_ms, 45.7);
        assert_eq!(table6::CONTAINER_COLD.mean_ms, 2050.8);
    }

    #[test]
    fn sample_is_positive_and_near_mean() {
        let mut rng = SimRng::new(9);
        let mut total = 0.0;
        let n = 5_000;
        for _ in 0..n {
            let d = table6::MEM.sample(&mut rng);
            assert!(d.as_micros() >= 100);
            total += d.as_millis_f64();
        }
        let mean = total / n as f64;
        assert!((mean - 42.4).abs() < 1.0, "mean was {mean}");
    }

    #[test]
    fn command_latency_class() {
        let cmd = Command::SetPartition {
            instance: InstanceId(0),
            kind: ResourceKind::Llc,
            amount: 10.0,
        };
        assert_eq!(cmd.latency().mean_ms, 39.8);
        let out = Command::ScaleOut {
            service: ServiceId(0),
            warm: false,
        };
        assert_eq!(out.latency().mean_ms, 2050.8);
    }
}
