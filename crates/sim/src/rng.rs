//! Deterministic random-number generation for reproducible simulations.
//!
//! Every stochastic decision in a simulation run draws from a single
//! [`SimRng`] seeded at construction, so a `(seed, spec)` pair fully
//! determines a run. The generator core is the workspace's canonical
//! [`firm_rng::Xoshiro256`]; the distributions the simulator and the
//! workload generators need (uniform, exponential, normal, log-normal,
//! Pareto, weighted choice) are implemented here directly, so no
//! external dependencies are involved and the byte-level stream is
//! stable across toolchains.

use firm_rng::Xoshiro256;

/// Deterministic RNG with the distribution helpers the simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256::new(seed),
        }
    }

    /// Derives an independent child generator; useful for giving
    /// subsystems their own streams without coupling their draw counts.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.next_u64())
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.inner.next_below(n as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Exponential draw with the given rate (events per unit time).
    ///
    /// Returns `f64::INFINITY` for non-positive rates, which callers treat
    /// as "never".
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        // Inverse-transform sampling; `1 - u` avoids ln(0).
        let u: f64 = 1.0 - self.uniform();
        -u.ln() / rate
    }

    /// Normal draw via the Box-Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2: f64 = self.uniform();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Normal draw truncated below at `floor`.
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Log-normal draw parameterized by the mean and coefficient of
    /// variation of the *resulting* distribution.
    ///
    /// Service-time variability in the simulator is log-normal, the usual
    /// heavy-ish-tailed model for request service times.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.normal(0.0, 1.0)).exp()
    }

    /// Pareto draw with scale `x_m` and shape `alpha`; used for
    /// heavy-tailed think/flow sizes.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        let u: f64 = 1.0 - self.uniform();
        x_m / u.powf(1.0 / alpha)
    }

    /// Weighted choice over `weights`; returns the chosen index.
    ///
    /// Non-positive weights are treated as zero. Falls back to the last
    /// index if rounding leaves the cursor past the end.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or all weights are non-positive.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index() requires weights");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "weighted_index() requires a positive weight");
        let mut cursor = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if cursor < w {
                return i;
            }
            cursor -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn exponential_nonpositive_rate_is_never() {
        let mut rng = SimRng::new(3);
        assert!(rng.exponential(0.0).is_infinite());
        assert!(rng.exponential(-1.0).is_infinite());
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "var was {var}");
    }

    #[test]
    fn lognormal_mean_cv_matches_target() {
        let mut rng = SimRng::new(11);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_cv(5.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean was {mean}");
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn lognormal_degenerate_cases() {
        let mut rng = SimRng::new(11);
        assert_eq!(rng.lognormal_mean_cv(0.0, 0.5), 0.0);
        assert_eq!(rng.lognormal_mean_cv(5.0, 0.0), 5.0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(13);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SimRng::new(17);
        let mut child = a.fork();
        // The child stream must not simply mirror the parent.
        let equal = (0..32).filter(|_| a.uniform() == child.uniform()).count();
        assert!(equal < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
