//! Distributed-tracing substrate for the FIRM reproduction.
//!
//! The paper's Tracing Coordinator (§3.1) collects OpenTracing spans from
//! per-instance agents, assembles them into *execution history graphs*,
//! and stores them in a graph database (Neo4j) for critical-path and
//! critical-component queries. This crate provides the same pipeline over
//! the simulator's [`firm_sim::SpanRecord`]s:
//!
//! * [`graph::ExecutionHistoryGraph`] — the space-time DAG of one request
//!   (Definition 2.2), with workflow classification (sequential /
//!   parallel / background, §3.2).
//! * [`mod@critical_path`] — Algorithm 1: weighted longest-path extraction
//!   with `lastReturnedChild` and happens-before recursion.
//! * [`store::TraceStore`] — a bounded in-memory property-graph store
//!   standing in for the paper's Neo4j instance.
//! * [`coordinator::TracingCoordinator`] — the stateless ingestion and
//!   query front-end used by FIRM's Extractor.
//! * [`depgraph::ServiceDependencyGraph`] — the aggregated service
//!   dependency graph (Definition 2.1).
//!
//! # Examples
//!
//! ```
//! use firm_sim::{
//!     spec::{AppSpec, ClusterSpec},
//!     SimDuration,
//!     Simulation,
//! };
//! use firm_trace::coordinator::TracingCoordinator;
//!
//! let mut sim = Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 7)
//!     .build();
//! let mut coordinator = TracingCoordinator::new(10_000);
//! sim.run_for(SimDuration::from_secs(1));
//! coordinator.ingest(sim.drain_completed());
//! let cps = coordinator.critical_paths_since(firm_sim::SimTime::ZERO);
//! assert!(!cps.is_empty());
//! ```

pub mod coordinator;
pub mod critical_path;
pub mod depgraph;
pub mod graph;
pub mod store;

pub use coordinator::TracingCoordinator;
pub use critical_path::{critical_path, CriticalPath, PathEntry};
pub use depgraph::ServiceDependencyGraph;
pub use graph::{ExecutionHistoryGraph, SiblingRelation};
pub use store::{StoredTrace, TraceStore};
