//! Service dependency graphs (Definition 2.1 of the paper).
//!
//! The service dependency graph aggregates communication dependencies
//! (RPC edges) between services across many traces — Fig. 2(a) of the
//! paper. FIRM uses it for reporting and to reason about which services a
//! request type touches.

use std::collections::BTreeMap;

use firm_sim::{CompletedRequest, RequestTypeId, ServiceId};

/// An aggregated caller→callee edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DependencyEdge {
    /// Calling service.
    pub caller: ServiceId,
    /// Called service.
    pub callee: ServiceId,
}

/// Aggregated statistics of one dependency edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeStats {
    /// Number of calls observed.
    pub calls: u64,
    /// Number of background (fire-and-forget) calls among them.
    pub background_calls: u64,
}

/// The service dependency graph, built incrementally from traces.
#[derive(Debug, Clone, Default)]
pub struct ServiceDependencyGraph {
    edges: BTreeMap<(u16, u16), EdgeStats>,
    touched: BTreeMap<u16, Vec<RequestTypeId>>,
}

impl ServiceDependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one trace into the graph.
    pub fn observe(&mut self, request: &CompletedRequest) {
        for span in &request.spans {
            let rts = self.touched.entry(span.service.raw()).or_default();
            if !rts.contains(&request.request_type) {
                rts.push(request.request_type);
            }
            for call in &span.calls {
                let stats = self
                    .edges
                    .entry((span.service.raw(), call.target.raw()))
                    .or_default();
                stats.calls += 1;
                if call.background {
                    stats.background_calls += 1;
                }
            }
        }
    }

    /// Folds many traces into the graph.
    pub fn observe_all<'a>(&mut self, requests: impl IntoIterator<Item = &'a CompletedRequest>) {
        for r in requests {
            self.observe(r);
        }
    }

    /// Iterates edges with their statistics, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (DependencyEdge, EdgeStats)> + '_ {
        self.edges.iter().map(|(&(a, b), &stats)| {
            (
                DependencyEdge {
                    caller: ServiceId(a),
                    callee: ServiceId(b),
                },
                stats,
            )
        })
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Services observed anywhere in the graph.
    pub fn services(&self) -> Vec<ServiceId> {
        self.touched.keys().map(|&s| ServiceId(s)).collect()
    }

    /// The request types observed to traverse `service` — the darker
    /// vertices of Fig. 2(a) for a given request type.
    pub fn request_types_of(&self, service: ServiceId) -> &[RequestTypeId] {
        self.touched
            .get(&service.raw())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::{
        spec::{AppSpec, ClusterSpec},
        SimDuration, Simulation,
    };

    #[test]
    fn aggregates_three_tier_edges() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 5).build();
        sim.run_for(SimDuration::from_secs(1));
        let traces = sim.drain_completed();
        let n = traces.len() as u64;
        let mut g = ServiceDependencyGraph::new();
        g.observe_all(&traces);

        // frontend→logic-a, frontend→logic-b, frontend→logger, logic-a→store.
        assert_eq!(g.edge_count(), 4);
        let edges: Vec<_> = g.edges().collect();
        let logger_edge = edges
            .iter()
            .find(|(e, _)| e.callee == ServiceId(4))
            .expect("logger edge");
        assert_eq!(logger_edge.1.background_calls, logger_edge.1.calls);
        let store_edge = edges
            .iter()
            .find(|(e, _)| e.caller == ServiceId(1) && e.callee == ServiceId(3))
            .expect("store edge");
        assert_eq!(store_edge.1.calls, n);
        assert_eq!(store_edge.1.background_calls, 0);

        assert_eq!(g.services().len(), 5);
        assert_eq!(g.request_types_of(ServiceId(0)).len(), 1);
        assert!(g.request_types_of(ServiceId(99)).is_empty());
    }
}
