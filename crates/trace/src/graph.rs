//! Execution history graphs (Definition 2.2 of the paper).
//!
//! An execution history graph is the space-time diagram of one distributed
//! request: vertices are spans (send/receive/compute collapse into the
//! span's timeline) and edges are the RPC invocations. The graph also
//! classifies sibling spans into the paper's three workflow patterns
//! (§3.2): *parallel* (overlapping), *sequential* (happens-before), and
//! *background* (no return value).

use firm_sim::{CompletedRequest, SimTime, SpanId, SpanRecord};

/// Relation between two synchronous sibling calls (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiblingRelation {
    /// Their active intervals overlap: `(st_j < st_i < et_j) ∨
    /// (st_i < st_j < et_i)`.
    Parallel,
    /// The first returns before the second is sent (happens-before).
    Sequential,
    /// At least one is a background (fire-and-forget) call.
    Background,
}

/// A node of the execution history graph: one span plus its resolved
/// child links.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Index into [`ExecutionHistoryGraph::spans`].
    pub span_idx: usize,
    /// Indices of child nodes, in call order.
    pub children: Vec<usize>,
    /// Index of the parent node, if any.
    pub parent: Option<usize>,
}

/// The execution history graph of one completed request.
#[derive(Debug, Clone)]
pub struct ExecutionHistoryGraph {
    /// The spans, as recorded (completion order).
    pub spans: Vec<SpanRecord>,
    /// One node per span, same indexing as `spans`.
    pub nodes: Vec<GraphNode>,
    /// Index of the root span's node.
    pub root: usize,
}

impl ExecutionHistoryGraph {
    /// Builds the graph from a completed request, taking ownership of
    /// its spans — the span buffers travel from the simulator into the
    /// graph without a copy.
    ///
    /// Returns `None` if the trace has no root span or contains a parent
    /// reference that never completed (partial traces are skipped by the
    /// coordinator, matching how Jaeger drops incomplete traces).
    pub fn build(request: CompletedRequest) -> Option<Self> {
        Self::from_spans(request.spans)
    }

    /// Builds the graph from raw spans.
    pub fn from_spans(spans: Vec<SpanRecord>) -> Option<Self> {
        let mut root = None;
        let mut nodes: Vec<GraphNode> = (0..spans.len())
            .map(|i| GraphNode {
                span_idx: i,
                children: Vec::new(),
                parent: None,
            })
            .collect();

        // Resolve parent links through span ids.
        let find = |id: SpanId, spans: &[SpanRecord]| -> Option<usize> {
            spans.iter().position(|s| s.span_id == id)
        };
        for i in 0..spans.len() {
            match spans[i].parent {
                None => {
                    if root.is_some() {
                        return None; // Two roots: malformed.
                    }
                    root = Some(i);
                }
                Some(pid) => {
                    let p = find(pid, &spans)?;
                    nodes[i].parent = Some(p);
                    nodes[p].children.push(i);
                }
            }
        }
        // Order children by send time so traversal is deterministic.
        for p in 0..nodes.len() {
            let mut children = std::mem::take(&mut nodes[p].children);
            children.sort_by_key(|&c| {
                spans[p]
                    .calls
                    .iter()
                    .find(|call| call.child_span == spans[c].span_id)
                    .map(|call| call.sent)
                    .unwrap_or(SimTime::ZERO)
            });
            nodes[p].children = children;
        }
        let root = root?;
        Some(ExecutionHistoryGraph { spans, nodes, root })
    }

    /// The root span.
    pub fn root_span(&self) -> &SpanRecord {
        &self.spans[self.root]
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the graph has no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Classifies the relation between two child calls of `parent`
    /// (identified by positions in the parent's call list).
    ///
    /// Returns `None` if the indexes are invalid or the calls never
    /// resolved to spans.
    pub fn sibling_relation(&self, parent: usize, a: usize, b: usize) -> Option<SiblingRelation> {
        let p = &self.spans[self.nodes.get(parent)?.span_idx];
        let ca = p.calls.get(a)?;
        let cb = p.calls.get(b)?;
        if ca.background || cb.background {
            return Some(SiblingRelation::Background);
        }
        // Child activity interval: sent → returned. The paper's overlap
        // test uses strict inequalities; we additionally treat calls sent
        // at the same instant as overlapping (the simulator fires a
        // stage's calls at one timestamp).
        let (sa, ea) = (ca.sent, ca.returned?);
        let (sb, eb) = (cb.sent, cb.returned?);
        let overlap = sa.max(sb) < ea.min(eb);
        if overlap {
            Some(SiblingRelation::Parallel)
        } else {
            Some(SiblingRelation::Sequential)
        }
    }

    /// Iterates `(parent_idx, child_idx)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(p, n)| n.children.iter().map(move |&c| (p, c)))
    }

    /// Depth of the graph (root = 1).
    ///
    /// Iterative: the wire parser caps document nesting at 128, but
    /// graphs built in-process have no depth cap, so a recursive walk
    /// could overflow the stack on a pathologically deep call chain.
    pub fn depth(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut max_depth = 0;
        let mut stack: Vec<(usize, usize)> = vec![(self.root, 1)];
        while let Some((n, d)) = stack.pop() {
            max_depth = max_depth.max(d);
            for &c in &self.nodes[n].children {
                stack.push((c, d + 1));
            }
        }
        max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::{
        spec::{AppSpec, ClusterSpec},
        SimDuration, Simulation,
    };

    fn one_trace() -> CompletedRequest {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 42).build();
        sim.run_for(SimDuration::from_secs(1));
        let mut done = sim.drain_completed();
        done.remove(done.len() / 2)
    }

    #[test]
    fn builds_from_simulated_trace() {
        let req = one_trace();
        let g = ExecutionHistoryGraph::build(req).expect("graph builds");
        assert_eq!(g.len(), 5);
        assert!(g.root_span().parent.is_none());
        assert_eq!(g.depth(), 3); // frontend → logic-a → store.
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn children_sorted_by_send_time() {
        let req = one_trace();
        let g = ExecutionHistoryGraph::build(req).expect("graph builds");
        let root = &g.nodes[g.root];
        let sent: Vec<_> = root
            .children
            .iter()
            .map(|&c| {
                g.root_span()
                    .calls
                    .iter()
                    .find(|call| call.child_span == g.spans[c].span_id)
                    .unwrap()
                    .sent
            })
            .collect();
        for w in sent.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn sibling_relations_classified() {
        let req = one_trace();
        let g = ExecutionHistoryGraph::build(req).expect("graph builds");
        // The three-tier frontend fires logic-a and logic-b in parallel
        // (stage 0, calls 0 and 1), and a background logger (call 2).
        assert_eq!(
            g.sibling_relation(g.root, 0, 1),
            Some(SiblingRelation::Parallel)
        );
        assert_eq!(
            g.sibling_relation(g.root, 0, 2),
            Some(SiblingRelation::Background)
        );
        assert_eq!(g.sibling_relation(g.root, 0, 9), None);
    }

    #[test]
    fn depth_survives_pathologically_deep_chains() {
        // A 200_000-deep linear call chain, assembled directly: the wire
        // parser caps document nesting at 128, but in-process graphs
        // have no cap, and the old recursive depth() overflowed the
        // stack well before this size.
        use firm_sim::{InstanceId, RequestTypeId, ServiceId};
        let n = 200_000usize;
        let spans: Vec<SpanRecord> = (0..n)
            .map(|i| SpanRecord {
                trace_id: firm_sim::TraceId(1),
                span_id: SpanId(i as u64),
                parent: (i > 0).then(|| SpanId(i as u64 - 1)),
                service: ServiceId(0),
                instance: InstanceId(0),
                request_type: RequestTypeId(0),
                start: SimTime::from_micros(i as u64),
                end: SimTime::from_micros(i as u64 + 1),
                work_start: SimTime::from_micros(i as u64),
                background: false,
                dropped: false,
                calls: Vec::new(),
            })
            .collect();
        let nodes: Vec<GraphNode> = (0..n)
            .map(|i| GraphNode {
                span_idx: i,
                children: if i + 1 < n { vec![i + 1] } else { Vec::new() },
                parent: (i > 0).then(|| i - 1),
            })
            .collect();
        let g = ExecutionHistoryGraph {
            spans,
            nodes,
            root: 0,
        };
        assert_eq!(g.depth(), n);
    }

    #[test]
    fn rejects_malformed_traces() {
        let req = one_trace();
        // Remove the root: orphaned children make the build fail.
        let spans: Vec<_> = req
            .spans
            .iter()
            .filter(|s| s.parent.is_some())
            .cloned()
            .collect();
        assert!(ExecutionHistoryGraph::from_spans(spans).is_none());
        assert!(ExecutionHistoryGraph::from_spans(Vec::new()).is_none());
    }

    #[test]
    fn rejects_two_roots() {
        let req = one_trace();
        let mut spans = req.spans.clone();
        let mut extra = spans[0].clone();
        extra.parent = None;
        extra.span_id = firm_sim::SpanId(999_999);
        spans.push(extra);
        // Now two spans have no parent.
        let roots = spans.iter().filter(|s| s.parent.is_none()).count();
        assert_eq!(roots, 2);
        assert!(ExecutionHistoryGraph::from_spans(spans).is_none());
    }
}
