//! A bounded in-memory trace/graph store.
//!
//! Stands in for the paper's Neo4j graph database (§3.1): it stores
//! execution history graphs with their extracted critical paths and
//! answers the time-windowed queries FIRM's Extractor issues (traces
//! since t, latency vectors per instance, CP groupings). Capacity is
//! bounded; the oldest traces are evicted first.

use std::collections::VecDeque;

use firm_sim::{CompletedRequest, InstanceId, RequestTypeId, SimDuration, SimTime, TraceId};

use crate::critical_path::{critical_path, CriticalPath};
use crate::graph::ExecutionHistoryGraph;

/// A stored trace: the graph plus its pre-extracted critical path.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// Trace identifier.
    pub trace_id: TraceId,
    /// Request type.
    pub request_type: RequestTypeId,
    /// Client-side start time.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Whether the request was dropped.
    pub dropped: bool,
    /// The execution history graph.
    pub graph: ExecutionHistoryGraph,
    /// The critical path (extracted at ingestion, as the paper folds CP
    /// extraction into span construction).
    pub cp: CriticalPath,
}

/// Builds one [`StoredTrace`] from a completed request — graph
/// construction plus Algorithm 1 critical-path extraction, the
/// compute-heavy half of ingestion. Returns `None` for malformed traces
/// (no root / dangling parent).
///
/// This is a pure function of its input: no store state, no RNG, no
/// clocks. That is what makes it safe to evaluate on shard threads —
/// any schedule of calls produces the same per-trace values, and a
/// merge ordered by input index reproduces sequential ingestion bit for
/// bit.
pub fn build_stored(request: CompletedRequest) -> Option<StoredTrace> {
    let CompletedRequest {
        trace_id,
        request_type,
        started,
        finished,
        latency,
        dropped,
        spans,
    } = request;
    let graph = ExecutionHistoryGraph::from_spans(spans)?;
    let cp = critical_path(&graph);
    Some(StoredTrace {
        trace_id,
        request_type,
        started,
        finished,
        latency,
        dropped,
        graph,
        cp,
    })
}

/// Bounded trace store with time-windowed queries.
#[derive(Debug)]
pub struct TraceStore {
    traces: VecDeque<StoredTrace>,
    capacity: usize,
    ingested: u64,
    rejected: u64,
}

impl TraceStore {
    /// Creates a store holding at most `capacity` traces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TraceStore {
            traces: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            ingested: 0,
            rejected: 0,
        }
    }

    /// Ingests one completed request; returns `false` if the trace was
    /// malformed (no root / dangling parent) and rejected.
    ///
    /// The request's span buffers move into the stored graph — each
    /// trace is materialized exactly once between the simulator and the
    /// store.
    pub fn ingest(&mut self, request: CompletedRequest) -> bool {
        self.insert_built(build_stored(request))
    }

    /// Inserts the result of [`build_stored`]: the sequential,
    /// order-sensitive half of ingestion (rejection accounting,
    /// capacity eviction, deque append). Callers that build traces on
    /// shard threads feed the results back through here in input order,
    /// which keeps the store byte-identical to sequential ingestion.
    pub fn insert_built(&mut self, built: Option<StoredTrace>) -> bool {
        let Some(trace) = built else {
            self.rejected += 1;
            return false;
        };
        if self.traces.len() == self.capacity {
            self.traces.pop_front();
        }
        self.traces.push_back(trace);
        self.ingested += 1;
        true
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total traces ever ingested.
    pub fn total_ingested(&self) -> u64 {
        self.ingested
    }

    /// Traces rejected as malformed.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }

    /// All stored traces, oldest first.
    pub fn all(&self) -> impl Iterator<Item = &StoredTrace> {
        self.traces.iter()
    }

    /// Traces finished at or after `since`.
    ///
    /// A linear filter, deliberately: traces are ingested in
    /// *finalization* order, but `finished` records the root-response
    /// time, and a background span can outlive the root response — so
    /// `finished` is not monotone across the deque and a binary-searched
    /// window would drop stragglers.
    pub fn since(&self, since: SimTime) -> impl Iterator<Item = &StoredTrace> {
        self.traces.iter().filter(move |t| t.finished >= since)
    }

    /// Traces of one request type finished at or after `since`.
    pub fn since_of_type(
        &self,
        since: SimTime,
        rt: RequestTypeId,
    ) -> impl Iterator<Item = &StoredTrace> {
        self.since(since).filter(move |t| t.request_type == rt)
    }

    /// Per-instance span-latency samples (us) across traces finished at
    /// or after `since`, paired with the owning trace's end-to-end
    /// latency (us) — the aligned `(Ti, TCP)` vectors of Alg. 2.
    pub fn instance_latency_pairs(&self, since: SimTime, instance: InstanceId) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for t in self.since(since) {
            if t.dropped {
                continue;
            }
            for span in &t.graph.spans {
                if span.instance == instance {
                    out.push((
                        span.duration().as_micros() as f64,
                        t.latency.as_micros() as f64,
                    ));
                }
            }
        }
        out
    }

    /// Evicts traces finished before `before`.
    pub fn evict_before(&mut self, before: SimTime) {
        while let Some(front) = self.traces.front() {
            if front.finished < before {
                self.traces.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::{
        spec::{AppSpec, ClusterSpec},
        Simulation,
    };

    fn traces(seed: u64, secs: u64) -> Vec<CompletedRequest> {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), seed).build();
        sim.run_for(SimDuration::from_secs(secs));
        sim.drain_completed()
    }

    #[test]
    fn ingest_and_query() {
        let ts = traces(3, 1);
        let n = ts.len();
        let mut store = TraceStore::new(10_000);
        for t in ts {
            assert!(store.ingest(t));
        }
        assert_eq!(store.len(), n);
        assert_eq!(store.total_ingested(), n as u64);
        assert_eq!(store.since(SimTime::ZERO).count(), n);
        assert_eq!(
            store.since_of_type(SimTime::ZERO, RequestTypeId(0)).count(),
            n
        );
        assert_eq!(
            store.since_of_type(SimTime::ZERO, RequestTypeId(9)).count(),
            0
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let ts = traces(4, 1);
        let mut store = TraceStore::new(10);
        let first_id = ts[0].trace_id;
        for t in ts {
            store.ingest(t);
        }
        assert_eq!(store.len(), 10);
        assert!(store.all().all(|t| t.trace_id != first_id));
    }

    #[test]
    fn rejects_malformed() {
        let mut ts = traces(5, 1);
        let mut bad = ts.pop().unwrap();
        bad.spans.retain(|s| s.parent.is_some());
        let mut store = TraceStore::new(16);
        assert!(!store.ingest(bad));
        assert_eq!(store.total_rejected(), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn latency_pairs_align() {
        let ts = traces(6, 1);
        let mut store = TraceStore::new(10_000);
        let n = ts.len();
        for t in ts {
            store.ingest(t);
        }
        // Instance 0 is the frontend; it appears in every trace.
        let pairs = store.instance_latency_pairs(SimTime::ZERO, InstanceId(0));
        assert_eq!(pairs.len(), n);
        for (ti, tcp) in pairs {
            assert!(ti > 0.0);
            assert!(tcp >= ti * 0.5);
        }
    }

    #[test]
    fn evict_before_drops_old_traces() {
        let ts = traces(7, 2);
        let mut store = TraceStore::new(100_000);
        for t in ts {
            store.ingest(t);
        }
        let before = store.len();
        store.evict_before(SimTime::from_secs(1));
        assert!(store.len() < before);
        assert!(store.all().all(|t| t.finished >= SimTime::from_secs(1)));
    }

    use firm_sim::SimDuration;
}
