//! The Tracing Coordinator (§3.1 of the paper).
//!
//! A stateless, replicable data-processing front-end that collects spans
//! from tracing agents, combines them into execution history graphs, and
//! stores them in the graph store. FIRM's Extractor queries it for
//! critical paths and per-instance latency vectors over sliding windows.
//!
//! In the paper the coordinator also handles clock drift (via Jaeger);
//! the simulator has a global clock, so that concern disappears.

use firm_par::ShardPool;
use firm_sim::{CompletedRequest, InstanceId, RequestTypeId, SimTime};

use crate::critical_path::CriticalPath;
use crate::depgraph::ServiceDependencyGraph;
use crate::store::{build_stored, StoredTrace, TraceStore};

/// Span-collection and query front-end.
#[derive(Debug)]
pub struct TracingCoordinator {
    store: TraceStore,
    depgraph: ServiceDependencyGraph,
    sampling: f64,
    skipped: u64,
}

impl TracingCoordinator {
    /// Creates a coordinator whose store holds at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        TracingCoordinator {
            store: TraceStore::new(capacity),
            depgraph: ServiceDependencyGraph::new(),
            sampling: 1.0,
            skipped: 0,
        }
    }

    /// Sets the trace sampling fraction in `[0, 1]` (head-based sampling,
    /// as in Jaeger); traces are accepted deterministically by trace-id
    /// hash so replicas agree.
    pub fn set_sampling(&mut self, fraction: f64) {
        self.sampling = fraction.clamp(0.0, 1.0);
    }

    /// Ingests a batch of completed requests.
    pub fn ingest(&mut self, requests: Vec<CompletedRequest>) {
        for r in requests {
            if !self.accept(&r) {
                continue;
            }
            self.depgraph.observe(&r);
            self.store.ingest(r);
        }
    }

    /// Ingests a batch with the graph/critical-path construction fanned
    /// out over `pool`'s shards.
    ///
    /// Ingestion splits into three phases: a sequential pre-pass
    /// (sampling decision + dependency-graph observation, both
    /// order-sensitive), a parallel build of each accepted trace's
    /// graph and critical path ([`build_stored`] is pure, and each
    /// shard owns a disjoint contiguous index range), and a sequential
    /// merge that inserts the built traces in input order. Because the
    /// build is pure and the merge is index-ordered, the store ends up
    /// byte-identical to [`TracingCoordinator::ingest`] at any shard
    /// count — the property `tests/fleet_determinism.rs` pins.
    ///
    /// Small windows fall back to the sequential path: below a few
    /// dozen traces, spawn-and-join overhead exceeds the build work.
    pub fn ingest_sharded(&mut self, requests: Vec<CompletedRequest>, pool: &ShardPool) {
        /// Fan-out pays for itself only when each shard gets a real
        /// chunk of graph builds.
        const MIN_PARALLEL: usize = 64;
        if pool.is_sequential() || requests.len() < MIN_PARALLEL {
            return self.ingest(requests);
        }
        let mut accepted: Vec<Option<CompletedRequest>> = Vec::with_capacity(requests.len());
        for r in requests {
            if !self.accept(&r) {
                continue;
            }
            self.depgraph.observe(&r);
            accepted.push(Some(r));
        }
        let mut built: Vec<Option<StoredTrace>> = Vec::new();
        built.resize_with(accepted.len(), || None);
        pool.zip_chunks(&mut accepted, &mut built, |_, reqs, outs| {
            for (r, out) in reqs.iter_mut().zip(outs) {
                *out = build_stored(r.take().expect("each request consumed once"));
            }
        });
        for b in built {
            self.store.insert_built(b);
        }
    }

    /// The head-based sampling decision for one request; counts skips.
    fn accept(&mut self, r: &CompletedRequest) -> bool {
        if self.sampling >= 1.0 {
            return true;
        }
        // Cheap splitmix-style hash of the trace id.
        let mut x = r.trace_id.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.sampling {
            self.skipped += 1;
            return false;
        }
        true
    }

    /// The underlying store.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The aggregated service dependency graph.
    pub fn dependency_graph(&self) -> &ServiceDependencyGraph {
        &self.depgraph
    }

    /// Traces skipped by sampling.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Critical paths of traces finished at or after `since` (non-dropped
    /// only), newest last.
    pub fn critical_paths_since(&self, since: SimTime) -> Vec<&CriticalPath> {
        self.store
            .since(since)
            .filter(|t| !t.dropped)
            .map(|t| &t.cp)
            .collect()
    }

    /// Stored traces finished at or after `since` — a borrowed view, so
    /// per-window consumers (the Extractor) iterate the store in place
    /// instead of cloning every trace.
    pub fn traces_since(&self, since: SimTime) -> impl Iterator<Item = &StoredTrace> {
        self.store.since(since)
    }

    /// End-to-end latencies (us) per request type since `since`.
    pub fn latencies_since(&self, since: SimTime, rt: RequestTypeId) -> Vec<f64> {
        self.store
            .since_of_type(since, rt)
            .filter(|t| !t.dropped)
            .map(|t| t.latency.as_micros() as f64)
            .collect()
    }

    /// Aligned per-instance/per-CP latency pairs since `since` (Alg. 2's
    /// `(Ti, TCP)`).
    pub fn instance_latency_pairs(&self, since: SimTime, instance: InstanceId) -> Vec<(f64, f64)> {
        self.store.instance_latency_pairs(since, instance)
    }

    /// Evicts traces finished before `before` to bound memory.
    pub fn evict_before(&mut self, before: SimTime) {
        self.store.evict_before(before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::{
        spec::{AppSpec, ClusterSpec},
        SimDuration, Simulation,
    };

    fn run(seed: u64) -> Vec<CompletedRequest> {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), seed).build();
        sim.run_for(SimDuration::from_secs(1));
        sim.drain_completed()
    }

    #[test]
    fn ingest_and_query_cps() {
        let rs = run(1);
        let n = rs.len();
        let mut c = TracingCoordinator::new(10_000);
        c.ingest(rs);
        assert_eq!(c.store().len(), n);
        let cps = c.critical_paths_since(SimTime::ZERO);
        assert_eq!(cps.len(), n);
        // Every CP starts at the frontend.
        assert!(cps.iter().all(|cp| cp.entries[0].service.raw() == 0));
        assert_eq!(c.latencies_since(SimTime::ZERO, RequestTypeId(0)).len(), n);
        assert!(!c.dependency_graph().services().is_empty());
    }

    #[test]
    fn sampling_reduces_ingestion_deterministically() {
        let rs = run(2);
        let n = rs.len();
        let mut a = TracingCoordinator::new(10_000);
        a.set_sampling(0.5);
        a.ingest(rs.clone());
        let mut b = TracingCoordinator::new(10_000);
        b.set_sampling(0.5);
        b.ingest(rs);
        assert_eq!(a.store().len(), b.store().len());
        assert!(a.store().len() < n);
        assert!(a.store().len() > n / 5);
        assert_eq!(a.skipped() + a.store().total_ingested(), n as u64);
    }

    #[test]
    fn sharded_ingest_matches_sequential_at_any_shard_count() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 11).build();
        sim.run_for(SimDuration::from_secs(3));
        let rs = sim.drain_completed();
        assert!(rs.len() >= 64, "need enough traces to cross MIN_PARALLEL");

        let fingerprint = |c: &TracingCoordinator| {
            let traces: Vec<String> = c.store().all().map(|t| format!("{t:?}")).collect();
            (
                traces,
                c.skipped(),
                c.store().total_ingested(),
                format!("{:?}", c.dependency_graph()),
            )
        };

        for sampling in [1.0, 0.5] {
            let mut seq = TracingCoordinator::new(10_000);
            seq.set_sampling(sampling);
            seq.ingest(rs.clone());
            for shards in [1, 2, 3, 4] {
                let mut par = TracingCoordinator::new(10_000);
                par.set_sampling(sampling);
                par.ingest_sharded(rs.clone(), &firm_par::ShardPool::new(shards));
                assert_eq!(
                    fingerprint(&seq),
                    fingerprint(&par),
                    "shards={shards} sampling={sampling}"
                );
            }
        }
    }

    #[test]
    fn windowed_queries_filter_by_time() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 3).build();
        let mut c = TracingCoordinator::new(100_000);
        sim.run_for(SimDuration::from_secs(1));
        c.ingest(sim.drain_completed());
        let early = c.traces_since(SimTime::ZERO).count();
        sim.run_for(SimDuration::from_secs(1));
        c.ingest(sim.drain_completed());
        let recent = c.traces_since(SimTime::from_secs(1)).count();
        let all = c.traces_since(SimTime::ZERO).count();
        assert!(recent < all);
        assert!(early > 0);
        c.evict_before(SimTime::from_secs(1));
        assert_eq!(c.traces_since(SimTime::ZERO).count(), recent);
    }
}
