//! Critical-path extraction — Algorithm 1 of the paper.
//!
//! The critical path (CP) of a request is the path of maximal duration
//! through its execution history graph (Definition 2.3). Algorithm 1
//! walks the graph top-down: at each span it descends into the
//! *last-returned child* (`lrc`), then additionally into every child that
//! *happens-before* the `lrc` (a sequential chain leading up to it).
//! Parallel children that overlap the `lrc` are dominated by it and are
//! excluded; background children never return and are excluded by
//! construction (§3.2).

use firm_sim::{InstanceId, ServiceId, SimDuration, SimTime, SpanId};

use crate::graph::ExecutionHistoryGraph;

/// One span on a critical path.
#[derive(Debug, Clone, Copy)]
pub struct PathEntry {
    /// Index into the graph's span vector.
    pub span_idx: usize,
    /// The span.
    pub span_id: SpanId,
    /// Its service.
    pub service: ServiceId,
    /// Its instance.
    pub instance: InstanceId,
    /// Span start time.
    pub start: SimTime,
    /// Full span duration (arrival → response).
    pub duration: SimDuration,
    /// Exclusive time: span duration minus the time spent waiting for
    /// its CP children (the per-service "individual latency" of Table 1).
    pub exclusive: SimDuration,
}

/// A critical path through one execution history graph.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Entries ordered by span start time (the root is first).
    pub entries: Vec<PathEntry>,
    /// End-to-end duration of the root span.
    pub total: SimDuration,
}

impl CriticalPath {
    /// The ordered service signature of the path; CPs with equal
    /// signatures take the same route (used to group CPs, e.g. Fig. 3's
    /// min/max-latency CP comparison).
    pub fn signature(&self) -> Vec<ServiceId> {
        self.entries.iter().map(|e| e.service).collect()
    }

    /// True if `service` lies on this path.
    pub fn contains_service(&self, service: ServiceId) -> bool {
        self.entries.iter().any(|e| e.service == service)
    }

    /// True if `instance` lies on this path.
    pub fn contains_instance(&self, instance: InstanceId) -> bool {
        self.entries.iter().any(|e| e.instance == instance)
    }

    /// Sum of exclusive times; ≤ `total` (the gap is network transfer
    /// time, which belongs to no span).
    pub fn exclusive_sum(&self) -> SimDuration {
        let mut t = SimDuration::ZERO;
        for e in &self.entries {
            t += e.exclusive;
        }
        t
    }
}

/// Extracts the critical path of the "Service Response" (Definition 2.3
/// without a target microservice) from an execution history graph.
///
/// Algorithm 1 runs iteratively on two reused scratch buffers (the
/// visit worklist and the per-span synchronous-call view); entries are
/// sorted by `(start, span_id)` at the end, so visit order never shows
/// in the result. Child spans resolve through the node's own child
/// list instead of a whole-graph scan.
pub fn critical_path(graph: &ExecutionHistoryGraph) -> CriticalPath {
    let mut on_path = Vec::new();
    let mut stack: Vec<usize> = vec![graph.root];
    let mut sync_calls: Vec<(usize, SimTime, SimTime)> = Vec::new();

    while let Some(node) = stack.pop() {
        let span = &graph.spans[graph.nodes[node].span_idx];

        // Synchronous, completed calls only: background calls never
        // return and cannot carry the response.
        sync_calls.clear();
        sync_calls.extend(
            span.calls
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.returned.map(|r| (i, c.sent, r))),
        );

        // The last-returned child dominates the tail of this span; the
        // CP children are the lrc plus every child that happens-before
        // it. Exclusive time is the span minus its waits on CP children.
        let lrc = sync_calls
            .iter()
            .max_by_key(|(_, _, returned)| *returned)
            .copied();
        let mut waited = SimDuration::ZERO;
        if let Some((lrc_idx, lrc_sent, _)) = lrc {
            for &(i, sent, returned) in &sync_calls {
                if i == lrc_idx || returned <= lrc_sent {
                    waited += returned - sent;
                    let child_span_id = span.calls[i].child_span;
                    if let Some(&child_node) = graph.nodes[node]
                        .children
                        .iter()
                        .find(|&&c| graph.spans[graph.nodes[c].span_idx].span_id == child_span_id)
                    {
                        stack.push(child_node);
                    }
                }
            }
        }
        let duration = span.duration();
        let exclusive = duration.saturating_sub(waited);

        on_path.push(PathEntry {
            span_idx: graph.nodes[node].span_idx,
            span_id: span.span_id,
            service: span.service,
            instance: span.instance,
            start: span.start,
            duration,
            exclusive,
        });
    }

    on_path.sort_by_key(|e: &PathEntry| (e.start, e.span_id));
    CriticalPath {
        entries: on_path,
        total: graph.root_span().duration(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::{CallRecord, RequestTypeId, SpanRecord, TraceId};

    /// Builds a span with call records; times in microseconds.
    fn span(
        id: u64,
        parent: Option<u64>,
        service: u16,
        start: u64,
        end: u64,
        calls: Vec<(u64, u16, u64, Option<u64>, bool)>,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(1),
            span_id: SpanId(id),
            parent: parent.map(SpanId),
            service: ServiceId(service),
            instance: InstanceId(service as u32),
            request_type: RequestTypeId(0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(end),
            work_start: SimTime::from_micros(start),
            background: false,
            dropped: false,
            calls: calls
                .into_iter()
                .map(|(child, target, sent, ret, background)| CallRecord {
                    child_span: SpanId(child),
                    target: ServiceId(target),
                    sent: SimTime::from_micros(sent),
                    returned: ret.map(SimTime::from_micros),
                    background,
                })
                .collect(),
        }
    }

    fn graph(spans: Vec<SpanRecord>) -> ExecutionHistoryGraph {
        ExecutionHistoryGraph::from_spans(spans).expect("valid graph")
    }

    #[test]
    fn leaf_only_root() {
        let g = graph(vec![span(1, None, 0, 0, 100, vec![])]);
        let cp = critical_path(&g);
        assert_eq!(cp.entries.len(), 1);
        assert_eq!(cp.total.as_micros(), 100);
        assert_eq!(cp.exclusive_sum().as_micros(), 100);
    }

    #[test]
    fn parallel_children_pick_last_returned() {
        // Root 0..1000 calls A (10..400) and B (10..900): B returns last,
        // overlaps A, so the CP is root → B.
        let g = graph(vec![
            span(
                1,
                None,
                0,
                0,
                1000,
                vec![(2, 1, 10, Some(400), false), (3, 2, 10, Some(900), false)],
            ),
            span(2, Some(1), 1, 20, 390, vec![]),
            span(3, Some(1), 2, 20, 880, vec![]),
        ]);
        let cp = critical_path(&g);
        let services: Vec<u16> = cp.signature().iter().map(|s| s.raw()).collect();
        assert_eq!(services, vec![0, 2]);
        // Root exclusive: 1000 − (900 − 10) = 110.
        assert_eq!(cp.entries[0].exclusive.as_micros(), 110);
    }

    #[test]
    fn sequential_chain_fully_included() {
        // Root calls A (10..200) then B (250..700): A happens-before B,
        // both on the CP.
        let g = graph(vec![
            span(
                1,
                None,
                0,
                0,
                800,
                vec![(2, 1, 10, Some(200), false), (3, 2, 250, Some(700), false)],
            ),
            span(2, Some(1), 1, 20, 190, vec![]),
            span(3, Some(1), 2, 260, 690, vec![]),
        ]);
        let cp = critical_path(&g);
        let services: Vec<u16> = cp.signature().iter().map(|s| s.raw()).collect();
        assert_eq!(services, vec![0, 1, 2]);
        // Root exclusive: 800 − (200−10) − (700−250) = 160.
        assert_eq!(cp.entries[0].exclusive.as_micros(), 160);
    }

    #[test]
    fn three_way_sequential_chain() {
        // a → b → c all sequential: all included through the
        // happens-before recursion against the lrc.
        let g = graph(vec![
            span(
                1,
                None,
                0,
                0,
                1000,
                vec![
                    (2, 1, 10, Some(200), false),
                    (3, 2, 210, Some(500), false),
                    (4, 3, 510, Some(950), false),
                ],
            ),
            span(2, Some(1), 1, 15, 195, vec![]),
            span(3, Some(1), 2, 215, 495, vec![]),
            span(4, Some(1), 3, 515, 945, vec![]),
        ]);
        let cp = critical_path(&g);
        assert_eq!(cp.entries.len(), 4);
    }

    #[test]
    fn background_children_excluded() {
        let g = graph(vec![
            span(
                1,
                None,
                0,
                0,
                500,
                vec![(2, 1, 10, Some(450), false), (3, 2, 10, None, true)],
            ),
            span(2, Some(1), 1, 20, 440, vec![]),
            {
                let mut s = span(3, Some(1), 2, 20, 2_000, vec![]);
                s.background = true;
                s
            },
        ]);
        let cp = critical_path(&g);
        let services: Vec<u16> = cp.signature().iter().map(|s| s.raw()).collect();
        assert_eq!(services, vec![0, 1]);
    }

    #[test]
    fn nested_paths_recurse() {
        // Root → A → B; A's child B dominates A's time.
        let g = graph(vec![
            span(1, None, 0, 0, 1000, vec![(2, 1, 10, Some(950), false)]),
            span(2, Some(1), 1, 20, 940, vec![(3, 2, 40, Some(900), false)]),
            span(3, Some(2), 2, 50, 890, vec![]),
        ]);
        let cp = critical_path(&g);
        assert_eq!(cp.entries.len(), 3);
        assert_eq!(cp.total.as_micros(), 1000);
        // Entries ordered by start time.
        let starts: Vec<u64> = cp.entries.iter().map(|e| e.start.as_micros()).collect();
        assert_eq!(starts, vec![0, 20, 50]);
    }

    #[test]
    fn parallel_branch_outside_lrc_chain_excluded() {
        // A (10..600) overlaps B (550..900, lrc): A is parallel to B and
        // returns after B was sent? No: A returns at 600 > B sent at 550,
        // so A is NOT happens-before B and is excluded.
        let g = graph(vec![
            span(
                1,
                None,
                0,
                0,
                1000,
                vec![(2, 1, 10, Some(600), false), (3, 2, 550, Some(900), false)],
            ),
            span(2, Some(1), 1, 20, 590, vec![]),
            span(3, Some(1), 2, 560, 890, vec![]),
        ]);
        let cp = critical_path(&g);
        let services: Vec<u16> = cp.signature().iter().map(|s| s.raw()).collect();
        assert_eq!(services, vec![0, 2]);
    }

    #[test]
    fn cp_on_simulated_traces_is_sane() {
        use firm_sim::{
            spec::{AppSpec, ClusterSpec},
            SimDuration, Simulation,
        };
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 11).build();
        sim.run_for(SimDuration::from_secs(1));
        for req in sim.drain_completed() {
            let g = ExecutionHistoryGraph::build(req).expect("graph builds");
            let cp = critical_path(&g);
            assert!(!cp.entries.is_empty());
            assert_eq!(cp.entries[0].span_id, g.root_span().span_id);
            assert!(cp.exclusive_sum() <= cp.total);
            // No background spans on a CP.
            for e in &cp.entries {
                assert!(!g.spans[e.span_idx].background);
            }
        }
    }
}
