//! The RL-based Resource Estimator (§3.4, Table 3, Fig. 7/8).
//!
//! For each culprit instance the estimator builds the Table 3 state,
//! queries a DDPG agent for an action in `[-1, 1]⁵`, and maps it to
//! absolute resource limits `RLT` within per-resource bounds. The paper's
//! Fig. 8 dimensions are preserved: the actor sees the 8 state inputs
//! `(SV, WC, RC, RU[5])`; the critic additionally sees the current
//! normalized limits and usage — 18 state dims ⊕ 5 action dims = 23
//! critic inputs.
//!
//! The estimator supports the paper's three agent regimes (§4.3): a
//! shared *one-for-all* agent, per-service *one-for-each* agents, and
//! transfer-learning agents initialized from the shared one.

use std::collections::BTreeMap;

use firm_ml::ddpg::{DdpgAgent, DdpgConfig, Transition};
use firm_sim::telemetry_probe::InstanceSnapshot;
use firm_sim::{ResourceKind, ServiceId, RESOURCE_KINDS};

/// Full state dimension: `(SV, WC, RC)` ⊕ `RU[5]` ⊕ `norm-RLT[5]` ⊕
/// `norm-usage[5]`.
pub const STATE_DIM: usize = 18;
/// Actor-visible prefix: `(SV, WC, RC, RU[5])` — Fig. 8's 8 inputs.
pub const ACTOR_STATE_DIM: usize = 8;
/// Action dimension: one limit per controlled resource type.
pub const ACTION_DIM: usize = 5;

/// Builds Table 3 state vectors from telemetry snapshots.
#[derive(Debug, Clone, Default)]
pub struct StateBuilder;

impl StateBuilder {
    /// Builds the full 18-dimensional state for one instance.
    ///
    /// * `sv` — SLO violation ratio (1 = healthy, <1 = violating).
    /// * `wc` — workload-change ratio (current / previous arrival rate).
    /// * `request_mix` — request-type composition of the window.
    pub fn build(
        &self,
        snapshot: &InstanceSnapshot,
        sv: f64,
        wc: f64,
        request_mix: &[f64],
    ) -> Vec<f64> {
        let mut s = Vec::with_capacity(STATE_DIM);
        s.push(sv.clamp(0.0, 2.0));
        s.push(wc.clamp(0.0, 3.0));
        s.push(Self::encode_mix(request_mix));
        for kind in RESOURCE_KINDS {
            s.push(snapshot.utilization.get(kind).clamp(0.0, 1.0));
        }
        // Critic-only context: limits and usage normalized by a fixed
        // reference scale (node capacities are near-constant).
        for kind in RESOURCE_KINDS {
            let cap = Self::reference_capacity(kind);
            s.push((snapshot.rlt.get(kind) / cap).clamp(0.0, 1.0));
        }
        for kind in RESOURCE_KINDS {
            let cap = Self::reference_capacity(kind);
            s.push((snapshot.usage.get(kind) / cap).clamp(0.0, 1.0));
        }
        debug_assert_eq!(s.len(), STATE_DIM);
        s
    }

    /// Scalar encoding of the request composition (`RC` of Table 3; the
    /// paper uses `numpy.ravel_multi_index` — any stable injective-ish
    /// encoding works). Mix fractions are folded into `[0, 1]`.
    pub fn encode_mix(mix: &[f64]) -> f64 {
        if mix.is_empty() {
            return 0.0;
        }
        let mut code = 0.0;
        let mut weight = 0.5;
        for m in mix {
            code += m.clamp(0.0, 1.0) * weight;
            weight *= 0.5;
        }
        code
    }

    /// Fixed normalization scale per resource (a mid-size x86 node).
    fn reference_capacity(kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => 48.0,
            ResourceKind::MemBw => 25_600.0,
            ResourceKind::Llc => 35.0,
            ResourceKind::IoBw => 2_000.0,
            ResourceKind::NetBw => 1_250.0,
        }
    }
}

/// Per-resource action bounds `[R̂_lower, R̂_upper]` (§3.4: limits have
/// predefined upper and lower bounds; CPU cannot be 0).
#[derive(Debug, Clone)]
pub struct ActionMapper {
    /// `(lower, upper)` per resource, in native units.
    pub bounds: [(f64, f64); 5],
}

impl Default for ActionMapper {
    fn default() -> Self {
        ActionMapper {
            bounds: [
                (0.5, 8.0),        // CPU cores.
                (256.0, 12_800.0), // Memory bandwidth MB/s.
                (1.0, 20.0),       // LLC MB.
                (50.0, 1_000.0),   // Disk MB/s.
                (50.0, 800.0),     // Network MB/s.
            ],
        }
    }
}

impl ActionMapper {
    /// Maps an agent action in `[-1, 1]⁵` to absolute limits `RLT`.
    pub fn to_limits(&self, action: &[f64]) -> [f64; 5] {
        let mut out = [0.0; 5];
        for (i, a) in action.iter().take(5).enumerate() {
            let (lo, hi) = self.bounds[i];
            out[i] = lo + (a.clamp(-1.0, 1.0) + 1.0) / 2.0 * (hi - lo);
        }
        out
    }

    /// Inverse map: limits to the action that would produce them
    /// (clamped); useful for warm-starting and tests.
    pub fn to_action(&self, limits: &[f64; 5]) -> [f64; 5] {
        let mut out = [0.0; 5];
        for i in 0..5 {
            let (lo, hi) = self.bounds[i];
            let frac = ((limits[i] - lo) / (hi - lo)).clamp(0.0, 1.0);
            out[i] = frac * 2.0 - 1.0;
        }
        out
    }
}

/// Reward function of §3.4:
/// `r = α·SV·|R| + (1−α)·Σᵢ RUᵢ/RLTᵢ`, where the second term is the
/// per-resource utilization sum (our `RU` is already `usage/RLT`).
pub fn reward(sv: f64, utilizations: &[f64; 5], alpha: f64) -> f64 {
    let util_sum: f64 = utilizations.iter().map(|u| u.clamp(0.0, 1.0)).sum();
    alpha * sv.clamp(0.0, 2.0) * 5.0 + (1.0 - alpha) * util_sum
}

/// SLO-penalized reward variant: the violation term is centred on
/// `SV = 1` (exact SLO compliance), so deep violations (`SV < 1`)
/// yield genuinely negative rewards instead of merely small positive
/// ones. Opt-in via [`crate::manager::FirmConfig::slo_penalty`] —
/// the legacy [`reward`] is structurally non-negative (`SV` and the
/// utilizations are clamped to non-negative ranges), which starves
/// severity-prioritized replay of any signal.
pub fn reward_penalized(sv: f64, utilizations: &[f64; 5], alpha: f64) -> f64 {
    let util_sum: f64 = utilizations.iter().map(|u| u.clamp(0.0, 1.0)).sum();
    alpha * (sv.clamp(0.0, 2.0) - 1.0) * 5.0 + (1.0 - alpha) * util_sum
}

/// Which agent serves a given service (§4.3's three regimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentRegime {
    /// One shared agent for all microservices (*one-for-all*).
    Shared,
    /// A dedicated agent per microservice (*one-for-each*).
    PerService,
    /// Per-service agents initialized from a trained shared agent.
    Transfer,
}

/// The resource estimator: agent pool + state/action plumbing.
#[derive(Debug)]
pub struct ResourceEstimator {
    regime: AgentRegime,
    shared: DdpgAgent,
    per_service: BTreeMap<u16, DdpgAgent>,
    seed: u64,
    /// Action-to-limit mapping.
    pub mapper: ActionMapper,
    /// Reward trade-off α (the paper leaves it unspecified; 0.5 balances
    /// SLO compliance and utilization).
    pub alpha: f64,
}

impl ResourceEstimator {
    /// Creates an estimator in the given regime.
    pub fn new(regime: AgentRegime, seed: u64) -> Self {
        let config = DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM);
        ResourceEstimator {
            regime,
            shared: DdpgAgent::new(config, seed),
            per_service: BTreeMap::new(),
            seed,
            mapper: ActionMapper::default(),
            alpha: 0.5,
        }
    }

    /// The regime in use.
    pub fn regime(&self) -> AgentRegime {
        self.regime
    }

    /// The shared agent (read access, e.g. for checkpoints).
    pub fn shared_agent(&self) -> &DdpgAgent {
        &self.shared
    }

    /// Imports weights into the shared agent (e.g. a trained checkpoint).
    pub fn import_shared(&mut self, actor: &[f64], critic: &[f64]) {
        self.shared.import_weights(actor, critic);
    }

    /// The agent responsible for `service`, creating it on first use in
    /// per-service regimes.
    pub fn agent_mut(&mut self, service: ServiceId) -> &mut DdpgAgent {
        match self.regime {
            AgentRegime::Shared => &mut self.shared,
            AgentRegime::PerService | AgentRegime::Transfer => {
                if !self.per_service.contains_key(&service.raw()) {
                    let config = DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM);
                    let mut agent =
                        DdpgAgent::new(config, self.seed ^ (service.raw() as u64) << 17);
                    if self.regime == AgentRegime::Transfer {
                        agent.clone_weights_from(&self.shared);
                    }
                    self.per_service.insert(service.raw(), agent);
                }
                self.per_service
                    .get_mut(&service.raw())
                    .expect("inserted above")
            }
        }
    }

    /// Deterministic action for a state.
    pub fn act(&mut self, service: ServiceId, state: &[f64]) -> Vec<f64> {
        self.agent_mut(service).act(state)
    }

    /// Exploratory action for a state (training).
    pub fn act_explore(&mut self, service: ServiceId, state: &[f64]) -> Vec<f64> {
        self.agent_mut(service).act_explore(state)
    }

    /// Records a transition and performs one training step on the
    /// responsible agent.
    pub fn learn(&mut self, service: ServiceId, transition: Transition) {
        let agent = self.agent_mut(service);
        agent.observe(transition);
        agent.train_step();
    }

    /// Records a transition on the responsible agent's replay buffer
    /// *without* training — the ingest half of an external experience
    /// feed (a fleet trainer pools transitions from many simulations,
    /// then trains in bulk with [`ResourceEstimator::train_shared`]).
    pub fn observe(&mut self, service: ServiceId, transition: Transition) {
        self.agent_mut(service).observe(transition);
    }

    /// Like [`ResourceEstimator::observe`], but with an explicit replay
    /// priority: the responsible agent's minibatch sampling becomes
    /// priority-proportional (prioritized experience replay). Feeding
    /// any priority at all switches that agent's buffer to weighted
    /// draws; estimators fed only through [`ResourceEstimator::observe`]
    /// keep the original uniform scheme bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `priority` is not finite and positive.
    pub fn observe_with_priority(
        &mut self,
        service: ServiceId,
        transition: Transition,
        priority: f64,
    ) {
        self.agent_mut(service)
            .observe_with_priority(transition, priority);
    }

    /// Runs up to `steps` minibatch updates on the shared agent and
    /// returns how many actually trained (the agent skips steps until
    /// its replay buffer warms up).
    pub fn train_shared(&mut self, steps: usize) -> usize {
        (0..steps)
            .filter(|_| self.shared.train_step().is_some())
            .count()
    }

    /// Resets exploration noise on all agents (episode boundary).
    pub fn episode_reset(&mut self) {
        self.shared.episode_reset();
        for agent in self.per_service.values_mut() {
            agent.episode_reset();
        }
    }

    /// Total training steps across all agents.
    pub fn train_steps(&self) -> u64 {
        self.shared.train_steps()
            + self
                .per_service
                .values()
                .map(|a| a.train_steps())
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::{AppSpec, ClusterSpec};
    use firm_sim::{SimDuration, Simulation};

    fn snapshot() -> InstanceSnapshot {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 41).build();
        sim.run_for(SimDuration::from_secs(1));
        sim.drain_telemetry().instances.remove(0)
    }

    #[test]
    fn state_has_paper_dimensions() {
        let snap = snapshot();
        let s = StateBuilder.build(&snap, 0.8, 1.2, &[1.0]);
        assert_eq!(s.len(), STATE_DIM);
        assert_eq!(&s[0..2], &[0.8, 1.2]);
        assert!(s.iter().all(|v| v.is_finite()));
        // All normalized components are in range.
        assert!(s[3..].iter().all(|v| (0.0..=1.0).contains(v)));
        // Critic input = 18 + 5 = 23, matching Fig. 8.
        assert_eq!(STATE_DIM + ACTION_DIM, 23);
        assert_eq!(ACTOR_STATE_DIM, 8);
    }

    #[test]
    fn mix_encoding_is_stable_and_bounded() {
        assert_eq!(StateBuilder::encode_mix(&[]), 0.0);
        let a = StateBuilder::encode_mix(&[1.0, 0.0]);
        let b = StateBuilder::encode_mix(&[0.0, 1.0]);
        assert_ne!(a, b);
        for mix in [&[0.3, 0.3, 0.4][..], &[1.0][..], &[0.5; 8][..]] {
            let c = StateBuilder::encode_mix(mix);
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn action_mapping_roundtrips() {
        let m = ActionMapper::default();
        let limits = m.to_limits(&[-1.0, 0.0, 1.0, 0.5, -0.5]);
        assert_eq!(limits[0], 0.5); // CPU lower bound.
        assert_eq!(limits[2], 20.0); // LLC upper bound.
        assert!((limits[1] - (256.0 + 12_544.0 / 2.0)).abs() < 1e-9);
        let back = m.to_action(&limits);
        for (a, b) in back.iter().zip(&[-1.0, 0.0, 1.0, 0.5, -0.5]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn reward_balances_slo_and_utilization() {
        // Healthy and fully utilized: maximal reward.
        let healthy = reward(1.0, &[1.0; 5], 0.5);
        assert!((healthy - 5.0).abs() < 1e-12);
        // Violating and idle: low reward.
        let bad = reward(0.2, &[0.05; 5], 0.5);
        assert!(bad < 1.0);
        // SLO weight dominates as alpha → 1.
        let slo_only = reward(0.2, &[1.0; 5], 1.0);
        assert!((slo_only - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regimes_route_to_distinct_agents() {
        let snap = snapshot();
        let state = StateBuilder.build(&snap, 1.0, 1.0, &[1.0]);

        let mut shared = ResourceEstimator::new(AgentRegime::Shared, 1);
        let a1 = shared.act(ServiceId(1), &state);
        let a2 = shared.act(ServiceId(2), &state);
        assert_eq!(a1, a2, "shared agent gives one policy");

        let mut per = ResourceEstimator::new(AgentRegime::PerService, 1);
        let b1 = per.act(ServiceId(1), &state);
        let b2 = per.act(ServiceId(2), &state);
        assert_ne!(b1, b2, "per-service agents are independent");

        let mut xfer = ResourceEstimator::new(AgentRegime::Transfer, 1);
        let c1 = xfer.act(ServiceId(1), &state);
        let c2 = xfer.act(ServiceId(2), &state);
        let c0 = xfer.shared_agent().act(&state);
        assert_eq!(c1, c0, "transferred agent starts from the shared policy");
        assert_eq!(c1, c2);
    }

    #[test]
    fn learn_accumulates_training_steps() {
        let mut est = ResourceEstimator::new(AgentRegime::Shared, 2);
        let state = vec![0.5; STATE_DIM];
        for _ in 0..70 {
            est.learn(
                ServiceId(0),
                Transition {
                    state: state.clone(),
                    action: vec![0.0; ACTION_DIM],
                    reward: 1.0,
                    next_state: state.clone(),
                    done: false,
                },
            );
        }
        assert!(est.train_steps() > 0);
    }
}
