//! Baseline resource managers (§4.1): the Kubernetes horizontal-pod
//! autoscaler and an AIMD limit controller.
//!
//! Both are rule-based, like the systems the paper compares against:
//!
//! * **K8s HPA** scales replica counts from *average CPU utilization
//!   only* — which is exactly why it is blind to the Fig. 1 memory-
//!   bandwidth contention (CPU utilization never moves).
//! * **AIMD** (per [34, 93]) additively increases a container's CPU
//!   limit while its SLO is violated and multiplicatively decreases it
//!   when the container is underutilized.

use firm_sim::{Command, CompletedRequest, ResourceKind, ServiceId, SimTime, Simulation};
use firm_trace::TracingCoordinator;

use crate::slo::SloMonitor;

/// Kubernetes horizontal-pod-autoscaler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct K8sConfig {
    /// Target average CPU utilization (k8s default 0.8 of requests).
    pub target_utilization: f64,
    /// Upscale tolerance band around the target (k8s default 0.1).
    pub tolerance: f64,
    /// Maximum replicas per service.
    pub max_replicas: u32,
    /// Consecutive low-utilization ticks required before scale-in
    /// (stabilization window).
    pub downscale_stabilization_ticks: u32,
}

impl Default for K8sConfig {
    fn default() -> Self {
        K8sConfig {
            target_utilization: 0.8,
            tolerance: 0.1,
            max_replicas: 8,
            downscale_stabilization_ticks: 6,
        }
    }
}

/// The Kubernetes autoscaling baseline.
#[derive(Debug)]
pub struct K8sHpaController {
    config: K8sConfig,
    low_ticks: Vec<u32>,
    /// Scale operations issued.
    pub scale_ops: u64,
}

impl K8sHpaController {
    /// Creates the controller for an application with `services`
    /// services.
    pub fn new(config: K8sConfig, services: usize) -> Self {
        K8sHpaController {
            config,
            low_ticks: vec![0; services],
            scale_ops: 0,
        }
    }

    /// One reconciliation pass: inspect average CPU utilization per
    /// service and scale out/in.
    pub fn tick(
        &mut self,
        sim: &mut Simulation,
        telemetry: &firm_sim::telemetry_probe::TelemetryWindow,
    ) {
        let n_services = sim.app().services.len();
        let mut util_sum = vec![0.0; n_services];
        let mut util_n = vec![0u32; n_services];
        for inst in &telemetry.instances {
            if inst.state == firm_sim::instance::InstanceState::Running {
                util_sum[inst.service.index()] += inst.utilization.get(ResourceKind::Cpu);
                util_n[inst.service.index()] += 1;
            }
        }
        for s in 0..n_services {
            if util_n[s] == 0 {
                continue;
            }
            let service = ServiceId(s as u16);
            let avg = util_sum[s] / util_n[s] as f64;
            let replicas = sim.replicas(service).len() as u32;
            let target = self.config.target_utilization;

            if avg > target * (1.0 + self.config.tolerance) && replicas < self.config.max_replicas {
                // desired = ceil(current × avg/target), one step per tick.
                sim.apply(Command::ScaleOut {
                    service,
                    warm: true,
                });
                self.scale_ops += 1;
                self.low_ticks[s] = 0;
            } else if avg < target * 0.5 && replicas > 1 {
                self.low_ticks[s] += 1;
                if self.low_ticks[s] >= self.config.downscale_stabilization_ticks {
                    sim.apply(Command::ScaleIn { service });
                    self.scale_ops += 1;
                    self.low_ticks[s] = 0;
                }
            } else {
                self.low_ticks[s] = 0;
            }
        }
    }
}

/// AIMD configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdConfig {
    /// Additive CPU increase per violating tick (cores).
    pub additive_step: f64,
    /// Multiplicative decrease factor when underutilized.
    pub beta: f64,
    /// Utilization below which the limit decays.
    pub low_utilization: f64,
    /// CPU limit bounds (cores).
    pub cpu_bounds: (f64, f64),
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            additive_step: 1.0,
            beta: 0.9,
            low_utilization: 0.4,
            cpu_bounds: (0.5, 16.0),
        }
    }
}

/// The AIMD baseline: per-container CPU-limit control. Owns its own
/// tracing view: feed each window's completed traces in with
/// [`AimdController::ingest`], then [`AimdController::tick`].
#[derive(Debug)]
pub struct AimdController {
    config: AimdConfig,
    monitor: SloMonitor,
    coordinator: TracingCoordinator,
    /// Limit updates issued.
    pub limit_ops: u64,
}

impl AimdController {
    /// Creates the controller.
    pub fn new(config: AimdConfig) -> Self {
        AimdController {
            config,
            monitor: SloMonitor::default(),
            coordinator: TracingCoordinator::new(100_000),
            limit_ops: 0,
        }
    }

    /// Feeds one window's completed traces into the controller's
    /// tracing view (call before [`AimdController::tick`]).
    pub fn ingest(&mut self, completed: Vec<CompletedRequest>) {
        self.coordinator.ingest(completed);
    }

    /// One control pass: additive increase on SLO violation (on every
    /// running container of a violating request path), multiplicative
    /// decrease on low utilization. Evicts traces older than
    /// `window_start` afterwards.
    pub fn tick(
        &mut self,
        sim: &mut Simulation,
        telemetry: &firm_sim::telemetry_probe::TelemetryWindow,
        window_start: SimTime,
    ) {
        let assessment = self
            .monitor
            .assess(sim.app(), &self.coordinator, window_start);
        let violating = assessment.any_violation();

        for inst in &telemetry.instances {
            if inst.state != firm_sim::instance::InstanceState::Running {
                continue;
            }
            let current = sim.instance(inst.instance).cpu_limit();
            let util = inst.utilization.get(ResourceKind::Cpu);
            let (lo, hi) = self.config.cpu_bounds;

            let new_limit = if violating {
                // Additive increase under pressure.
                (current + self.config.additive_step).min(hi)
            } else if util < self.config.low_utilization {
                // Multiplicative decrease when idle.
                (current * self.config.beta).max(lo)
            } else {
                current
            };
            if (new_limit - current).abs() > 1e-9 {
                sim.apply(Command::SetPartition {
                    instance: inst.instance,
                    kind: ResourceKind::Cpu,
                    amount: new_limit,
                });
                self.limit_ops += 1;
            }
        }
        // The assessment window never looks back past its start; keep
        // the trace store bounded.
        self.coordinator.evict_before(window_start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::{AppSpec, ClusterSpec};
    use firm_sim::{AnomalyKind, AnomalySpec, NodeId, PoissonArrivals, SimDuration};

    fn sim(seed: u64, rate: f64) -> Simulation {
        Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), seed)
            .arrivals(Box::new(PoissonArrivals::new(rate)))
            .build()
    }

    #[test]
    fn hpa_scales_out_under_cpu_pressure() {
        // A CPU-bound single service squeezed to a tiny quota: its
        // utilization saturates and the HPA must add replicas.
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::single_service_demo(), 71)
                .arrivals(Box::new(PoissonArrivals::new(400.0)))
                .build();
        sim.apply(Command::SetPartition {
            instance: firm_sim::InstanceId(0),
            kind: ResourceKind::Cpu,
            amount: 0.25,
        });
        let mut hpa = K8sHpaController::new(K8sConfig::default(), 1);
        let frontend = ServiceId(0);
        for _ in 0..10 {
            sim.run_for(SimDuration::from_secs(1));
            let t = sim.drain_telemetry();
            hpa.tick(&mut sim, &t);
        }
        assert!(
            sim.replicas(frontend).len() > 1,
            "replicas {}",
            sim.replicas(frontend).len()
        );
        assert!(hpa.scale_ops > 0);
    }

    #[test]
    fn hpa_blind_to_memory_contention() {
        // The Fig. 1 scenario: memory-bandwidth stress, CPU util flat.
        let mut sim = sim(72, 100.0);
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            0.95,
            SimDuration::from_secs(20),
        ));
        let mut hpa = K8sHpaController::new(K8sConfig::default(), 5);
        let before: usize = sim.app().services.len();
        for _ in 0..10 {
            sim.run_for(SimDuration::from_secs(1));
            let t = sim.drain_telemetry();
            hpa.tick(&mut sim, &t);
        }
        // No scale-out happened: the HPA never saw CPU pressure.
        let total_replicas: usize = (0..before)
            .map(|s| sim.replicas(ServiceId(s as u16)).len())
            .sum();
        assert_eq!(
            total_replicas, before,
            "HPA scaled out on a non-CPU anomaly"
        );
    }

    #[test]
    fn aimd_decays_idle_limits_and_reacts_to_violations() {
        let mut app = AppSpec::three_tier_demo();
        app.request_types[0].slo_latency_us = 5_000;
        let mut sim = Simulation::builder(ClusterSpec::small(2), app, 73)
            .arrivals(Box::new(PoissonArrivals::new(50.0)))
            .build();
        let mut aimd = AimdController::new(AimdConfig::default());

        // Idle-ish phase: limits decay multiplicatively.
        let initial = sim.total_requested_cpu();
        for _ in 0..8 {
            let start = sim.now();
            sim.run_for(SimDuration::from_secs(1));
            aimd.ingest(sim.drain_completed());
            let t = sim.drain_telemetry();
            aimd.tick(&mut sim, &t, start);
        }
        let decayed = sim.total_requested_cpu();
        assert!(decayed < initial, "no decay: {initial} → {decayed}");

        // Violation phase: limits rise additively.
        sim.inject(AnomalySpec::new(
            AnomalyKind::CpuStress,
            NodeId(0),
            1.0,
            SimDuration::from_secs(20),
        ));
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            1.0,
            SimDuration::from_secs(20),
        ));
        sim.inject(AnomalySpec::new(
            AnomalyKind::NetworkDelay,
            NodeId(0),
            0.2,
            SimDuration::from_secs(20),
        ));
        for _ in 0..6 {
            let start = sim.now();
            sim.run_for(SimDuration::from_secs(1));
            aimd.ingest(sim.drain_completed());
            let t = sim.drain_telemetry();
            aimd.tick(&mut sim, &t, start);
        }
        let raised = sim.total_requested_cpu();
        assert!(raised > decayed, "no increase: {decayed} → {raised}");
        assert!(aimd.limit_ops > 0);
    }
}
