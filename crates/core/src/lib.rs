//! FIRM: fine-grained, ML-driven resource management for SLO-oriented
//! microservices — the core framework of the reproduction.
//!
//! This crate wires the substrates together into the architecture of
//! Fig. 6 of the paper:
//!
//! 1. the **Tracing Coordinator** (`firm-trace`) collects spans and
//!    telemetry (`firm-telemetry`) — ①;
//! 2. the **Extractor** ([`extractor`]) detects SLO violations
//!    ([`slo`]), extracts critical paths (Algorithm 1, in `firm-trace`)
//!    and localizes critical instances with per-CP/per-instance
//!    variability features and an incremental SVM (Algorithm 2) — ② ③;
//! 3. the **RL-based Resource Estimator** ([`estimator`]) maps the
//!    Table 3 state of each culprit instance to fine-grained resource
//!    actions with a DDPG agent (§3.4) — ④;
//! 4. the **Deployment Module** ([`deployment`]) validates actions,
//!    replacing oversubscribing ones with scale-out, and actuates them
//!    with the Table 6 latencies — ⑤;
//! 5. the **Performance Anomaly Injector** ([`injector`]) creates
//!    resource contention with configurable type, intensity, timing and
//!    duration for online training (§3.6) — ⑥.
//!
//! [`manager::FirmManager`] runs the full loop; [`baselines`] provides
//! the Kubernetes-autoscaler and AIMD comparison points; [`controller`]
//! unifies them behind one [`controller::Controller`] trait and one
//! [`controller::run_episode`] driver; [`experiment`] and [`training`]
//! are the harnesses behind every figure and table of the evaluation.

pub mod baselines;
pub mod controller;
pub mod deployment;
pub mod estimator;
pub mod experiment;
pub mod extractor;
pub mod injector;
pub mod manager;
pub mod slo;
pub mod training;
pub mod wire;

pub use baselines::{AimdController, K8sHpaController};
pub use controller::{
    run_episode, ControlDecision, Controller, EpisodeResult, EpisodeSpec, MitigationTracker,
    PolicyCheckpoint, TickContext, TimelinePoint, Unmanaged,
};
pub use deployment::DeploymentModule;
pub use estimator::{ActionMapper, ResourceEstimator, StateBuilder};
pub use experiment::{run_scenario, ControllerKind, ScenarioConfig, ScenarioResult};
pub use extractor::{CriticalComponentExtractor, InstanceFeatures};
pub use injector::{AnomalyInjector, CampaignConfig};
pub use manager::{ExperienceLog, FirmConfig, FirmManager};
pub use slo::{SloAssessment, SloMonitor};
pub use training::{replay_experience, train_firm, EpisodeStats, TrainingConfig};
