//! SLO definitions and violation detection.
//!
//! FIRM's Extractor is triggered by end-to-end SLO violations (§3.2).
//! The monitor assesses each request type's tail latency over the last
//! control window against its SLO and produces the *SLO violation ratio*
//! `SV = SLO_latency / current_latency` used in the RL state (Table 3):
//! `SV ≥ 1` means the SLO holds, `SV < 1` quantifies how badly it is
//! violated. When no traces arrive, `SV = 1` (the paper's "no message ⇒
//! no violation" rule).

use firm_sim::spec::AppSpec;
use firm_sim::{RequestTypeId, SimTime};
use firm_trace::TracingCoordinator;

/// Assessment of one control window.
#[derive(Debug, Clone)]
pub struct SloAssessment {
    /// Worst (smallest) SLO violation ratio across request types.
    pub sv: f64,
    /// Per-request-type `(p99 latency us, SLO us, sv)`.
    pub per_type: Vec<(RequestTypeId, f64, u64, f64)>,
    /// Request types currently violating their SLO.
    pub violated: Vec<RequestTypeId>,
}

impl SloAssessment {
    /// True when any request type violates its SLO.
    pub fn any_violation(&self) -> bool {
        !self.violated.is_empty()
    }
}

/// Tail-latency SLO monitor.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    /// Tail quantile to assess (0.99 in the paper's definition of
    /// latency SLOs).
    pub quantile: f64,
}

impl Default for SloMonitor {
    fn default() -> Self {
        SloMonitor { quantile: 0.99 }
    }
}

impl SloMonitor {
    /// Assesses the window `[since, now)` from the coordinator's traces.
    pub fn assess(
        &self,
        app: &AppSpec,
        coordinator: &TracingCoordinator,
        since: SimTime,
    ) -> SloAssessment {
        let mut per_type = Vec::with_capacity(app.request_types.len());
        let mut violated = Vec::new();
        let mut worst_sv: f64 = 1.0;

        for (i, rt) in app.request_types.iter().enumerate() {
            let rt_id = RequestTypeId(i as u16);
            let mut lats = coordinator.latencies_since(since, rt_id);
            let (p99, sv) = if lats.is_empty() {
                // No traces ⇒ assume no violation (§3.4).
                (0.0, 1.0)
            } else {
                lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
                let p99 = firm_sim::stats::sample_quantile(&lats, self.quantile);
                let sv = if p99 <= 0.0 {
                    1.0
                } else {
                    (rt.slo_latency_us as f64 / p99).min(2.0)
                };
                (p99, sv)
            };
            if sv < 1.0 {
                violated.push(rt_id);
            }
            worst_sv = worst_sv.min(sv);
            per_type.push((rt_id, p99, rt.slo_latency_us, sv));
        }

        SloAssessment {
            sv: worst_sv,
            per_type,
            violated,
        }
    }
}

/// Assesses one window of already-drained completed requests: true when
/// any request type's tail latency exceeds its SLO. The drained-trace
/// counterpart of [`SloMonitor::assess`], shared by the non-FIRM paths
/// of the single-scenario harness and the fleet executor so the two
/// can never disagree on what "violating" means.
pub fn window_violates(
    app: &AppSpec,
    completed: &[firm_sim::CompletedRequest],
    quantile: f64,
) -> bool {
    for (i, rt) in app.request_types.iter().enumerate() {
        let mut rt_lats: Vec<f64> = completed
            .iter()
            .filter(|r| !r.dropped && r.request_type.index() == i)
            .map(|r| r.latency.as_micros() as f64)
            .collect();
        if rt_lats.is_empty() {
            continue;
        }
        rt_lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let p99 = firm_sim::stats::sample_quantile(&rt_lats, quantile);
        if p99 > rt.slo_latency_us as f64 {
            return true;
        }
    }
    false
}

/// Calibrates each request type's SLO to `factor ×` its measured healthy
/// p99 at the given load — the usual way operators pick tail SLOs. Runs
/// a short unmanaged, anomaly-free simulation and mutates `app`.
pub fn calibrate_slos(
    app: &mut AppSpec,
    cluster: &firm_sim::spec::ClusterSpec,
    rate: f64,
    factor: f64,
    seed: u64,
) {
    let mut sim = firm_sim::Simulation::builder(cluster.clone(), app.clone(), seed)
        .arrivals(Box::new(firm_sim::PoissonArrivals::new(rate)))
        .build();
    sim.run_for(firm_sim::SimDuration::from_secs(2));
    sim.drain_completed();
    sim.run_for(firm_sim::SimDuration::from_secs(8));
    let mut per_rt: Vec<Vec<f64>> = vec![Vec::new(); app.request_types.len()];
    for r in sim.drain_completed() {
        if !r.dropped {
            per_rt[r.request_type.index()].push(r.latency.as_micros() as f64);
        }
    }
    for (rt, lats) in app.request_types.iter_mut().zip(&mut per_rt) {
        if lats.is_empty() {
            continue;
        }
        lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let p99 = firm_sim::stats::sample_quantile(lats, 0.99);
        rt.slo_latency_us = ((p99 * factor) as u64).max(1_000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::ClusterSpec;
    use firm_sim::{AnomalyKind, AnomalySpec, NodeId, SimDuration, Simulation};

    fn setup() -> (Simulation, TracingCoordinator) {
        let sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 21).build();
        (sim, TracingCoordinator::new(100_000))
    }

    #[test]
    fn healthy_app_has_sv_one() {
        let (mut sim, mut coord) = setup();
        sim.run_for(SimDuration::from_secs(2));
        coord.ingest(sim.drain_completed());
        let a = SloMonitor::default().assess(sim.app(), &coord, SimTime::ZERO);
        assert!(!a.any_violation());
        assert!(a.sv >= 1.0);
        assert_eq!(a.per_type.len(), 1);
        assert!(a.per_type[0].1 > 0.0, "p99 recorded");
    }

    #[test]
    fn no_traces_means_no_violation() {
        let (sim, coord) = setup();
        let a = SloMonitor::default().assess(sim.app(), &coord, SimTime::ZERO);
        assert_eq!(a.sv, 1.0);
        assert!(!a.any_violation());
    }

    #[test]
    fn calibrate_slos_tracks_baseline_p99() {
        let mut app = AppSpec::three_tier_demo();
        calibrate_slos(&mut app, &ClusterSpec::small(2), 50.0, 2.0, 5);
        let slo = app.request_types[0].slo_latency_us;
        // Healthy p99 of the demo sits in the low single-digit ms.
        assert!((2_000..40_000).contains(&slo), "slo {slo}us");
    }

    #[test]
    fn anomaly_triggers_violation_with_sv_below_one() {
        // Tighten the SLO so the injected contention clearly breaks it.
        let mut app = AppSpec::three_tier_demo();
        app.request_types[0].slo_latency_us = 8_000;
        let mut sim = Simulation::builder(ClusterSpec::small(2), app, 21).build();
        let mut coord = TracingCoordinator::new(100_000);
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            1.0,
            SimDuration::from_secs(4),
        ));
        sim.inject(AnomalySpec::new(
            AnomalyKind::CpuStress,
            NodeId(0),
            0.9,
            SimDuration::from_secs(4),
        ));
        sim.run_for(SimDuration::from_secs(3));
        coord.ingest(sim.drain_completed());
        let a = SloMonitor::default().assess(sim.app(), &coord, SimTime::ZERO);
        assert!(a.any_violation(), "sv={} per_type={:?}", a.sv, a.per_type);
        assert!(a.sv < 1.0);
    }
}
