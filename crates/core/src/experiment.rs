//! The experiment harness behind the paper's evaluation figures.
//!
//! [`run_scenario`] drives one simulation under a chosen resource
//! manager (FIRM, K8s HPA, AIMD, or none), an arrival process, and an
//! optional anomaly campaign, and produces the measurements the figures
//! plot: latency distributions (Fig. 10a), the requested-CPU-limit
//! series (Fig. 10b), dropped requests (Fig. 10c), per-tick p99
//! timelines (Fig. 1), and per-anomaly SLO mitigation times (Fig. 11b).

use firm_sim::spec::{AppSpec, ClusterSpec};
use firm_sim::{
    AnomalyId, ArrivalProcess, Histogram, PoissonArrivals, SimDuration, SimTime, Simulation,
};
use firm_telemetry::TelemetryCollector;
use firm_trace::TracingCoordinator;

use crate::baselines::{AimdConfig, AimdController, K8sConfig, K8sHpaController};
use crate::injector::{AnomalyInjector, CampaignConfig};
use crate::manager::FirmManager;
use crate::slo::SloMonitor;

/// Which resource manager drives the scenario.
pub enum ControllerKind {
    /// No management (static allocation).
    None,
    /// FIRM (optionally pre-trained: pass a constructed manager).
    Firm(Box<FirmManager>),
    /// Kubernetes autoscaling.
    K8s(K8sConfig),
    /// AIMD limit control.
    Aimd(AimdConfig),
}

/// A resource manager under test.
pub enum Controller {
    /// No-op.
    None,
    /// FIRM manager.
    Firm(Box<FirmManager>),
    /// K8s HPA with its own trace/telemetry plumbing.
    K8s(K8sHpaController),
    /// AIMD with its own trace/telemetry plumbing.
    Aimd(AimdController, TracingCoordinator),
}

impl Controller {
    fn name(&self) -> &'static str {
        match self {
            Controller::None => "none",
            Controller::Firm(_) => "FIRM",
            Controller::K8s(_) => "K8S",
            Controller::Aimd(..) => "AIMD",
        }
    }
}

/// Scenario parameters.
pub struct ScenarioConfig {
    /// The application.
    pub app: AppSpec,
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Arrival process (default: 100 req/s Poisson).
    pub arrivals: Option<Box<dyn ArrivalProcess>>,
    /// The manager under test.
    pub controller: ControllerKind,
    /// Anomaly campaign, if any.
    pub campaign: Option<CampaignConfig>,
    /// Scenario length.
    pub duration: SimDuration,
    /// Control-loop period for baselines and sampling.
    pub control_interval: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Measurements start after this warmup.
    pub warmup: SimDuration,
}

impl ScenarioConfig {
    /// A scenario over the given app with sensible defaults.
    pub fn new(app: AppSpec, controller: ControllerKind) -> Self {
        ScenarioConfig {
            app,
            cluster: ClusterSpec::paper_cluster(),
            arrivals: None,
            controller,
            campaign: None,
            duration: SimDuration::from_secs(60),
            control_interval: SimDuration::from_secs(1),
            seed: 1,
            warmup: SimDuration::from_secs(5),
        }
    }
}

/// One point of the per-tick timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelinePoint {
    /// Tick end time.
    pub at: SimTime,
    /// p99 end-to-end latency in the tick window (us), 0 if no traffic.
    pub p99_us: f64,
    /// Mean end-to-end latency in the window (us).
    pub mean_us: f64,
    /// Sum of requested CPU limits (cores).
    pub requested_cpu: f64,
    /// Cluster-average CPU utilization of running instances.
    pub cpu_utilization: f64,
    /// Mean per-core DRAM access of instance 0's node (Fig. 1 series).
    pub per_core_dram: f64,
    /// Drops in the window.
    pub drops: u64,
}

/// Result of one scenario run.
pub struct ScenarioResult {
    /// Manager name.
    pub controller: &'static str,
    /// End-to-end latency histogram (us), post-warmup, non-dropped.
    pub latency: Histogram,
    /// Per-tick timeline.
    pub timeline: Vec<TimelinePoint>,
    /// Total completed requests post-warmup.
    pub completions: u64,
    /// Total dropped requests post-warmup.
    pub drops: u64,
    /// Completed requests violating their SLO post-warmup.
    pub slo_violations: u64,
    /// Mean requested CPU limit over the run (cores).
    pub mean_requested_cpu: f64,
    /// Per-anomaly mitigation times: injection-to-recovery (capped at
    /// the anomaly duration when never mitigated).
    pub mitigation_times: Vec<SimDuration>,
}

impl ScenarioResult {
    /// SLO violation rate among completed requests.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }

    /// Mean mitigation time in seconds (0 if no anomalies fired).
    pub fn mean_mitigation_secs(&self) -> f64 {
        if self.mitigation_times.is_empty() {
            return 0.0;
        }
        self.mitigation_times
            .iter()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / self.mitigation_times.len() as f64
    }
}

/// Tracks SLO-mitigation times across control ticks: for each anomaly
/// that coincides with a violation, the time from the first violating
/// window to the first violation-free window while the anomaly is still
/// active (Fig. 11b's metric). Anomalies that end unresolved count
/// their full violation span. Shared by the single-scenario harness and
/// the fleet runtime.
#[derive(Debug, Default)]
pub struct MitigationTracker {
    /// anomaly id → (violation first seen, resolved).
    open: Vec<(AnomalyId, SimTime, bool)>,
    times: Vec<SimDuration>,
}

impl MitigationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MitigationTracker::default()
    }

    /// Mitigation times measured so far.
    pub fn times(&self) -> &[SimDuration] {
        &self.times
    }

    /// Consumes the tracker, yielding the measured times.
    pub fn into_times(self) -> Vec<SimDuration> {
        self.times
    }

    /// Observes one tick: which anomalies are active and whether the SLO
    /// held in this window.
    pub fn observe(
        &mut self,
        active: &[AnomalyId],
        violating: bool,
        now: SimTime,
        tick: SimDuration,
    ) {
        // Open trackers for new anomalies that coincide with violations.
        for id in active {
            if violating && !self.open.iter().any(|(a, _, _)| a == id) {
                self.open.push((*id, now, false));
            }
        }
        // A violation-free window while the anomaly is still active means
        // the manager mitigated it.
        if !violating {
            for (_, started, resolved) in &mut self.open {
                if !*resolved {
                    *resolved = true;
                    self.times.push((now - *started).saturating_sub(tick));
                }
            }
        }
        // Anomalies that ended unresolved count their full violation span.
        let still_active = |id: &AnomalyId| active.contains(id);
        let mut keep = Vec::new();
        for (id, started, resolved) in self.open.drain(..) {
            if still_active(&id) {
                keep.push((id, started, resolved));
            } else if !resolved {
                self.times.push(now - started);
            }
        }
        self.open = keep;
    }
}

/// Runs one scenario to completion.
pub fn run_scenario(config: ScenarioConfig) -> ScenarioResult {
    let ScenarioConfig {
        app,
        cluster,
        arrivals,
        controller,
        campaign,
        duration,
        control_interval,
        seed,
        warmup,
    } = config;

    let mut sim = Simulation::builder(cluster, app, seed)
        .arrivals(arrivals.unwrap_or_else(|| Box::new(PoissonArrivals::new(100.0))))
        .build();

    let services = sim.app().services.len();
    let mut controller = match controller {
        ControllerKind::None => Controller::None,
        ControllerKind::Firm(mut mgr) => {
            // The manager may arrive from training on another app; its
            // environment-coupled state must not leak into this run.
            mgr.reset_environment();
            Controller::Firm(mgr)
        }
        ControllerKind::K8s(cfg) => Controller::K8s(K8sHpaController::new(cfg, services)),
        ControllerKind::Aimd(cfg) => {
            Controller::Aimd(AimdController::new(cfg), TracingCoordinator::new(100_000))
        }
    };
    let mut injector = campaign.map(|c| AnomalyInjector::new(c, seed ^ 0xF00D));

    let monitor = SloMonitor::default();
    let mut collector = TelemetryCollector::new(64);
    let mut latency = Histogram::new();
    let mut timeline = Vec::new();
    let mut tracker = MitigationTracker::new();
    let mut completions = 0u64;
    let mut drops = 0u64;
    let mut slo_violations = 0u64;
    let mut cpu_sum = 0.0;
    let mut cpu_n = 0u64;

    let app_clone = sim.app().clone();
    let end = sim.now() + duration;
    let warm_until = sim.now() + warmup;

    while sim.now() < end {
        let window_start = sim.now();
        if let Some(inj) = injector.as_mut() {
            inj.tick(&mut sim);
        }
        sim.run_for(control_interval);
        let measuring = sim.now() > warm_until;

        // Manager-specific plumbing; each manager consumes the drains it
        // needs, and we recover window measurements from what remains.
        let (window_p99, window_mean, window_drops, violating, telemetry) = match &mut controller {
            Controller::Firm(mgr) => {
                let assessment = mgr.tick(&mut sim);
                // FIRM's coordinator holds the traces.
                let mut lats: Vec<f64> = Vec::new();
                let mut wdrops = 0;
                // `traces_since` is inclusive of its bound: a trace that
                // finished exactly at the previous tick boundary was
                // already counted there, so keep only strictly-later
                // ones (nothing can finish at t=0, the first bound).
                for t in mgr
                    .coordinator()
                    .traces_since(window_start)
                    .into_iter()
                    .filter(|t| t.finished > window_start)
                {
                    if t.dropped {
                        wdrops += 1;
                    } else {
                        lats.push(t.latency.as_micros() as f64);
                        if measuring {
                            latency.record(t.latency.as_micros());
                            completions += 1;
                            let slo =
                                app_clone.request_types[t.request_type.index()].slo_latency_us;
                            if t.latency.as_micros() > slo {
                                slo_violations += 1;
                            }
                        }
                    }
                }
                if measuring {
                    drops += wdrops;
                    completions += wdrops;
                }
                lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let p99 = firm_sim::stats::sample_quantile(&lats, 0.99);
                let mean = if lats.is_empty() {
                    0.0
                } else {
                    lats.iter().sum::<f64>() / lats.len() as f64
                };
                // Telemetry was drained by the manager; read its copy.
                let telemetry = mgr.last_telemetry().cloned().unwrap_or_default();
                (p99, mean, wdrops, assessment.any_violation(), telemetry)
            }
            other => {
                // Shared measurement path for None/K8s/AIMD.
                let completed = sim.drain_completed();
                let telemetry = sim.drain_telemetry();
                let mut lats: Vec<f64> = Vec::new();
                let mut wdrops = 0;
                for r in &completed {
                    if r.dropped {
                        wdrops += 1;
                    } else {
                        lats.push(r.latency.as_micros() as f64);
                        if measuring {
                            latency.record(r.latency.as_micros());
                            completions += 1;
                            let slo =
                                app_clone.request_types[r.request_type.index()].slo_latency_us;
                            if r.latency.as_micros() > slo {
                                slo_violations += 1;
                            }
                        }
                    }
                }
                if measuring {
                    drops += wdrops;
                    completions += wdrops;
                }
                lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let p99 = firm_sim::stats::sample_quantile(&lats, 0.99);
                let mean = if lats.is_empty() {
                    0.0
                } else {
                    lats.iter().sum::<f64>() / lats.len() as f64
                };
                let violating =
                    crate::slo::window_violates(&app_clone, &completed, monitor.quantile);

                match other {
                    Controller::K8s(hpa) => hpa.tick(&mut sim, &telemetry),
                    Controller::Aimd(aimd, coord) => {
                        coord.ingest(completed);
                        aimd.tick(&mut sim, coord, &telemetry, window_start);
                        coord.evict_before(window_start);
                    }
                    _ => {}
                }
                (p99, mean, wdrops, violating, telemetry)
            }
        };
        collector.collect(&telemetry);

        // Timeline point.
        let requested_cpu = sim.total_requested_cpu();
        let cpu_util = {
            let running: Vec<_> = telemetry
                .instances
                .iter()
                .filter(|i| i.state == firm_sim::instance::InstanceState::Running)
                .collect();
            if running.is_empty() {
                0.0
            } else {
                running
                    .iter()
                    .map(|i| i.utilization.get(firm_sim::ResourceKind::Cpu))
                    .sum::<f64>()
                    / running.len() as f64
            }
        };
        let per_core_dram = telemetry
            .instances
            .first()
            .map(|i| i.per_core_dram_mbps)
            .unwrap_or(0.0);
        if measuring {
            cpu_sum += requested_cpu;
            cpu_n += 1;
        }
        timeline.push(TimelinePoint {
            at: sim.now(),
            p99_us: window_p99,
            mean_us: window_mean,
            requested_cpu,
            cpu_utilization: cpu_util,
            per_core_dram,
            drops: window_drops,
        });

        // Mitigation accounting.
        let active: Vec<AnomalyId> = sim
            .active_anomalies()
            .iter()
            .filter(|(_, _, at)| *at <= sim.now())
            .map(|(id, _, _)| *id)
            .collect();
        tracker.observe(&active, violating, sim.now(), control_interval);
    }

    ScenarioResult {
        controller: controller.name(),
        latency,
        timeline,
        completions,
        drops,
        slo_violations,
        mean_requested_cpu: if cpu_n == 0 {
            0.0
        } else {
            cpu_sum / cpu_n as f64
        },
        mitigation_times: tracker.into_times(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::FirmConfig;
    use firm_sim::spec::AppSpec;

    fn tight_app() -> AppSpec {
        let mut app = AppSpec::three_tier_demo();
        app.request_types[0].slo_latency_us = 10_000;
        app
    }

    fn base_config(controller: ControllerKind, seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::new(tight_app(), controller);
        cfg.cluster = ClusterSpec::small(2);
        cfg.arrivals = Some(Box::new(PoissonArrivals::new(60.0)));
        cfg.duration = SimDuration::from_secs(30);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn unmanaged_scenario_collects_measurements() {
        let mut cfg = base_config(ControllerKind::None, 1);
        cfg.campaign = Some(CampaignConfig::stressors_only());
        let res = run_scenario(cfg);
        assert_eq!(res.controller, "none");
        assert!(res.completions > 500);
        assert!(res.latency.count() > 500);
        assert_eq!(res.timeline.len(), 30);
        assert!(res.mean_requested_cpu > 0.0);
    }

    #[test]
    fn managed_scenarios_run_for_all_controllers() {
        for (kind, name) in [
            (
                ControllerKind::Firm(Box::new(FirmManager::new(FirmConfig {
                    training: true,
                    ..FirmConfig::default()
                }))),
                "FIRM",
            ),
            (ControllerKind::K8s(K8sConfig::default()), "K8S"),
            (ControllerKind::Aimd(AimdConfig::default()), "AIMD"),
        ] {
            let mut cfg = base_config(kind, 2);
            cfg.campaign = Some(CampaignConfig::stressors_only());
            let res = run_scenario(cfg);
            assert_eq!(res.controller, name);
            assert!(res.completions > 300, "{name}: {}", res.completions);
            assert!(!res.timeline.is_empty());
        }
    }

    #[test]
    fn mitigation_tracker_measures_recovery() {
        let mut t = MitigationTracker::new();
        let tick = SimDuration::from_secs(1);
        let id = AnomalyId(1);
        // Anomaly active + violating for 3 ticks, then recovered.
        t.observe(&[id], true, SimTime::from_secs(1), tick);
        t.observe(&[id], true, SimTime::from_secs(2), tick);
        t.observe(&[id], true, SimTime::from_secs(3), tick);
        t.observe(&[id], false, SimTime::from_secs(4), tick);
        assert_eq!(t.times.len(), 1);
        assert_eq!(t.times[0], SimDuration::from_secs(2));
    }

    #[test]
    fn unresolved_anomaly_counts_full_span() {
        let mut t = MitigationTracker::new();
        let tick = SimDuration::from_secs(1);
        let id = AnomalyId(2);
        t.observe(&[id], true, SimTime::from_secs(1), tick);
        t.observe(&[id], true, SimTime::from_secs(2), tick);
        // The anomaly ends while still violating.
        t.observe(&[], true, SimTime::from_secs(3), tick);
        assert_eq!(t.times.len(), 1);
        assert_eq!(t.times[0], SimDuration::from_secs(2));
    }
}
