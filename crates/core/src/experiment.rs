//! The experiment harness behind the paper's evaluation figures.
//!
//! [`run_scenario`] drives one simulation under a chosen resource
//! manager (FIRM, K8s HPA, AIMD, or none), an arrival process, and an
//! optional anomaly campaign, and produces the measurements the figures
//! plot: latency distributions (Fig. 10a), the requested-CPU-limit
//! series (Fig. 10b), dropped requests (Fig. 10c), per-tick p99
//! timelines (Fig. 1), and per-anomaly SLO mitigation times (Fig. 11b).
//!
//! The tick/measurement loop itself lives in [`crate::controller`]:
//! this module only declares the scenario (`ScenarioConfig`), builds
//! the controller from its [`ControllerKind`], and repackages the
//! shared driver's [`crate::controller::EpisodeResult`] as a
//! [`ScenarioResult`].

use firm_sim::spec::{AppSpec, ClusterSpec};
use firm_sim::{ArrivalProcess, Histogram, PoissonArrivals, SimDuration, Simulation};

use crate::baselines::{AimdConfig, AimdController, K8sConfig, K8sHpaController};
use crate::controller::{run_episode, Controller, EpisodeSpec, Unmanaged};
use crate::injector::{AnomalyInjector, CampaignConfig};
use crate::manager::FirmManager;

pub use crate::controller::{MitigationTracker, TimelinePoint};

/// Which resource manager drives the scenario.
pub enum ControllerKind {
    /// No management (static allocation).
    None,
    /// FIRM (optionally pre-trained: pass a constructed manager).
    Firm(Box<FirmManager>),
    /// Kubernetes autoscaling.
    K8s(K8sConfig),
    /// AIMD limit control.
    Aimd(AimdConfig),
}

impl ControllerKind {
    /// Builds the live controller for an application with `services`
    /// services.
    pub fn into_controller(self, services: usize) -> Box<dyn Controller> {
        match self {
            ControllerKind::None => Box::new(Unmanaged),
            ControllerKind::Firm(mut mgr) => {
                // The manager may arrive from training on another app; its
                // environment-coupled state must not leak into this run.
                mgr.reset_environment();
                mgr
            }
            ControllerKind::K8s(cfg) => Box::new(K8sHpaController::new(cfg, services)),
            ControllerKind::Aimd(cfg) => Box::new(AimdController::new(cfg)),
        }
    }
}

/// Scenario parameters.
pub struct ScenarioConfig {
    /// The application.
    pub app: AppSpec,
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Arrival process (default: 100 req/s Poisson).
    pub arrivals: Option<Box<dyn ArrivalProcess>>,
    /// The manager under test.
    pub controller: ControllerKind,
    /// Anomaly campaign, if any.
    pub campaign: Option<CampaignConfig>,
    /// Scenario length.
    pub duration: SimDuration,
    /// Control-loop period for baselines and sampling.
    pub control_interval: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Measurements start after this warmup.
    pub warmup: SimDuration,
}

impl ScenarioConfig {
    /// A scenario over the given app with sensible defaults.
    pub fn new(app: AppSpec, controller: ControllerKind) -> Self {
        ScenarioConfig {
            app,
            cluster: ClusterSpec::paper_cluster(),
            arrivals: None,
            controller,
            campaign: None,
            duration: SimDuration::from_secs(60),
            control_interval: SimDuration::from_secs(1),
            seed: 1,
            warmup: SimDuration::from_secs(5),
        }
    }
}

/// Result of one scenario run.
pub struct ScenarioResult {
    /// Manager name.
    pub controller: &'static str,
    /// End-to-end latency histogram (us), post-warmup, non-dropped.
    pub latency: Histogram,
    /// Per-tick timeline.
    pub timeline: Vec<TimelinePoint>,
    /// Total completed requests post-warmup (drops included).
    pub completions: u64,
    /// Total dropped requests post-warmup.
    pub drops: u64,
    /// Post-warmup SLO violations (a dropped request counts as one).
    pub slo_violations: u64,
    /// Mean requested CPU limit over the run (cores).
    pub mean_requested_cpu: f64,
    /// Per-anomaly mitigation times: injection-to-recovery (capped at
    /// the anomaly duration when never mitigated).
    pub mitigation_times: Vec<SimDuration>,
}

impl ScenarioResult {
    /// SLO violation rate among completed requests.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }

    /// Mean mitigation time in seconds (0 if no anomalies fired).
    pub fn mean_mitigation_secs(&self) -> f64 {
        if self.mitigation_times.is_empty() {
            return 0.0;
        }
        self.mitigation_times
            .iter()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / self.mitigation_times.len() as f64
    }
}

/// Runs one scenario to completion.
pub fn run_scenario(config: ScenarioConfig) -> ScenarioResult {
    let ScenarioConfig {
        app,
        cluster,
        arrivals,
        controller,
        campaign,
        duration,
        control_interval,
        seed,
        warmup,
    } = config;

    let mut sim = Simulation::builder(cluster, app, seed)
        .arrivals(arrivals.unwrap_or_else(|| Box::new(PoissonArrivals::new(100.0))))
        .build();

    let services = sim.app().services.len();
    let mut controller = controller.into_controller(services);
    let mut injector = campaign.map(|c| AnomalyInjector::new(c, seed ^ 0xF00D));

    let spec = EpisodeSpec {
        duration,
        control_interval,
        warmup,
    };
    let episode = run_episode(&mut sim, controller.as_mut(), injector.as_mut(), &spec);

    ScenarioResult {
        controller: controller.name(),
        latency: episode.latency,
        timeline: episode.timeline,
        completions: episode.completions,
        drops: episode.drops,
        slo_violations: episode.slo_violations,
        mean_requested_cpu: episode.mean_requested_cpu,
        mitigation_times: episode.mitigation_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::FirmConfig;
    use firm_sim::spec::AppSpec;
    use firm_sim::{AnomalyId, SimTime};

    fn tight_app() -> AppSpec {
        let mut app = AppSpec::three_tier_demo();
        app.request_types[0].slo_latency_us = 10_000;
        app
    }

    fn base_config(controller: ControllerKind, seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::new(tight_app(), controller);
        cfg.cluster = ClusterSpec::small(2);
        cfg.arrivals = Some(Box::new(PoissonArrivals::new(60.0)));
        cfg.duration = SimDuration::from_secs(30);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn unmanaged_scenario_collects_measurements() {
        let mut cfg = base_config(ControllerKind::None, 1);
        cfg.campaign = Some(CampaignConfig::stressors_only());
        let res = run_scenario(cfg);
        assert_eq!(res.controller, "none");
        assert!(res.completions > 500);
        assert!(res.latency.count() > 500);
        assert_eq!(res.timeline.len(), 30);
        assert!(res.mean_requested_cpu > 0.0);
    }

    #[test]
    fn managed_scenarios_run_for_all_controllers() {
        for (kind, name) in [
            (
                ControllerKind::Firm(Box::new(FirmManager::new(FirmConfig {
                    training: true,
                    ..FirmConfig::default()
                }))),
                "FIRM",
            ),
            (ControllerKind::K8s(K8sConfig::default()), "K8S"),
            (ControllerKind::Aimd(AimdConfig::default()), "AIMD"),
        ] {
            let mut cfg = base_config(kind, 2);
            cfg.campaign = Some(CampaignConfig::stressors_only());
            let res = run_scenario(cfg);
            assert_eq!(res.controller, name);
            assert!(res.completions > 300, "{name}: {}", res.completions);
            assert!(!res.timeline.is_empty());
        }
    }

    #[test]
    fn mitigation_tracker_measures_recovery() {
        let mut t = MitigationTracker::new();
        let tick = SimDuration::from_secs(1);
        let id = AnomalyId(1);
        // Anomaly active + violating for 3 ticks, then recovered.
        t.observe(&[id], true, SimTime::from_secs(1), tick);
        t.observe(&[id], true, SimTime::from_secs(2), tick);
        t.observe(&[id], true, SimTime::from_secs(3), tick);
        t.observe(&[id], false, SimTime::from_secs(4), tick);
        assert_eq!(t.times().len(), 1);
        assert_eq!(t.times()[0], SimDuration::from_secs(2));
    }

    #[test]
    fn unresolved_anomaly_counts_full_span() {
        let mut t = MitigationTracker::new();
        let tick = SimDuration::from_secs(1);
        let id = AnomalyId(2);
        t.observe(&[id], true, SimTime::from_secs(1), tick);
        t.observe(&[id], true, SimTime::from_secs(2), tick);
        // The anomaly ends while still violating.
        t.observe(&[], true, SimTime::from_secs(3), tick);
        assert_eq!(t.times().len(), 1);
        assert_eq!(t.times()[0], SimDuration::from_secs(2));
    }
}
