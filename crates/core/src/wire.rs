//! Wire-codec impls for FIRM's control-plane data.
//!
//! These are the payloads of the fleet's cut points: a
//! [`PolicyCheckpoint`] ships a frozen shared agent to a remote worker
//! and back, an [`ExperienceLog`] streams a worker's harvested
//! transitions and SVM ground truth home to the central trainer, and
//! the controller/campaign configs ride inside a `Scenario`. Floats use
//! shortest round-trip rendering, so a policy that crosses the wire
//! deploys bit-identical weights.

use firm_wire::{DecodeError, JsonValue, Obj, WireDecode, WireEncode};

use crate::baselines::{AimdConfig, K8sConfig};
use crate::controller::PolicyCheckpoint;
use crate::extractor::InstanceFeatures;
use crate::injector::CampaignConfig;
use crate::manager::ExperienceLog;

impl WireEncode for PolicyCheckpoint {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("actor", &self.actor)
            .field("critic", &self.critic)
            .build()
    }
}

impl WireDecode for PolicyCheckpoint {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(PolicyCheckpoint {
            actor: v.field("actor")?,
            critic: v.field("critic")?,
        })
    }
}

impl WireEncode for InstanceFeatures {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("instance", self.instance)
            .field("service", self.service)
            .field("ri", self.ri)
            .field("ci", self.ci)
            .field("samples", self.samples)
            .build()
    }
}

impl WireDecode for InstanceFeatures {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(InstanceFeatures {
            instance: v.field("instance")?,
            service: v.field("service")?,
            ri: v.field("ri")?,
            ci: v.field("ci")?,
            samples: v.field("samples")?,
        })
    }
}

impl WireEncode for ExperienceLog {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("transitions", &self.transitions)
            .field("svm_examples", &self.svm_examples)
            .build()
    }
}

impl WireDecode for ExperienceLog {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(ExperienceLog {
            transitions: v.field("transitions")?,
            svm_examples: v.field("svm_examples")?,
        })
    }
}

impl WireEncode for CampaignConfig {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("lambda", self.lambda)
            .field("kinds", &self.kinds)
            .field("intensity", self.intensity)
            .field("duration", self.duration)
            .field("target_nodes", &self.target_nodes)
            .field("container_level", self.container_level)
            .build()
    }
}

impl WireDecode for CampaignConfig {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(CampaignConfig {
            lambda: v.field("lambda")?,
            kinds: v.field("kinds")?,
            intensity: v.field("intensity")?,
            duration: v.field("duration")?,
            target_nodes: v.field("target_nodes")?,
            container_level: v.field("container_level")?,
        })
    }
}

impl WireEncode for K8sConfig {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("target_utilization", self.target_utilization)
            .field("tolerance", self.tolerance)
            .field("max_replicas", self.max_replicas)
            .field(
                "downscale_stabilization_ticks",
                self.downscale_stabilization_ticks,
            )
            .build()
    }
}

impl WireDecode for K8sConfig {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(K8sConfig {
            target_utilization: v.field("target_utilization")?,
            tolerance: v.field("tolerance")?,
            max_replicas: v.field("max_replicas")?,
            downscale_stabilization_ticks: v.field("downscale_stabilization_ticks")?,
        })
    }
}

impl WireEncode for AimdConfig {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("additive_step", self.additive_step)
            .field("beta", self.beta)
            .field("low_utilization", self.low_utilization)
            .field("cpu_bounds", self.cpu_bounds)
            .build()
    }
}

impl WireDecode for AimdConfig {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(AimdConfig {
            additive_step: v.field("additive_step")?,
            beta: v.field("beta")?,
            low_utilization: v.field("low_utilization")?,
            cpu_bounds: v.field("cpu_bounds")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_ml::Transition;
    use firm_sim::anomaly::ANOMALY_KINDS;
    use firm_sim::{InstanceId, ServiceId, SimDuration};
    use firm_wire::{assert_round_trip, decode_string, encode_string};

    #[test]
    fn policy_checkpoints_round_trip_bit_identically() {
        let policy = PolicyCheckpoint {
            actor: (0..64).map(|i| (i as f64 * 0.731).sin() * 1e3).collect(),
            critic: (0..96).map(|i| 1.0 / (i as f64 + 0.123)).collect(),
        };
        assert_round_trip(&policy);
        let back: PolicyCheckpoint = decode_string(&encode_string(&policy)).unwrap();
        assert_eq!(back.digest(), policy.digest(), "weight bits changed");
    }

    #[test]
    fn experience_logs_round_trip() {
        let mut log = ExperienceLog::default();
        log.transitions.push((
            ServiceId(3),
            Transition {
                state: vec![0.25, -0.5],
                action: vec![1.0],
                reward: -0.125,
                next_state: vec![0.3, 0.7],
                done: false,
            },
        ));
        log.svm_examples.push((
            InstanceFeatures {
                instance: InstanceId(9),
                service: ServiceId(3),
                ri: 0.87,
                ci: 2.4,
                samples: 17,
            },
            true,
        ));
        assert_round_trip(&log);
        assert_round_trip(&ExperienceLog::default());
    }

    #[test]
    fn configs_round_trip() {
        assert_round_trip(&K8sConfig::default());
        assert_round_trip(&AimdConfig::default());
        assert_round_trip(&CampaignConfig::default());
        assert_round_trip(&CampaignConfig {
            lambda: 0.5,
            kinds: ANOMALY_KINDS.to_vec(),
            intensity: (0.1, 0.9),
            duration: (SimDuration::from_secs(1), SimDuration::from_secs(4)),
            target_nodes: vec![firm_sim::NodeId(0), firm_sim::NodeId(2)],
            container_level: false,
        });
    }
}
