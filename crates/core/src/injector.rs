//! The Performance Anomaly Injector (§3.6) and its campaigns (§4.1).
//!
//! The injector creates resource-contention situations with configurable
//! type, intensity, timing and duration, generating both the RL training
//! signal and the ground truth for SVM training. The default campaign
//! follows the paper's evaluation setup: injection inter-arrival times
//! exponentially distributed with λ = 0.33 s⁻¹, anomaly type and
//! intensity chosen uniformly at random, targets chosen uniformly across
//! nodes.

use firm_sim::anomaly::ANOMALY_KINDS;
use firm_sim::{
    AnomalyId, AnomalyKind, AnomalySpec, NodeId, SimDuration, SimRng, SimTime, Simulation,
};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Injection rate λ (events per second); the paper uses 0.33 s⁻¹.
    pub lambda: f64,
    /// Anomaly kinds to draw from (uniformly).
    pub kinds: Vec<AnomalyKind>,
    /// Intensity range, drawn uniformly.
    pub intensity: (f64, f64),
    /// Duration range, drawn uniformly.
    pub duration: (SimDuration, SimDuration),
    /// Nodes eligible as targets (empty = all nodes); only used in
    /// node-level mode.
    pub target_nodes: Vec<NodeId>,
    /// Inject into containers chosen uniformly at random (§4.1, the
    /// paper's mode) instead of into nodes.
    pub container_level: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            lambda: 0.33,
            kinds: ANOMALY_KINDS.to_vec(),
            intensity: (0.4, 1.0),
            duration: (SimDuration::from_secs(2), SimDuration::from_secs(8)),
            target_nodes: Vec::new(),
            container_level: true,
        }
    }
}

impl CampaignConfig {
    /// A campaign restricted to resource stressors (no workload/network
    /// delay), e.g. for localization experiments.
    pub fn stressors_only() -> Self {
        CampaignConfig {
            kinds: vec![
                AnomalyKind::CpuStress,
                AnomalyKind::LlcStress,
                AnomalyKind::MemBwStress,
                AnomalyKind::IoStress,
                AnomalyKind::NetBwStress,
            ],
            ..CampaignConfig::default()
        }
    }
}

/// A record of one injected anomaly (for ground truth and reports).
#[derive(Debug, Clone, Copy)]
pub struct InjectionRecord {
    /// The injection id in the simulator.
    pub id: AnomalyId,
    /// What was injected.
    pub spec: AnomalySpec,
    /// When it started.
    pub at: SimTime,
}

/// Drives anomaly injections into a simulation.
#[derive(Debug)]
pub struct AnomalyInjector {
    config: CampaignConfig,
    rng: SimRng,
    next_at: Option<SimTime>,
    history: Vec<InjectionRecord>,
}

impl AnomalyInjector {
    /// Creates an injector with its own RNG stream.
    pub fn new(config: CampaignConfig, seed: u64) -> Self {
        AnomalyInjector {
            config,
            rng: SimRng::new(seed),
            next_at: None,
            history: Vec::new(),
        }
    }

    /// All injections performed so far.
    pub fn history(&self) -> &[InjectionRecord] {
        &self.history
    }

    /// Advances the campaign to `sim.now()`, injecting any anomalies
    /// whose scheduled time has arrived. Call once per control tick.
    pub fn tick(&mut self, sim: &mut Simulation) {
        let now = sim.now();
        let next = match self.next_at {
            Some(t) => t,
            None => {
                let gap = self.rng.exponential(self.config.lambda);
                let t = now + SimDuration::from_secs_f64(gap);
                self.next_at = Some(t);
                t
            }
        };
        if now >= next {
            self.inject_random(sim);
            let gap = self.rng.exponential(self.config.lambda);
            self.next_at = Some(now + SimDuration::from_secs_f64(gap));
        }
    }

    /// Injects one random anomaly per the campaign config.
    pub fn inject_random(&mut self, sim: &mut Simulation) -> InjectionRecord {
        let kind = self.config.kinds[self.rng.index(self.config.kinds.len())];
        let intensity = self
            .rng
            .uniform_range(self.config.intensity.0, self.config.intensity.1);
        let duration = SimDuration::from_micros(self.rng.uniform_range(
            self.config.duration.0.as_micros() as f64,
            self.config.duration.1.as_micros() as f64,
        ) as u64);

        let spec = if self.config.container_level && kind.contended_resource().is_some() {
            // §4.1: anomalies go into containers uniformly at random.
            let running: Vec<firm_sim::InstanceId> = sim
                .instances()
                .iter()
                .enumerate()
                .filter(|(_, i)| i.state == firm_sim::instance::InstanceState::Running)
                .map(|(idx, _)| firm_sim::InstanceId(idx as u32))
                .collect();
            if running.is_empty() {
                AnomalySpec::new(kind, NodeId(0), intensity, duration)
            } else {
                let target = running[self.rng.index(running.len())];
                AnomalySpec::at_instance(kind, target, intensity, duration)
            }
        } else {
            let node = if self.config.target_nodes.is_empty() {
                NodeId(self.rng.index(sim.nodes().len()) as u16)
            } else {
                self.config.target_nodes[self.rng.index(self.config.target_nodes.len())]
            };
            AnomalySpec::new(kind, node, intensity, duration)
        };
        let id = sim.inject(spec);
        let record = InjectionRecord {
            id,
            spec,
            at: sim.now(),
        };
        self.history.push(record);
        record
    }

    /// Injects a specific anomaly now (for targeted experiments).
    pub fn inject(&mut self, sim: &mut Simulation, spec: AnomalySpec) -> InjectionRecord {
        let id = sim.inject(spec);
        let record = InjectionRecord {
            id,
            spec,
            at: sim.now(),
        };
        self.history.push(record);
        record
    }
}

/// The Fig. 9(c) multi-anomaly campaign: the timeline is divided into
/// fixed windows; in each window every anomaly source gets a fresh
/// intensity drawn uniformly from `[0, 1]` (an intensity of zero is
/// allowed — the source is quiet in that window).
pub fn fig9c_campaign(
    sim: &mut Simulation,
    windows: usize,
    window_len: SimDuration,
    node: NodeId,
    seed: u64,
) -> Vec<Vec<(AnomalyKind, f64)>> {
    let mut rng = SimRng::new(seed);
    let mut timeline = Vec::with_capacity(windows);
    let sources = [
        AnomalyKind::WorkloadVariation,
        AnomalyKind::CpuStress,
        AnomalyKind::MemBwStress,
        AnomalyKind::LlcStress,
        AnomalyKind::IoStress,
        AnomalyKind::NetBwStress,
    ];
    for w in 0..windows {
        let at = sim.now() + window_len.mul_f64(w as f64);
        let mut row = Vec::with_capacity(sources.len());
        for kind in sources {
            let intensity = rng.uniform();
            row.push((kind, intensity));
            if intensity > 0.05 {
                sim.inject_at(AnomalySpec::new(kind, node, intensity, window_len), at);
            }
        }
        timeline.push(row);
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::{AppSpec, ClusterSpec};

    fn sim(seed: u64) -> Simulation {
        Simulation::builder(ClusterSpec::small(3), AppSpec::three_tier_demo(), seed).build()
    }

    #[test]
    fn campaign_rate_approximates_lambda() {
        let mut sim = sim(61);
        let mut inj = AnomalyInjector::new(CampaignConfig::default(), 1);
        // 120 simulated seconds at λ=0.33 ≈ 40 injections.
        for _ in 0..1_200 {
            sim.run_for(SimDuration::from_millis(100));
            inj.tick(&mut sim);
        }
        let n = inj.history().len();
        assert!((25..=60).contains(&n), "{n} injections");
    }

    #[test]
    fn injections_land_on_configured_nodes() {
        let mut sim = sim(62);
        let cfg = CampaignConfig {
            target_nodes: vec![NodeId(1)],
            lambda: 5.0,
            container_level: false,
            ..CampaignConfig::default()
        };
        let mut inj = AnomalyInjector::new(cfg, 2);
        for _ in 0..100 {
            sim.run_for(SimDuration::from_millis(100));
            inj.tick(&mut sim);
        }
        assert!(!inj.history().is_empty());
        assert!(inj.history().iter().all(|r| r.spec.node == NodeId(1)));
    }

    #[test]
    fn stressor_campaign_excludes_workload() {
        let cfg = CampaignConfig::stressors_only();
        assert!(!cfg.kinds.contains(&AnomalyKind::WorkloadVariation));
        assert!(!cfg.kinds.contains(&AnomalyKind::NetworkDelay));
        assert_eq!(cfg.kinds.len(), 5);
    }

    #[test]
    fn fig9c_timeline_has_expected_shape() {
        let mut sim = sim(63);
        let timeline = fig9c_campaign(&mut sim, 12, SimDuration::from_secs(10), NodeId(0), 3);
        assert_eq!(timeline.len(), 12);
        assert!(timeline.iter().all(|row| row.len() == 6));
        for row in &timeline {
            for (_, intensity) in row {
                assert!((0.0..=1.0).contains(intensity));
            }
        }
        // The scheduled anomalies actually activate over time.
        sim.run_for(SimDuration::from_secs(5));
        assert!(!sim.active_anomalies().is_empty());
    }

    #[test]
    fn intensity_and_duration_within_ranges() {
        let mut sim = sim(64);
        let cfg = CampaignConfig::default();
        let (ilo, ihi) = cfg.intensity;
        let (dlo, dhi) = cfg.duration;
        let mut inj = AnomalyInjector::new(cfg, 4);
        for _ in 0..50 {
            let r = inj.inject_random(&mut sim);
            assert!((ilo..=ihi).contains(&r.spec.intensity));
            assert!(r.spec.duration >= dlo && r.spec.duration <= dhi);
        }
    }
}
