//! The FIRM manager: the full Fig. 6 control loop.
//!
//! Each control tick the manager (1) ingests traces and telemetry, (2)
//! assesses SLOs, (3) completes the reward/next-state half of pending RL
//! transitions, (4) when violations exist, extracts critical paths and
//! localizes culprit instances with Algorithm 2, (5) queries the RL
//! estimator for per-culprit resource actions, and (6) validates and
//! actuates them through the deployment module. In training mode the
//! injector's ground truth also feeds the SVM online and the agent
//! explores.

use std::collections::BTreeMap;

use firm_ml::ddpg::Transition;
use firm_sim::telemetry_probe::{InstanceSnapshot, TelemetryWindow};
use firm_sim::{InstanceId, ServiceId, SimDuration, SimTime, Simulation, RESOURCE_KINDS};
use firm_telemetry::TelemetryCollector;
use firm_trace::TracingCoordinator;

use crate::deployment::DeploymentModule;
use crate::estimator::{reward, AgentRegime, ResourceEstimator, StateBuilder};
use crate::extractor::{ground_truth_label, CriticalComponentExtractor};
use crate::slo::{SloAssessment, SloMonitor};

/// FIRM configuration.
#[derive(Debug, Clone)]
pub struct FirmConfig {
    /// Control-loop period.
    pub control_interval: SimDuration,
    /// Maximum culprit instances acted upon per tick.
    pub max_candidates: usize,
    /// Agent regime (§4.3: one-for-all / one-for-each / transferred).
    pub regime: AgentRegime,
    /// Training mode: label the SVM from ground truth and learn from
    /// transitions.
    pub training: bool,
    /// Add exploration noise to actions (usually tied to `training`;
    /// disable for deployed-but-still-learning operation).
    pub explore: bool,
    /// Use the SVM to filter culprits (the paper's two-level design).
    /// With `false`, the RL agent sees *every* critical-path instance —
    /// the §5 ablation ("Why Multi-level ML Framework?").
    pub svm_filter: bool,
    /// Record completed RL transitions and SVM ground-truth examples
    /// into an [`ExperienceLog`] for external (cross-simulation)
    /// trainers to drain. Off by default: single-sim runs learn in
    /// place and don't pay the copy.
    pub record_experience: bool,
    /// Reward trade-off α.
    pub alpha: f64,
    /// Use the SLO-penalized reward variant
    /// ([`crate::estimator::reward_penalized`]): violations below the
    /// SLO line earn *negative* rewards, so severity-prioritized
    /// replay has real signal. Off by default — the legacy reward is
    /// non-negative by construction and changing it would move every
    /// pinned digest.
    pub slo_penalty: bool,
    /// RNG seed for the ML components.
    pub seed: u64,
    /// Intra-scenario fan-out: the number of shards the trace-ingest
    /// and extract stages spread over per control tick. Results are
    /// bit-identical at any value (the sharded stages are pure per-item
    /// computations merged in input order); `1` runs everything on the
    /// scenario's own thread.
    pub intra_shards: usize,
}

impl Default for FirmConfig {
    fn default() -> Self {
        FirmConfig {
            control_interval: SimDuration::from_secs(1),
            max_candidates: 4,
            regime: AgentRegime::Shared,
            training: false,
            explore: true,
            svm_filter: true,
            record_experience: false,
            alpha: 0.5,
            slo_penalty: false,
            seed: 7,
            intra_shards: 1,
        }
    }
}

/// Experience harvested from one managed run, in completion order: the
/// raw material of the paper's §4.3 *one-for-all* regime when pooled
/// across many simulations by a fleet runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperienceLog {
    /// Completed RL transitions, tagged with the acting service.
    pub transitions: Vec<(ServiceId, Transition)>,
    /// Algorithm 2 feature vectors with their ground-truth culprit
    /// labels (SVM training pairs).
    pub svm_examples: Vec<(crate::extractor::InstanceFeatures, bool)>,
}

impl ExperienceLog {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty() && self.svm_examples.is_empty()
    }

    /// Appends another log, preserving its internal order.
    pub fn merge(&mut self, other: ExperienceLog) {
        self.transitions.extend(other.transitions);
        self.svm_examples.extend(other.svm_examples);
    }
}

/// Counters exposed for reports and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ManagerStats {
    /// Control ticks executed.
    pub ticks: u64,
    /// Ticks that observed an SLO violation.
    pub violation_ticks: u64,
    /// RL actions issued.
    pub actions: u64,
    /// Actions that became scale-outs (oversubscription rule).
    pub scale_outs: u64,
    /// Completed RL transitions.
    pub transitions: u64,
}

#[derive(Debug)]
struct Pending {
    instance: InstanceId,
    service: ServiceId,
    state: Vec<f64>,
    action: Vec<f64>,
}

/// The FIRM resource-management framework.
#[derive(Debug)]
pub struct FirmManager {
    /// Configuration.
    pub config: FirmConfig,
    coordinator: TracingCoordinator,
    collector: TelemetryCollector,
    monitor: SloMonitor,
    extractor: CriticalComponentExtractor,
    estimator: ResourceEstimator,
    deployment: DeploymentModule,
    state_builder: StateBuilder,
    pending: Vec<Pending>,
    last_tick: SimTime,
    episode_reward: f64,
    stats: ManagerStats,
    last_telemetry: Option<TelemetryWindow>,
    experience: ExperienceLog,
    timers: StageTimers,
    /// Intra-scenario fan-out for the ingest/extract stages.
    pool: firm_par::ShardPool,
}

/// Cached handles into the process-wide `firm_obs` registry, resolved
/// once at construction so the per-tick hot path never takes the
/// registry lock. Purely observational: nothing here feeds back into
/// control decisions or recorded experience.
#[derive(Debug)]
struct StageTimers {
    ingest: std::sync::Arc<firm_obs::Histogram>,
    extract: std::sync::Arc<firm_obs::Histogram>,
    train: std::sync::Arc<firm_obs::Histogram>,
}

impl StageTimers {
    fn new() -> Self {
        let m = firm_obs::metrics();
        StageTimers {
            ingest: m.histogram("stage.ingest_us"),
            extract: m.histogram("stage.extract_us"),
            train: m.histogram("stage.train_us"),
        }
    }
}

impl FirmManager {
    /// Creates a manager.
    pub fn new(config: FirmConfig) -> Self {
        FirmManager {
            coordinator: TracingCoordinator::new(200_000),
            collector: TelemetryCollector::new(256),
            monitor: SloMonitor::default(),
            extractor: CriticalComponentExtractor::new(config.seed ^ 0x5111),
            estimator: ResourceEstimator::new(config.regime, config.seed),
            deployment: DeploymentModule::new(),
            state_builder: StateBuilder,
            pending: Vec::new(),
            last_tick: SimTime::ZERO,
            episode_reward: 0.0,
            stats: ManagerStats::default(),
            last_telemetry: None,
            experience: ExperienceLog::default(),
            timers: StageTimers::new(),
            pool: firm_par::ShardPool::new(config.intra_shards),
            config,
        }
    }

    /// Takes the experience recorded since the last drain (empty unless
    /// [`FirmConfig::record_experience`] is set). Fleet runtimes stream
    /// these logs to a central shared-agent trainer.
    pub fn drain_experience(&mut self) -> ExperienceLog {
        std::mem::take(&mut self.experience)
    }

    /// The telemetry window consumed by the most recent tick (the
    /// manager drains the simulator; observers read it from here).
    pub fn last_telemetry(&self) -> Option<&TelemetryWindow> {
        self.last_telemetry.as_ref()
    }

    /// Counters.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The tracing coordinator (read access).
    pub fn coordinator(&self) -> &TracingCoordinator {
        &self.coordinator
    }

    /// The Algorithm 2 extractor (read access).
    pub fn extractor(&self) -> &CriticalComponentExtractor {
        &self.extractor
    }

    /// The RL estimator (mutable access for checkpointing/transfer).
    pub fn estimator_mut(&mut self) -> &mut ResourceEstimator {
        &mut self.estimator
    }

    /// Exports the shared agent's `(actor, critic)` weights — the
    /// checkpoint used for transfer learning and Fig. 11(b) snapshots.
    pub fn shared_weights(&self) -> (Vec<f64>, Vec<f64>) {
        self.estimator.shared_agent().export_weights()
    }

    /// Reward accumulated since the last [`FirmManager::end_episode`].
    pub fn episode_reward(&self) -> f64 {
        self.episode_reward
    }

    /// Resets environment-coupled state (traces, pending transitions,
    /// window clock) when the manager is pointed at a *new* simulation —
    /// e.g. between training episodes. Learned state (SVM, RL weights,
    /// replay buffers) is preserved.
    pub fn reset_environment(&mut self) {
        self.coordinator = TracingCoordinator::new(200_000);
        self.collector = TelemetryCollector::new(256);
        self.pending.clear();
        self.last_tick = SimTime::ZERO;
    }

    /// Ends a training episode: flushes pending transitions as terminal,
    /// resets exploration noise, and returns the episode's total reward.
    pub fn end_episode(&mut self, telemetry: &TelemetryWindow, sv: f64) -> f64 {
        let snapshots = Self::snapshot_map(telemetry);
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            self.complete_transition(p, &snapshots, sv, 1.0, &[], true);
        }
        self.estimator.episode_reset();
        std::mem::take(&mut self.episode_reward)
    }

    fn snapshot_map(telemetry: &TelemetryWindow) -> BTreeMap<u32, &InstanceSnapshot> {
        telemetry
            .instances
            .iter()
            .map(|s| (s.instance.raw(), s))
            .collect()
    }

    /// One control tick. Call after advancing the simulation by
    /// [`FirmConfig::control_interval`]. Drains the simulator's traces
    /// and telemetry itself; harnesses that drain centrally (the
    /// [`crate::controller::run_episode`] driver) use
    /// [`FirmManager::tick_window`] instead.
    pub fn tick(&mut self, sim: &mut Simulation) -> SloAssessment {
        let completed = sim.drain_completed();
        let telemetry = sim.drain_telemetry();
        self.tick_window(sim, completed, telemetry)
    }

    /// One control tick over an already-drained window: the window's
    /// completed traces and telemetry snapshot are handed in by the
    /// caller (who may have measured them first).
    pub fn tick_window(
        &mut self,
        sim: &mut Simulation,
        completed: Vec<firm_sim::CompletedRequest>,
        telemetry: TelemetryWindow,
    ) -> SloAssessment {
        let window_start = self.last_tick;
        self.last_tick = sim.now();
        self.stats.ticks += 1;

        // ① Ingest traces and telemetry. Graph/critical-path builds fan
        // out over the shard pool; the merge is input-ordered, so the
        // store is byte-identical at any shard count.
        let ingest_started = std::time::Instant::now();
        self.coordinator.ingest_sharded(completed, &self.pool);
        self.collector.collect(&telemetry);
        self.timers
            .ingest
            .record(ingest_started.elapsed().as_micros() as u64);

        // ② Detect SLO violations.
        let assessment = self
            .monitor
            .assess(sim.app(), &self.coordinator, window_start);
        if assessment.any_violation() {
            self.stats.violation_ticks += 1;
        }
        let wc = self.collector.workload_change();
        let mix = telemetry.request_mix.clone();
        let snapshots = Self::snapshot_map(&telemetry);

        // ③ Complete pending transitions with this window's outcome.
        // Training time is the DDPG updates here plus the SVM updates in
        // ④ — disjoint regions, summed into one per-tick sample.
        let mut train_spent = std::time::Duration::ZERO;
        let train_started = std::time::Instant::now();
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            self.complete_transition(p, &snapshots, assessment.sv, wc, &mix, false);
        }
        train_spent += train_started.elapsed();

        // ④ Localize culprits (Alg. 2) when violating — or, in training
        // mode, on every tick so the SVM keeps learning.
        let should_extract = assessment.any_violation() || self.config.training;
        if should_extract {
            // The extractor consumes the coordinator's stored traces by
            // reference — the window is never copied out of the store.
            let extract_started = std::time::Instant::now();
            let features = if self.pool.is_sequential() {
                self.extractor
                    .features(self.coordinator.traces_since(window_start))
            } else {
                let window: Vec<&firm_trace::store::StoredTrace> =
                    self.coordinator.traces_since(window_start).collect();
                self.extractor.features_sharded(&window, &self.pool)
            };
            self.timers
                .extract
                .record(extract_started.elapsed().as_micros() as u64);

            if self.config.training {
                let svm_started = std::time::Instant::now();
                for f in &features {
                    // Traces can outlive instances (scale-in); skip stale
                    // references.
                    if f.instance.index() >= sim.instances().len() {
                        continue;
                    }
                    let cpu_util = snapshots
                        .get(&f.instance.raw())
                        .map(|s| s.utilization.get(firm_sim::ResourceKind::Cpu))
                        .unwrap_or(0.0);
                    let label = ground_truth_label(sim, f.instance, cpu_util, sim.now());
                    self.extractor.train(f, label);
                    if self.config.record_experience {
                        self.experience.svm_examples.push((*f, label));
                    }
                }
                train_spent += svm_started.elapsed();
            }

            let instance_count = sim.instances().len();
            let in_sim =
                move |f: &crate::extractor::InstanceFeatures| f.instance.index() < instance_count;

            if assessment.any_violation() {
                let candidates = if self.config.svm_filter {
                    self.extractor.candidates(&features)
                } else {
                    // Ablation: no level-1 filter — every CP instance is
                    // handed to the RL agent (highest CI first).
                    let mut all: Vec<_> = features.clone();
                    all.sort_by(|a, b| b.ci.total_cmp(&a.ci));
                    all
                };
                for cand in candidates
                    .into_iter()
                    .filter(in_sim)
                    .take(self.config.max_candidates)
                {
                    let Some(snap) = snapshots.get(&cand.instance.raw()) else {
                        continue;
                    };
                    // ⑤ RL action.
                    let state = self.state_builder.build(snap, assessment.sv, wc, &mix);
                    let action = if self.config.training && self.config.explore {
                        self.estimator.act_explore(cand.service, &state)
                    } else {
                        self.estimator.act(cand.service, &state)
                    };
                    let limits = self.estimator.mapper.to_limits(&action);
                    // ⑥ Validate + actuate, floored by live demand so a
                    // half-trained policy cannot choke a container. The
                    // CPU floor is *concurrency* (Little's law), not CPU
                    // work: workers block on downstream RPCs, so a
                    // thread-per-request service needs ≈ arrival rate ×
                    // mean latency worker slots regardless of CPU burn.
                    let mut floors = snap.usage;
                    let window_us = snap.window.as_micros().max(1) as f64;
                    let concurrency = snap.arrivals as f64 * snap.mean_latency_us / window_us;
                    floors.set(
                        firm_sim::ResourceKind::Cpu,
                        floors.get(firm_sim::ResourceKind::Cpu).max(concurrency),
                    );
                    let validated =
                        self.deployment
                            .execute(sim, cand.instance, &limits, Some(&floors));
                    self.stats.actions += 1;
                    let mut scaled_out = validated.scaled_out;
                    // §3.4: "if the amount of resource reaches the total
                    // available amount, then a scale-out operation is
                    // needed" — an action pinned at the top of its range
                    // is that request.
                    let wants_max = action.iter().any(|a| *a > 0.9);
                    if wants_max && !scaled_out && sim.replicas(cand.service).len() < 8 {
                        sim.apply(firm_sim::Command::ScaleOut {
                            service: cand.service,
                            warm: true,
                        });
                        scaled_out = true;
                    }
                    if scaled_out {
                        self.stats.scale_outs += 1;
                    }
                    self.pending.push(Pending {
                        instance: cand.instance,
                        service: cand.service,
                        state,
                        action,
                    });
                }
            }
        }

        // Bound memory: keep two minutes of traces.
        let horizon = SimDuration::from_secs(120);
        if sim.now() > SimTime::ZERO + horizon {
            let cutoff = SimTime::from_micros(sim.now().as_micros() - horizon.as_micros());
            self.coordinator.evict_before(cutoff);
        }
        self.last_telemetry = Some(telemetry);
        self.timers.train.record(train_spent.as_micros() as u64);
        assessment
    }

    fn complete_transition(
        &mut self,
        p: Pending,
        snapshots: &BTreeMap<u32, &InstanceSnapshot>,
        sv: f64,
        wc: f64,
        mix: &[f64],
        done: bool,
    ) {
        let Some(snap) = snapshots.get(&p.instance.raw()) else {
            return;
        };
        let mut utils = [0.0; 5];
        for kind in RESOURCE_KINDS {
            utils[kind.index()] = snap.utilization.get(kind);
        }
        let r = if self.config.slo_penalty {
            crate::estimator::reward_penalized(sv, &utils, self.config.alpha)
        } else {
            reward(sv, &utils, self.config.alpha)
        };
        self.episode_reward += r;
        let next_state = self.state_builder.build(snap, sv, wc, mix);
        let transition = Transition {
            state: p.state,
            action: p.action,
            reward: r,
            next_state,
            done,
        };
        if self.config.record_experience {
            self.experience
                .transitions
                .push((p.service, transition.clone()));
        }
        if self.config.training {
            self.estimator.learn(p.service, transition);
        }
        self.stats.transitions += 1;
    }
}

/// Convenience: run a FIRM-managed simulation for `duration`, ticking the
/// manager at its control interval.
pub fn run_managed(sim: &mut Simulation, manager: &mut FirmManager, duration: SimDuration) {
    let deadline = sim.now() + duration;
    while sim.now() < deadline {
        sim.run_for(manager.config.control_interval);
        manager.tick(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::{AppSpec, ClusterSpec};
    use firm_sim::{AnomalyKind, AnomalySpec, NodeId, PoissonArrivals};

    fn tight_app() -> AppSpec {
        let mut app = AppSpec::three_tier_demo();
        app.request_types[0].slo_latency_us = 5_000;
        app
    }

    #[test]
    fn healthy_loop_issues_no_actions() {
        let mut sim = Simulation::builder(ClusterSpec::small(2), tight_app(), 81)
            .arrivals(Box::new(PoissonArrivals::new(50.0)))
            .build();
        let mut mgr = FirmManager::new(FirmConfig::default());
        run_managed(&mut sim, &mut mgr, SimDuration::from_secs(5));
        let stats = mgr.stats();
        assert_eq!(stats.ticks, 5);
        assert_eq!(stats.actions, 0, "acted on a healthy system");
    }

    #[test]
    fn violation_triggers_localization_and_action() {
        let mut sim = Simulation::builder(ClusterSpec::small(2), tight_app(), 82)
            .arrivals(Box::new(PoissonArrivals::new(50.0)))
            .build();
        let mut mgr = FirmManager::new(FirmConfig {
            training: true,
            ..FirmConfig::default()
        });
        // Warm up, then stress node 0 hard.
        run_managed(&mut sim, &mut mgr, SimDuration::from_secs(3));
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            1.0,
            SimDuration::from_secs(15),
        ));
        sim.inject(AnomalySpec::new(
            AnomalyKind::NetworkDelay,
            NodeId(0),
            0.15,
            SimDuration::from_secs(15),
        ));
        run_managed(&mut sim, &mut mgr, SimDuration::from_secs(10));
        let stats = mgr.stats();
        assert!(stats.violation_ticks > 0, "no violations observed");
        assert!(stats.actions > 0, "no mitigation actions");
        assert!(stats.transitions > 0, "no completed transitions");
        assert!(mgr.extractor().trained_examples() > 0, "SVM untouched");
    }

    #[test]
    fn experience_tap_records_and_replays() {
        let mut sim = Simulation::builder(ClusterSpec::small(2), tight_app(), 85)
            .arrivals(Box::new(PoissonArrivals::new(50.0)))
            .build();
        let mut mgr = FirmManager::new(FirmConfig {
            training: true,
            record_experience: true,
            ..FirmConfig::default()
        });
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            1.0,
            SimDuration::from_secs(15),
        ));
        sim.inject(AnomalySpec::new(
            AnomalyKind::NetworkDelay,
            NodeId(0),
            0.15,
            SimDuration::from_secs(15),
        ));
        run_managed(&mut sim, &mut mgr, SimDuration::from_secs(10));
        let log = mgr.drain_experience();
        assert!(!log.transitions.is_empty(), "no transitions recorded");
        assert!(!log.svm_examples.is_empty(), "no SVM examples recorded");
        assert_eq!(log.transitions.len() as u64, mgr.stats().transitions);
        // A second drain is empty.
        assert!(mgr.drain_experience().is_empty());

        // Replaying the log into a fresh shared estimator is
        // deterministic: same log + seed → identical weights.
        use crate::estimator::{AgentRegime, ResourceEstimator};
        let train = |log: &ExperienceLog| {
            let mut est = ResourceEstimator::new(AgentRegime::Shared, 3);
            crate::training::replay_experience(&mut est, log, 32);
            est.shared_agent().export_weights()
        };
        assert_eq!(train(&log), train(&log));
    }

    /// The control loop's output — learned weights, counters, recorded
    /// experience — must not move when the ingest/extract stages fan
    /// out. Arrival rate is set high enough that windows cross the
    /// sharded paths' sequential-fallback thresholds.
    #[test]
    fn intra_sharded_control_loop_is_bit_identical() {
        let run = |shards: usize| {
            let mut sim = Simulation::builder(ClusterSpec::small(2), tight_app(), 86)
                .arrivals(Box::new(PoissonArrivals::new(120.0)))
                .build();
            let mut mgr = FirmManager::new(FirmConfig {
                training: true,
                record_experience: true,
                intra_shards: shards,
                ..FirmConfig::default()
            });
            sim.inject(AnomalySpec::new(
                AnomalyKind::MemBwStress,
                NodeId(0),
                1.0,
                SimDuration::from_secs(10),
            ));
            run_managed(&mut sim, &mut mgr, SimDuration::from_secs(8));
            (
                mgr.shared_weights(),
                format!("{:?}", mgr.stats()),
                mgr.drain_experience(),
            )
        };
        let base = run(1);
        assert!(!base.2.is_empty(), "run harvested no experience");
        for shards in [2, 4] {
            assert_eq!(base, run(shards), "intra_shards={shards} moved the output");
        }
    }

    #[test]
    fn episode_accounting_resets() {
        let mut sim = Simulation::builder(ClusterSpec::small(2), tight_app(), 83)
            .arrivals(Box::new(PoissonArrivals::new(50.0)))
            .build();
        let mut mgr = FirmManager::new(FirmConfig {
            training: true,
            ..FirmConfig::default()
        });
        sim.inject(AnomalySpec::new(
            AnomalyKind::CpuStress,
            NodeId(0),
            1.0,
            SimDuration::from_secs(10),
        ));
        sim.inject(AnomalySpec::new(
            AnomalyKind::NetworkDelay,
            NodeId(0),
            0.15,
            SimDuration::from_secs(10),
        ));
        run_managed(&mut sim, &mut mgr, SimDuration::from_secs(6));
        let telemetry = sim.drain_telemetry();
        let total = mgr.end_episode(&telemetry, 1.0);
        assert!(total != 0.0, "episode collected no reward");
        assert_eq!(mgr.episode_reward(), 0.0);
    }

    #[test]
    fn mitigation_restores_slo_under_contention() {
        // End-to-end sanity: with FIRM managing, tail latency under a
        // long memory-bandwidth anomaly ends up below the unmanaged tail.
        let run = |managed: bool| -> f64 {
            let mut sim = Simulation::builder(ClusterSpec::small(2), tight_app(), 84)
                .arrivals(Box::new(PoissonArrivals::new(50.0)))
                .build();
            let mut mgr = FirmManager::new(FirmConfig {
                training: true,
                seed: 11,
                ..FirmConfig::default()
            });
            sim.inject(AnomalySpec::new(
                AnomalyKind::MemBwStress,
                NodeId(0),
                0.97,
                SimDuration::from_secs(40),
            ));
            // Let the contention bite and the manager react, then
            // measure the tail over the final stretch.
            let mut lats = Vec::new();
            let mut measure_from = SimTime::ZERO;
            for tick in 0..40 {
                sim.run_for(SimDuration::from_secs(1));
                if tick == 20 {
                    measure_from = sim.now();
                }
                if managed {
                    mgr.tick(&mut sim);
                } else if tick >= 20 {
                    for r in sim.drain_completed() {
                        if !r.dropped {
                            lats.push(r.latency.as_micros() as f64);
                        }
                    }
                }
            }
            if managed {
                lats = mgr
                    .coordinator()
                    .latencies_since(measure_from, firm_sim::RequestTypeId(0));
            }
            lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            firm_sim::stats::sample_quantile(&lats, 0.95)
        };
        let unmanaged = run(false);
        let managed = run(true);
        assert!(
            managed < unmanaged,
            "managed p95 {managed} vs unmanaged {unmanaged}"
        );
    }
}
