//! Online RL training with anomaly injection — §4.3 of the paper.
//!
//! Training proceeds in episodes against a live simulation under an
//! injection campaign. As in the paper, early episodes are terminated
//! early (initial policies cannot mitigate, so little useful trace data
//! flows); episode length then grows to the full Table 4 horizon. Each
//! episode reports its total reward (the Fig. 11a learning curves) and,
//! periodically, the evaluated SLO-mitigation time of the current policy
//! (Fig. 11b).

use firm_sim::spec::{AppSpec, ClusterSpec};
use firm_sim::{PoissonArrivals, SimDuration, Simulation};

use crate::estimator::{AgentRegime, ResourceEstimator};
use crate::injector::{AnomalyInjector, CampaignConfig};
use crate::manager::{ExperienceLog, FirmConfig, FirmManager};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Number of episodes.
    pub episodes: usize,
    /// Full episode length in control ticks (Table 4 uses 300).
    pub max_steps: usize,
    /// Episodes over which the length ramps from `min_steps` to
    /// `max_steps` (the paper ramps over ~1000).
    pub ramp_episodes: usize,
    /// Initial (early-terminated) episode length.
    pub min_steps: usize,
    /// Control interval per step.
    pub control_interval: SimDuration,
    /// Agent regime to train.
    pub regime: AgentRegime,
    /// Arrival rate driving the app during training.
    pub arrival_rate: f64,
    /// Injection campaign.
    pub campaign: CampaignConfig,
    /// Cluster the training environment runs on.
    pub cluster: ClusterSpec,
    /// Base seed.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            episodes: 100,
            max_steps: 60,
            ramp_episodes: 30,
            min_steps: 10,
            control_interval: SimDuration::from_millis(500),
            regime: AgentRegime::Shared,
            arrival_rate: 60.0,
            campaign: CampaignConfig::default(),
            cluster: ClusterSpec::small(4),
            seed: 13,
        }
    }
}

impl TrainingConfig {
    /// Episode length at episode `i` (linear ramp).
    pub fn steps_at(&self, episode: usize) -> usize {
        if episode >= self.ramp_episodes {
            return self.max_steps;
        }
        let frac = episode as f64 / self.ramp_episodes.max(1) as f64;
        let steps = self.min_steps as f64 + frac * (self.max_steps - self.min_steps) as f64;
        steps.round() as usize
    }
}

/// Per-episode training statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeStats {
    /// Episode index.
    pub episode: usize,
    /// Total reward accumulated.
    pub total_reward: f64,
    /// Steps executed.
    pub steps: usize,
    /// Actions issued.
    pub actions: u64,
}

/// Trains a FIRM manager on `app`, returning the per-episode stats and
/// the trained manager.
pub fn train_firm(app: &AppSpec, config: &TrainingConfig) -> (Vec<EpisodeStats>, FirmManager) {
    let mut manager = FirmManager::new(FirmConfig {
        control_interval: config.control_interval,
        regime: config.regime,
        training: true,
        seed: config.seed,
        ..FirmConfig::default()
    });
    let stats = train_into(app, config, &mut manager);
    (stats, manager)
}

/// Trains an existing manager in place (used for transfer learning:
/// pass a manager whose estimator was seeded from a trained shared
/// agent).
pub fn train_into(
    app: &AppSpec,
    config: &TrainingConfig,
    manager: &mut FirmManager,
) -> Vec<EpisodeStats> {
    let mut all_stats = Vec::with_capacity(config.episodes);

    for episode in 0..config.episodes {
        // Fresh environment per episode, new seeds for variety.
        let seed = config.seed ^ ((episode as u64) << 24) ^ 0xE11A;
        let mut sim = Simulation::builder(config.cluster.clone(), app.clone(), seed)
            .arrivals(Box::new(PoissonArrivals::new(config.arrival_rate)))
            .build();
        let mut injector = AnomalyInjector::new(config.campaign.clone(), seed ^ 0xBEEF);
        manager.reset_environment();

        let actions_before = manager.stats().actions;
        let steps = config.steps_at(episode);
        for _ in 0..steps {
            injector.tick(&mut sim);
            sim.run_for(config.control_interval);
            manager.tick(&mut sim);
        }
        let telemetry = sim.drain_telemetry();
        let total_reward = manager.end_episode(&telemetry, 1.0);
        all_stats.push(EpisodeStats {
            episode,
            total_reward,
            steps,
            actions: manager.stats().actions - actions_before,
        });
    }
    all_stats
}

/// Trains a shared-regime estimator from pooled, already-collected
/// experience — the paper's §4.3 *one-for-all* regime fed offline.
///
/// Transitions are replayed into the shared agent's buffer in log
/// order, then `train_steps` minibatch updates run. Because the replay
/// order and the estimator's RNG stream are both deterministic, the
/// resulting weights depend only on `(log, estimator seed)` — which is
/// what lets a fleet runtime pool experience from worker threads and
/// still produce bit-identical trained agents at any thread count.
/// Returns the number of updates that actually trained.
pub fn replay_experience(
    estimator: &mut ResourceEstimator,
    log: &ExperienceLog,
    train_steps: usize,
) -> usize {
    for (service, t) in &log.transitions {
        estimator.observe(*service, t.clone());
    }
    estimator.train_shared(train_steps)
}

/// Seeded, deterministic replay priorities for a pooled experience log —
/// the weighting behind the fleet's *prioritized* one-for-all replay.
///
/// Each transition's weight is its violation severity (`1 + max(0, −r)`:
/// the §3.4 reward goes negative exactly when SLOs are violated and
/// resources sit idle, so the worst incidents — the rare anomaly
/// classes small tenants contribute — dominate the minibatches instead
/// of being drowned out by the bulk of healthy steps), plus a tiny
/// seed-derived jitter that decorrelates equal-severity ties without
/// ever consulting a clock. The result is a pure function of
/// `(log, seed)`: log order and the `firm_rng::mix64` stream are both
/// deterministic, so every worker count, thread count, and submission
/// schedule computes the same weights.
pub fn replay_priorities(log: &ExperienceLog, seed: u64) -> Vec<f64> {
    log.transitions
        .iter()
        .enumerate()
        .map(|(i, (_, t))| {
            let severity = (-t.reward).max(0.0);
            // 53 uniform bits in [0, 1), scaled to stay a tie-break.
            let jitter =
                (firm_rng::mix64(seed, i as u64) >> 11) as f64 / (1u64 << 53) as f64 * 1e-6;
            1.0 + severity + jitter
        })
        .collect()
}

/// [`replay_experience`] with seeded prioritized sampling: transitions
/// enter the shared agent's buffer in log order carrying
/// [`replay_priorities`] weights, so the `train_steps` minibatch
/// updates draw violation-heavy transitions proportionally more often.
/// Like the uniform variant, the trained weights are a pure function of
/// `(log, estimator seed, priority seed, train_steps)` — prioritization
/// changes *which* deterministic function, never introduces timing.
/// Returns the number of updates that actually trained.
pub fn replay_experience_prioritized(
    estimator: &mut ResourceEstimator,
    log: &ExperienceLog,
    train_steps: usize,
    priority_seed: u64,
) -> usize {
    let priorities = replay_priorities(log, priority_seed);
    for ((service, t), p) in log.transitions.iter().zip(&priorities) {
        estimator.observe_with_priority(*service, t.clone(), *p);
    }
    estimator.train_shared(train_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::AppSpec;

    fn tiny_config() -> TrainingConfig {
        TrainingConfig {
            episodes: 6,
            max_steps: 10,
            ramp_episodes: 3,
            min_steps: 3,
            control_interval: SimDuration::from_millis(500),
            arrival_rate: 50.0,
            campaign: CampaignConfig {
                lambda: 1.0,
                intensity: (0.8, 1.0),
                target_nodes: vec![firm_sim::NodeId(0), firm_sim::NodeId(1)],
                ..CampaignConfig::default()
            },
            ..TrainingConfig::default()
        }
    }

    fn tight_app() -> AppSpec {
        let mut app = AppSpec::three_tier_demo();
        app.request_types[0].slo_latency_us = 5_000;
        app
    }

    #[test]
    fn episode_length_ramps() {
        let cfg = tiny_config();
        assert_eq!(cfg.steps_at(0), 3);
        assert!(cfg.steps_at(1) > 3);
        assert_eq!(cfg.steps_at(3), 10);
        assert_eq!(cfg.steps_at(100), 10);
    }

    #[test]
    fn training_produces_episode_stats() {
        let (stats, manager) = train_firm(&tight_app(), &tiny_config());
        assert_eq!(stats.len(), 6);
        assert_eq!(stats[0].steps, 3);
        assert_eq!(stats[5].steps, 10);
        // The campaign guarantees violations; the manager must have acted
        // and the SVM must have been trained.
        assert!(manager.stats().actions > 0);
        assert!(manager.extractor().trained_examples() > 0);
    }

    #[test]
    fn prioritized_replay_is_seed_deterministic_and_severity_weighted() {
        use firm_ml::ddpg::Transition;
        use firm_sim::ServiceId;

        let mut log = ExperienceLog::default();
        for i in 0..160 {
            let s = vec![(i % 13) as f64 / 13.0; crate::estimator::STATE_DIM];
            log.transitions.push((
                ServiceId(i % 3),
                Transition {
                    state: s.clone(),
                    action: vec![0.1; crate::estimator::ACTION_DIM],
                    // Half the log is healthy (r=1), half violating.
                    reward: if i % 2 == 0 {
                        1.0
                    } else {
                        -(1.0 + (i % 5) as f64)
                    },
                    next_state: s,
                    done: i % 20 == 19,
                },
            ));
        }

        let p = replay_priorities(&log, 7);
        assert_eq!(p, replay_priorities(&log, 7), "priorities not stable");
        assert_ne!(p, replay_priorities(&log, 8), "seed does not enter");
        // Violating transitions outweigh healthy ones.
        assert!(p[1] > p[0] + 0.5, "severity did not raise the weight");
        assert!(p.iter().all(|&w| w.is_finite() && w >= 1.0));

        let train = |prioritized: bool| {
            let mut est = ResourceEstimator::new(AgentRegime::Shared, 99);
            let n = if prioritized {
                replay_experience_prioritized(&mut est, &log, 12, 7)
            } else {
                replay_experience(&mut est, &log, 12)
            };
            assert_eq!(n, 12);
            est.shared_agent().export_weights()
        };
        assert_eq!(
            train(true),
            train(true),
            "prioritized replay not deterministic"
        );
        assert_ne!(
            train(true),
            train(false),
            "prioritized replay sampled the same batches as uniform"
        );
    }

    #[test]
    fn transfer_training_continues_from_shared_weights() {
        let (_, teacher) = train_firm(&tight_app(), &tiny_config());
        let (actor, critic) = teacher.shared_weights();
        let mut student = FirmManager::new(FirmConfig {
            training: true,
            regime: AgentRegime::Transfer,
            seed: 99,
            ..FirmConfig::default()
        });
        student.estimator_mut().import_shared(&actor, &critic);
        let stats = train_into(&tight_app(), &tiny_config(), &mut student);
        assert_eq!(stats.len(), 6);
    }
}
