//! The Deployment Module (§3.5): action validation and execution.
//!
//! Every RL action is checked against the hosting node's remaining
//! capacity before actuation. Following the paper: "Each action on
//! scaling a specific type of resource is limited by the total available
//! amount of the resource on that physical machine. If the action leads
//! to oversubscribing a resource, then it is replaced by a scale-out
//! operation." CPU limits are additionally capped so they never exceed
//! what the worker-thread count can use (§3.4).

use firm_sim::contention::MAX_RESERVABLE_FRAC;
use firm_sim::{Command, InstanceId, ResourceKind, Simulation, RESOURCE_KINDS};

/// Outcome of validating one RL action.
#[derive(Debug, Clone, Default)]
pub struct ValidatedAction {
    /// Commands to apply (partition updates and/or a scale-out).
    pub commands: Vec<Command>,
    /// True if oversubscription forced a scale-out replacement.
    pub scaled_out: bool,
}

/// Validates and executes resource actions.
#[derive(Debug, Clone, Default)]
pub struct DeploymentModule {
    /// Count of actions replaced by scale-out.
    pub scale_out_replacements: u64,
    /// Count of partition commands issued.
    pub partitions_set: u64,
}

impl DeploymentModule {
    /// Creates a deployment module.
    pub fn new() -> Self {
        DeploymentModule::default()
    }

    /// Validates target limits for an instance against its node, per
    /// §3.5, producing the commands to actuate.
    ///
    /// `limits` are the RL-proposed absolute limits in canonical resource
    /// order; `usage` is the instance's latest measured usage-rate vector
    /// (if known), used as a throttling floor — an action may right-size
    /// an overprovisioned limit toward demand but never choke a container
    /// below 1.5x what it is actively consuming. A proposal that
    /// oversubscribes its node on any dimension is replaced by a warm
    /// scale-out of the service; in that case the remaining in-bound
    /// partition updates still apply.
    pub fn validate(
        &mut self,
        sim: &Simulation,
        instance: InstanceId,
        limits: &[f64; 5],
        usage: Option<&firm_sim::ResourceVec>,
    ) -> ValidatedAction {
        let inst = sim.instance(instance);
        let node = &sim.nodes()[inst.node.index()];
        let mut out = ValidatedAction::default();

        for kind in RESOURCE_KINDS {
            let mut target = limits[kind.index()];
            // Demand floor (LLC usage is a share, not a demand; skip it).
            if kind != ResourceKind::Llc {
                if let Some(u) = usage {
                    target = target.max(u.get(kind) * 1.5);
                }
            }
            let target = target;
            let capacity = node.capacity(kind);

            // The bottom of the action range means "no partition": a
            // reservation/throttle smaller than ~8% of the node would
            // cap the container below any useful rate (and a choked
            // container's measured usage can no longer raise the demand
            // floor), so the limit is released to best-effort instead.
            if kind != ResourceKind::Cpu && target < capacity * 0.08 {
                if inst.partition(kind).is_some() {
                    out.commands
                        .push(Command::ClearPartition { instance, kind });
                }
                continue;
            }

            // Peer commitment on this node for this resource.
            let peer_committed: f64 = node
                .instances
                .iter()
                .filter(|id| **id != instance)
                .map(|id| sim.instance(*id))
                .filter(|i| i.state != firm_sim::instance::InstanceState::Removed)
                .filter_map(|i| i.partition(kind))
                .sum();

            let headroom = match kind {
                // Reservations must fit in the reservable envelope.
                ResourceKind::MemBw | ResourceKind::Llc => {
                    capacity * MAX_RESERVABLE_FRAC - peer_committed
                }
                // Throttles oversubscribe only past full capacity.
                _ => capacity - peer_committed,
            };

            if target > headroom {
                // §3.5: oversubscription ⇒ scale-out instead.
                if !out.scaled_out {
                    out.commands.push(Command::ScaleOut {
                        service: inst.service,
                        warm: true,
                    });
                    out.scaled_out = true;
                    self.scale_out_replacements += 1;
                }
                continue;
            }

            let target = match kind {
                // A CPU limit beyond the thread cap cannot help (§3.4).
                ResourceKind::Cpu => target.min(inst.max_threads as f64).max(0.1),
                _ => target.max(capacity * 0.001),
            };

            // Skip no-op updates to avoid pointless actuation latency.
            let current = inst.partition(kind);
            let changed = match current {
                Some(c) => (c - target).abs() / c.max(1e-9) > 0.02,
                None => true,
            };
            if changed {
                out.commands.push(Command::SetPartition {
                    instance,
                    kind,
                    amount: target,
                });
                self.partitions_set += 1;
            }
        }
        out
    }

    /// Validates and immediately applies the resulting commands.
    pub fn execute(
        &mut self,
        sim: &mut Simulation,
        instance: InstanceId,
        limits: &[f64; 5],
        usage: Option<&firm_sim::ResourceVec>,
    ) -> ValidatedAction {
        let action = self.validate(sim, instance, limits, usage);
        for cmd in &action.commands {
            sim.apply(*cmd);
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::{AppSpec, ClusterSpec};
    use firm_sim::SimDuration;

    fn sim() -> Simulation {
        Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 51).build()
    }

    #[test]
    fn in_bound_limits_become_partitions() {
        let mut sim = sim();
        let mut dep = DeploymentModule::new();
        let action = dep.execute(
            &mut sim,
            InstanceId(0),
            &[3.0, 4_000.0, 8.0, 200.0, 200.0],
            None,
        );
        assert!(!action.scaled_out);
        assert_eq!(action.commands.len(), 5);
        sim.run_for(SimDuration::from_millis(200));
        let inst = sim.instance(InstanceId(0));
        assert_eq!(inst.partition(ResourceKind::Cpu), Some(3.0));
        assert_eq!(inst.partition(ResourceKind::MemBw), Some(4_000.0));
        assert_eq!(inst.partition(ResourceKind::Llc), Some(8.0));
    }

    #[test]
    fn oversubscription_replaced_by_scale_out() {
        let mut sim = sim();
        let mut dep = DeploymentModule::new();
        // Reserve most of node 0's memory bandwidth for instance 0...
        dep.execute(
            &mut sim,
            InstanceId(0),
            &[4.0, 20_000.0, 8.0, 200.0, 200.0],
            None,
        );
        sim.run_for(SimDuration::from_millis(200));
        // ... then ask for another 20 GB/s on a co-located instance
        // (instance 2 is on node 0 in the demo placement).
        let victim = InstanceId(2);
        assert_eq!(sim.instance(victim).node, sim.instance(InstanceId(0)).node);
        let action = dep.validate(&sim, victim, &[2.0, 20_000.0, 4.0, 100.0, 100.0], None);
        assert!(action.scaled_out);
        assert!(action
            .commands
            .iter()
            .any(|c| matches!(c, Command::ScaleOut { .. })));
        // The memory partition itself must NOT be among the commands.
        assert!(!action.commands.iter().any(|c| matches!(
            c,
            Command::SetPartition {
                kind: ResourceKind::MemBw,
                ..
            }
        )));
        assert_eq!(dep.scale_out_replacements, 1);
    }

    #[test]
    fn cpu_capped_by_thread_count() {
        let sim = sim();
        let mut dep = DeploymentModule::new();
        // The demo services allow up to 64 threads; ask for 400 cores on
        // a 48-core node: scale-out (oversubscription) path.
        let action = dep.validate(&sim, InstanceId(0), &[400.0, 500.0, 2.0, 50.0, 50.0], None);
        assert!(action.scaled_out);
        // Now a large-but-feasible CPU ask gets capped by max_threads…
        let action = dep.validate(&sim, InstanceId(0), &[40.0, 500.0, 2.0, 50.0, 50.0], None);
        let cpu_cmd = action
            .commands
            .iter()
            .find_map(|c| match c {
                Command::SetPartition {
                    kind: ResourceKind::Cpu,
                    amount,
                    ..
                } => Some(*amount),
                _ => None,
            })
            .expect("cpu command");
        assert!(cpu_cmd <= 64.0);
        assert_eq!(cpu_cmd, 40.0);
    }

    #[test]
    fn noop_updates_skipped() {
        let mut sim = sim();
        let mut dep = DeploymentModule::new();
        dep.execute(
            &mut sim,
            InstanceId(0),
            &[4.0, 4_000.0, 8.0, 200.0, 200.0],
            None,
        );
        sim.run_for(SimDuration::from_millis(200));
        // Re-proposing the same limits issues nothing.
        let action = dep.validate(
            &sim,
            InstanceId(0),
            &[4.0, 4_000.0, 8.0, 200.0, 200.0],
            None,
        );
        assert!(action.commands.is_empty());
    }
}
