//! Critical-component extraction — Algorithm 2 of the paper (§3.3).
//!
//! For every instance on a critical path in the control window, the
//! extractor computes two variability features:
//!
//! * **Relative importance (RI)** — the Pearson correlation between the
//!   instance's per-request latency `Ti` and the end-to-end CP latency
//!   `TCP` ("variance explained"): how much of the tail is *this*
//!   instance's doing.
//! * **Congestion intensity (CI)** — the instance's `T99/T50` latency
//!   ratio: how congested its request queue is, and therefore how much
//!   scaling can help.
//!
//! An incremental SVM over `(RI, ln CI)` produces the binary
//! candidate decision. During online training the injector's ground
//! truth labels each instance, mirroring §3.6; before the SVM has seen
//! enough examples, a conservative threshold heuristic stands in.

use firm_ml::svm::IncrementalSvm;
use firm_par::ShardPool;
use firm_sim::stats::{pearson, sample_quantile};
use firm_sim::{InstanceId, ServiceId, SimTime};
use firm_trace::store::StoredTrace;

/// Per-instance Algorithm 2 features over one control window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// The instance.
    pub instance: InstanceId,
    /// Its service.
    pub service: ServiceId,
    /// Relative importance: `PCC(Ti, TCP)` ∈ [−1, 1].
    pub ri: f64,
    /// Congestion intensity: `T99 / T50` ≥ 1.
    pub ci: f64,
    /// Number of CP appearances backing the features.
    pub samples: usize,
}

impl InstanceFeatures {
    /// The SVM input vector: `(RI, ln CI clamped to [0, 3])`.
    pub fn svm_input(&self) -> [f64; 2] {
        [self.ri, self.ci.max(1.0).ln().min(3.0)]
    }
}

/// Reusable per-instance accumulator for one feature window. The
/// sample vectors keep their capacity across windows, so a steady-state
/// extractor performs no allocation per window.
#[derive(Debug, Default)]
struct InstanceAcc {
    service: u16,
    /// `Ti` samples in trace order (the order [`pearson`] sums in).
    tis: Vec<f64>,
    /// `TCP` samples aligned with `tis`.
    tcps: Vec<f64>,
    /// `tis` maintained in ascending order by incremental sorted
    /// insertion — the quantile view, kept current instead of re-sorted
    /// from scratch every window.
    sorted: Vec<f64>,
}

/// Window-scoped scratch state for [`CriticalComponentExtractor::features`].
#[derive(Debug, Default)]
struct FeatureScratch {
    /// `instance raw id → slot index + 1` (0 = no slot yet).
    slot_of: Vec<u32>,
    /// Accumulator slots, allocated once per distinct instance ever seen.
    slots: Vec<InstanceAcc>,
    /// Instance ids touched this window (each exactly once).
    touched: Vec<u32>,
    /// Per-trace `(instance, max exclusive time)` pairs.
    per_trace: Vec<(u32, f64)>,
    /// Features emitted by the most recent sharded window (reused
    /// capacity; drained by the merge).
    out: Vec<InstanceFeatures>,
}

/// Cached `firm_obs` histogram handles for the sharded extract path,
/// grown lazily to the largest shard count seen. Purely observational.
#[derive(Debug, Default)]
struct ShardTimers {
    merge: Option<std::sync::Arc<firm_obs::Histogram>>,
    per_shard: Vec<std::sync::Arc<firm_obs::Histogram>>,
}

impl ShardTimers {
    fn ensure(&mut self, shards: usize) {
        if self.merge.is_none() {
            self.merge = Some(firm_obs::metrics().histogram("stage.shard_merge_us"));
        }
        while self.per_shard.len() < shards {
            let name = format!("stage.shard{}.tick_us", self.per_shard.len());
            self.per_shard.push(firm_obs::metrics().histogram(&name));
        }
    }
}

/// The Algorithm 2 extractor: features + incremental SVM.
#[derive(Debug)]
pub struct CriticalComponentExtractor {
    svm: IncrementalSvm,
    /// Examples the SVM must see before its decisions are trusted.
    bootstrap: u64,
    /// Minimum CP appearances for an instance to be classified.
    min_samples: usize,
    /// Heuristic thresholds used during bootstrap.
    heuristic_ci: f64,
    heuristic_ri: f64,
    /// Reused across windows; cleared (capacity retained) after each
    /// [`CriticalComponentExtractor::features`] call.
    scratch: FeatureScratch,
    /// Per-shard scratches for the sharded path, grown lazily to the
    /// largest shard count seen.
    shard_scratch: Vec<FeatureScratch>,
    timers: ShardTimers,
}

impl CriticalComponentExtractor {
    /// Creates an extractor with an untrained SVM.
    pub fn new(seed: u64) -> Self {
        CriticalComponentExtractor {
            svm: IncrementalSvm::firm_default(seed),
            bootstrap: 200,
            min_samples: 5,
            heuristic_ci: 2.0,
            heuristic_ri: 0.7,
            scratch: FeatureScratch::default(),
            shard_scratch: Vec::new(),
            timers: ShardTimers::default(),
        }
    }

    /// Labelled examples consumed so far.
    pub fn trained_examples(&self) -> u64 {
        self.svm.seen()
    }

    /// True once the SVM is past its bootstrap phase.
    pub fn svm_active(&self) -> bool {
        self.svm.seen() >= self.bootstrap
    }

    /// Computes Algorithm 2's features for every instance appearing on a
    /// critical path among `traces`.
    ///
    /// For each trace, an instance contributes its longest CP-span
    /// duration as one `Ti` sample aligned with the trace's end-to-end
    /// latency `TCP`.
    ///
    /// Accumulation runs on index-addressed scratch slots reused across
    /// windows (no per-window maps), and the per-instance latency
    /// vector for the `T99/T50` quantiles is maintained by incremental
    /// sorted insertion instead of a from-scratch sort. The output is
    /// bit-identical to the original map-and-sort formulation — per
    /// instance, samples arrive in the same trace order (so the Pearson
    /// sums fold identically) and the sorted view holds the same
    /// ascending values.
    pub fn features<'a>(
        &mut self,
        traces: impl IntoIterator<Item = &'a StoredTrace>,
    ) -> Vec<InstanceFeatures> {
        Self::accumulate(&mut self.scratch, traces, |_| true);
        Self::emit(&mut self.scratch);
        std::mem::take(&mut self.scratch.out)
    }

    /// [`CriticalComponentExtractor::features`] with the accumulation
    /// fanned out over `pool`'s shards.
    ///
    /// Sharding is by *instance ownership*, not by trace: every shard
    /// scans the full (read-only) trace window but accumulates only the
    /// instances it owns (`instance % shards == shard`). Each
    /// instance's sample vectors therefore see the same values in the
    /// same trace order as the sequential path — the Pearson and
    /// quantile folds are untouched — and the merge just concatenates
    /// the shards' disjoint outputs and sorts by instance id, restoring
    /// the sequential ascending-instance order. Bit-identical at any
    /// shard count, which `tests/fleet_determinism.rs` pins.
    ///
    /// Small windows fall back to the sequential path; the scan is
    /// cheap enough that fan-out only pays past a few dozen traces.
    pub fn features_sharded(
        &mut self,
        traces: &[&StoredTrace],
        pool: &ShardPool,
    ) -> Vec<InstanceFeatures> {
        /// Below this many traces the sequential scan wins.
        const MIN_PARALLEL: usize = 64;
        if pool.is_sequential() || traces.len() < MIN_PARALLEL {
            return self.features(traces.iter().copied());
        }
        let shards = pool.shards();
        if self.shard_scratch.len() < shards {
            self.shard_scratch
                .resize_with(shards, FeatureScratch::default);
        }
        self.timers.ensure(shards);
        let per_shard_timers = &self.timers.per_shard;
        pool.each_mut(&mut self.shard_scratch[..shards], |shard, scratch| {
            let started = std::time::Instant::now();
            Self::accumulate(scratch, traces.iter().copied(), |iid| {
                iid as usize % shards == shard
            });
            Self::emit(scratch);
            per_shard_timers[shard].record(started.elapsed().as_micros() as u64);
        });
        let merge_started = std::time::Instant::now();
        let total = self.shard_scratch[..shards]
            .iter()
            .map(|s| s.out.len())
            .sum();
        let mut out = Vec::with_capacity(total);
        for scratch in &mut self.shard_scratch[..shards] {
            out.append(&mut scratch.out);
        }
        // Instances are disjoint across shards, so the key is unique
        // and the unstable sort is deterministic.
        out.sort_unstable_by_key(|f| f.instance.raw());
        if let Some(merge) = &self.timers.merge {
            merge.record(merge_started.elapsed().as_micros() as u64);
        }
        out
    }

    /// The window accumulation pass over `traces`, restricted to
    /// instances selected by `owns`.
    fn accumulate<'a>(
        scratch: &mut FeatureScratch,
        traces: impl IntoIterator<Item = &'a StoredTrace>,
        owns: impl Fn(u32) -> bool,
    ) {
        debug_assert!(scratch.touched.is_empty(), "scratch not cleared");
        for trace in traces {
            if trace.dropped {
                continue;
            }
            let tcp = trace.latency.as_micros() as f64;
            // Largest *exclusive* time per instance on this trace's CP:
            // a parent span's duration contains its children's latency,
            // so full durations would make every ancestor of a culprit
            // correlate perfectly with TCP; exclusive time isolates each
            // instance's own contribution.
            scratch.per_trace.clear();
            for entry in &trace.cp.entries {
                let iid = entry.instance.raw();
                if !owns(iid) {
                    continue;
                }
                let d = entry.exclusive.as_micros() as f64;
                // A CP visits only a handful of instances; linear scan
                // beats any map here.
                match scratch.per_trace.iter_mut().find(|(i, _)| *i == iid) {
                    Some((_, max)) => {
                        if d > *max {
                            *max = d;
                        }
                    }
                    None => {
                        scratch.per_trace.push((iid, d));
                        let idx = iid as usize;
                        if scratch.slot_of.len() <= idx {
                            scratch.slot_of.resize(idx + 1, 0);
                        }
                        if scratch.slot_of[idx] == 0 {
                            scratch.slots.push(InstanceAcc::default());
                            scratch.slot_of[idx] = scratch.slots.len() as u32;
                        }
                        let slot = &mut scratch.slots[scratch.slot_of[idx] as usize - 1];
                        if slot.tis.is_empty() {
                            slot.service = entry.service.raw();
                            scratch.touched.push(iid);
                        }
                    }
                }
            }
            for &(iid, ti) in &scratch.per_trace {
                let slot = &mut scratch.slots[scratch.slot_of[iid as usize] as usize - 1];
                slot.tis.push(ti);
                slot.tcps.push(tcp);
                let at = slot
                    .sorted
                    .partition_point(|x| x.total_cmp(&ti) == std::cmp::Ordering::Less);
                slot.sorted.insert(at, ti);
            }
        }
    }

    /// Turns accumulated slots into [`InstanceFeatures`], written to
    /// `scratch.out` in ascending instance order (matching the
    /// ordered-map iteration of the original implementation), and
    /// clears the slots for the next window.
    fn emit(scratch: &mut FeatureScratch) {
        scratch.touched.sort_unstable();
        scratch.out.clear();
        scratch.out.reserve(scratch.touched.len());
        for &iid in &scratch.touched {
            let slot = &mut scratch.slots[scratch.slot_of[iid as usize] as usize - 1];
            let ri = pearson(&slot.tis, &slot.tcps);
            let p99 = sample_quantile(&slot.sorted, 0.99);
            let p50 = sample_quantile(&slot.sorted, 0.50);
            let ci = if p50 <= 0.0 {
                1.0
            } else {
                (p99 / p50).max(1.0)
            };
            scratch.out.push(InstanceFeatures {
                instance: InstanceId(iid),
                service: ServiceId(slot.service),
                ri,
                ci,
                samples: slot.tis.len(),
            });
            slot.tis.clear();
            slot.tcps.clear();
            slot.sorted.clear();
        }
        scratch.touched.clear();
    }

    /// Classifies features into SLO-violation candidates (Algorithm 2's
    /// `SVM.classify`), ordered by decreasing congestion intensity.
    pub fn candidates(&self, features: &[InstanceFeatures]) -> Vec<InstanceFeatures> {
        let mut out: Vec<InstanceFeatures> = features
            .iter()
            .filter(|f| f.samples >= self.min_samples)
            .filter(|f| self.classify(f))
            .copied()
            .collect();
        out.sort_by(|a, b| b.ci.total_cmp(&a.ci));
        out
    }

    /// Binary decision for one instance.
    pub fn classify(&self, f: &InstanceFeatures) -> bool {
        if self.svm_active() {
            self.svm.predict(&f.svm_input())
        } else {
            f.ci >= self.heuristic_ci || f.ri >= self.heuristic_ri
        }
    }

    /// Raw SVM decision value (for ROC sweeps, Fig. 9a).
    pub fn decision_value(&self, f: &InstanceFeatures) -> f64 {
        self.svm.decision(&f.svm_input())
    }

    /// Online training step from injector ground truth (§3.6).
    pub fn train(&mut self, f: &InstanceFeatures, is_culprit: bool) {
        self.svm.partial_fit(&f.svm_input(), is_culprit);
    }
}

/// Ground-truth labelling for online training (§3.6): an instance is a
/// culprit if a container-level anomaly targets *it*, if a node-level
/// resource/delay anomaly hits its node, or if a workload surge is
/// active and the instance's CPU is saturated.
pub fn ground_truth_label(
    sim: &firm_sim::Simulation,
    instance: InstanceId,
    cpu_utilization: f64,
    now: SimTime,
) -> bool {
    let node = sim.instance(instance).node;
    for (_, spec, started) in sim.active_anomalies() {
        if *started > now {
            continue;
        }
        match (spec.kind, spec.target_instance) {
            (firm_sim::AnomalyKind::WorkloadVariation, _) => {
                if cpu_utilization > 0.85 {
                    return true;
                }
            }
            // Container-level: only the targeted container is guilty.
            (_, Some(target)) => {
                if target == instance {
                    return true;
                }
            }
            // Node-level: every container on the node is a victim.
            (_, None) => {
                if spec.node == node {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::{AppSpec, ClusterSpec};
    use firm_sim::{AnomalyKind, AnomalySpec, NodeId, SimDuration, Simulation};
    use firm_trace::TracingCoordinator;

    fn window(sim: &mut Simulation, coord: &mut TracingCoordinator, secs: u64) -> Vec<StoredTrace> {
        let since = sim.now();
        sim.run_for(SimDuration::from_secs(secs));
        coord.ingest(sim.drain_completed());
        coord.traces_since(since).cloned().collect()
    }

    /// The original (pre-scratch) Algorithm 2 accumulation: ordered
    /// maps rebuilt per window, a from-scratch `partial_cmp` sort per
    /// instance. Kept as the reference for the golden equivalence test
    /// below — the optimized `features` must reproduce it bit for bit.
    fn reference_features<'a>(
        traces: impl IntoIterator<Item = &'a StoredTrace>,
    ) -> Vec<InstanceFeatures> {
        use std::collections::BTreeMap;
        let mut acc: BTreeMap<u32, (ServiceId, Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for trace in traces {
            if trace.dropped {
                continue;
            }
            let tcp = trace.latency.as_micros() as f64;
            let mut per_instance: BTreeMap<u32, f64> = BTreeMap::new();
            for entry in &trace.cp.entries {
                let d = entry.exclusive.as_micros() as f64;
                let slot = per_instance.entry(entry.instance.raw()).or_insert(0.0);
                if d > *slot {
                    *slot = d;
                }
                acc.entry(entry.instance.raw())
                    .or_insert_with(|| (entry.service, Vec::new(), Vec::new()));
            }
            for (iid, ti) in per_instance {
                let (_, tis, tcps) = acc.get_mut(&iid).expect("inserted above");
                tis.push(ti);
                tcps.push(tcp);
            }
        }
        acc.into_iter()
            .filter(|(_, (_, tis, _))| !tis.is_empty())
            .map(|(iid, (service, mut tis, tcps))| {
                let ri = firm_sim::stats::pearson(&tis, &tcps);
                tis.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
                let p99 = firm_sim::stats::sample_quantile(&tis, 0.99);
                let p50 = firm_sim::stats::sample_quantile(&tis, 0.50);
                let ci = if p50 <= 0.0 {
                    1.0
                } else {
                    (p99 / p50).max(1.0)
                };
                InstanceFeatures {
                    instance: InstanceId(iid),
                    service,
                    ri,
                    ci,
                    samples: tis.len(),
                }
            })
            .collect()
    }

    /// Golden-vector equivalence: on a recorded multi-window stream the
    /// scratch-based extractor must reproduce the original map-and-sort
    /// implementation exactly — same instances, same order, and
    /// bit-identical `RI`/`CI` floats. This is the contract that lets
    /// the fleet digest stay pinned across the perf refactor.
    #[test]
    fn features_match_reference_implementation_bit_for_bit() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 77).build();
        // Congest one instance so CI/RI cover a non-trivial range.
        sim.apply(firm_sim::Command::SetPartition {
            instance: InstanceId(1),
            kind: firm_sim::ResourceKind::Cpu,
            amount: 0.2,
        });
        let mut coord = TracingCoordinator::new(100_000);
        let mut ex = CriticalComponentExtractor::new(9);
        // Several windows through the *same* extractor: cross-window
        // scratch reuse must not leak samples between windows.
        for w in 0..4 {
            let traces = window(&mut sim, &mut coord, 1 + w % 2);
            let got = ex.features(traces.iter());
            let want = reference_features(traces.iter());
            assert_eq!(got.len(), want.len(), "window {w}: instance set differs");
            for (g, r) in got.iter().zip(&want) {
                assert_eq!(g.instance, r.instance, "window {w}: order differs");
                assert_eq!(g.service, r.service, "window {w}");
                assert_eq!(g.samples, r.samples, "window {w}");
                assert_eq!(
                    g.ri.to_bits(),
                    r.ri.to_bits(),
                    "window {w}: RI drifted for {:?} ({} vs {})",
                    g.instance,
                    g.ri,
                    r.ri
                );
                assert_eq!(
                    g.ci.to_bits(),
                    r.ci.to_bits(),
                    "window {w}: CI drifted for {:?} ({} vs {})",
                    g.instance,
                    g.ci,
                    r.ci
                );
            }
        }
    }

    /// The sharded fan-out must be invisible in the output: same
    /// instances, same order, bit-identical floats at every shard
    /// count — including counts far above the instance count, where
    /// some shards own nothing.
    #[test]
    fn sharded_features_are_bit_identical_to_sequential() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 78).build();
        sim.apply(firm_sim::Command::SetPartition {
            instance: InstanceId(1),
            kind: firm_sim::ResourceKind::Cpu,
            amount: 0.2,
        });
        let mut coord = TracingCoordinator::new(100_000);
        let traces = window(&mut sim, &mut coord, 3);
        assert!(traces.len() >= 64, "need enough traces to shard");
        let refs: Vec<&StoredTrace> = traces.iter().collect();

        let mut seq = CriticalComponentExtractor::new(4);
        let want = seq.features(traces.iter());
        for shards in [1, 2, 3, 4, 16] {
            let mut ex = CriticalComponentExtractor::new(4);
            let pool = firm_par::ShardPool::new(shards);
            let got = ex.features_sharded(&refs, &pool);
            assert_eq!(got.len(), want.len(), "shards={shards}");
            for (g, r) in got.iter().zip(&want) {
                assert_eq!(g.instance, r.instance, "shards={shards}");
                assert_eq!(g.service, r.service, "shards={shards}");
                assert_eq!(g.samples, r.samples, "shards={shards}");
                assert_eq!(g.ri.to_bits(), r.ri.to_bits(), "shards={shards}");
                assert_eq!(g.ci.to_bits(), r.ci.to_bits(), "shards={shards}");
            }
        }

        // Repeated windows through one sharded extractor: scratch reuse
        // must not leak samples between windows either.
        let mut ex = CriticalComponentExtractor::new(4);
        let pool = firm_par::ShardPool::new(2);
        let first = ex.features_sharded(&refs, &pool);
        let again = ex.features_sharded(&refs, &pool);
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.ri.to_bits(), b.ri.to_bits());
            assert_eq!(a.ci.to_bits(), b.ci.to_bits());
        }
    }

    #[test]
    fn features_cover_cp_instances() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 31).build();
        let mut coord = TracingCoordinator::new(100_000);
        let traces = window(&mut sim, &mut coord, 2);
        let mut ex = CriticalComponentExtractor::new(1);
        let feats = ex.features(traces.iter());
        assert!(feats.len() >= 3, "features for {} instances", feats.len());
        for f in &feats {
            assert!((-1.0..=1.0).contains(&f.ri), "ri {}", f.ri);
            assert!(f.ci >= 1.0, "ci {}", f.ci);
            assert!(f.samples > 0);
        }
        // The frontend (instance 0) is on every CP.
        assert!(feats.iter().any(|f| f.instance == InstanceId(0)));
    }

    #[test]
    fn congested_instance_has_higher_ci() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 32).build();
        let mut coord = TracingCoordinator::new(100_000);
        // Squeeze logic-a (instance 1) into *intermittent* congestion
        // (utilization ≈ 0.5): bursts queue up, the median stays low —
        // exactly the p99/p50 signature CI is built to expose. (Full
        // saturation would flatten the distribution instead.)
        sim.apply(firm_sim::Command::SetPartition {
            instance: InstanceId(1),
            kind: firm_sim::ResourceKind::Cpu,
            amount: 0.2,
        });
        sim.run_for(SimDuration::from_secs(1));
        sim.drain_completed();
        let traces = window(&mut sim, &mut coord, 3);
        let mut ex = CriticalComponentExtractor::new(1);
        let feats = ex.features(traces.iter());
        let victim = feats.iter().find(|f| f.instance == InstanceId(1));
        let victim = victim.expect("victim on CP");
        let others_max_ci = feats
            .iter()
            .filter(|f| f.instance != InstanceId(1))
            .map(|f| f.ci)
            .fold(1.0, f64::max);
        assert!(
            victim.ci > others_max_ci,
            "victim ci {} vs others {}",
            victim.ci,
            others_max_ci
        );
        assert!(victim.ri > 0.5, "victim ri {}", victim.ri);
    }

    #[test]
    fn bootstrap_heuristic_then_svm() {
        let mut ex = CriticalComponentExtractor::new(2);
        assert!(!ex.svm_active());
        let congested = InstanceFeatures {
            instance: InstanceId(1),
            service: ServiceId(1),
            ri: 0.9,
            ci: 5.0,
            samples: 50,
        };
        let calm = InstanceFeatures {
            instance: InstanceId(2),
            service: ServiceId(2),
            ri: 0.1,
            ci: 1.1,
            samples: 50,
        };
        // Heuristic phase.
        assert!(ex.classify(&congested));
        assert!(!ex.classify(&calm));
        // Train the SVM to the same decision boundary.
        for _ in 0..150 {
            ex.train(&congested, true);
            ex.train(&calm, false);
        }
        assert!(ex.svm_active());
        assert!(ex.classify(&congested));
        assert!(!ex.classify(&calm));
        let cands = ex.candidates(&[congested, calm]);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].instance, InstanceId(1));
    }

    #[test]
    fn min_samples_filters_noise() {
        let ex = CriticalComponentExtractor::new(3);
        let noisy = InstanceFeatures {
            instance: InstanceId(9),
            service: ServiceId(9),
            ri: 0.99,
            ci: 9.0,
            samples: 1,
        };
        assert!(ex.candidates(&[noisy]).is_empty());
    }

    #[test]
    fn ground_truth_labels_anomalous_node() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 33).build();
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            0.9,
            SimDuration::from_secs(10),
        ));
        sim.run_for(SimDuration::from_millis(100));
        // Instance 0 (frontend) is on node 0; logic-a (instance 1) on node 1.
        assert!(ground_truth_label(&sim, InstanceId(0), 0.2, sim.now()));
        assert!(!ground_truth_label(&sim, InstanceId(1), 0.2, sim.now()));
    }
}
