//! Critical-component extraction — Algorithm 2 of the paper (§3.3).
//!
//! For every instance on a critical path in the control window, the
//! extractor computes two variability features:
//!
//! * **Relative importance (RI)** — the Pearson correlation between the
//!   instance's per-request latency `Ti` and the end-to-end CP latency
//!   `TCP` ("variance explained"): how much of the tail is *this*
//!   instance's doing.
//! * **Congestion intensity (CI)** — the instance's `T99/T50` latency
//!   ratio: how congested its request queue is, and therefore how much
//!   scaling can help.
//!
//! An incremental SVM over `(RI, ln CI)` produces the binary
//! candidate decision. During online training the injector's ground
//! truth labels each instance, mirroring §3.6; before the SVM has seen
//! enough examples, a conservative threshold heuristic stands in.

use std::collections::BTreeMap;

use firm_ml::svm::IncrementalSvm;
use firm_sim::stats::{pearson, sample_quantile};
use firm_sim::{InstanceId, ServiceId, SimTime};
use firm_trace::store::StoredTrace;

/// Per-instance Algorithm 2 features over one control window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// The instance.
    pub instance: InstanceId,
    /// Its service.
    pub service: ServiceId,
    /// Relative importance: `PCC(Ti, TCP)` ∈ [−1, 1].
    pub ri: f64,
    /// Congestion intensity: `T99 / T50` ≥ 1.
    pub ci: f64,
    /// Number of CP appearances backing the features.
    pub samples: usize,
}

impl InstanceFeatures {
    /// The SVM input vector: `(RI, ln CI clamped to [0, 3])`.
    pub fn svm_input(&self) -> [f64; 2] {
        [self.ri, self.ci.max(1.0).ln().min(3.0)]
    }
}

/// The Algorithm 2 extractor: features + incremental SVM.
#[derive(Debug)]
pub struct CriticalComponentExtractor {
    svm: IncrementalSvm,
    /// Examples the SVM must see before its decisions are trusted.
    bootstrap: u64,
    /// Minimum CP appearances for an instance to be classified.
    min_samples: usize,
    /// Heuristic thresholds used during bootstrap.
    heuristic_ci: f64,
    heuristic_ri: f64,
}

impl CriticalComponentExtractor {
    /// Creates an extractor with an untrained SVM.
    pub fn new(seed: u64) -> Self {
        CriticalComponentExtractor {
            svm: IncrementalSvm::firm_default(seed),
            bootstrap: 200,
            min_samples: 5,
            heuristic_ci: 2.0,
            heuristic_ri: 0.7,
        }
    }

    /// Labelled examples consumed so far.
    pub fn trained_examples(&self) -> u64 {
        self.svm.seen()
    }

    /// True once the SVM is past its bootstrap phase.
    pub fn svm_active(&self) -> bool {
        self.svm.seen() >= self.bootstrap
    }

    /// Computes Algorithm 2's features for every instance appearing on a
    /// critical path among `traces`.
    ///
    /// For each trace, an instance contributes its longest CP-span
    /// duration as one `Ti` sample aligned with the trace's end-to-end
    /// latency `TCP`.
    pub fn features<'a>(
        &self,
        traces: impl IntoIterator<Item = &'a StoredTrace>,
    ) -> Vec<InstanceFeatures> {
        // instance → (service, Ti samples, TCP samples).
        let mut acc: BTreeMap<u32, (ServiceId, Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for trace in traces {
            if trace.dropped {
                continue;
            }
            let tcp = trace.latency.as_micros() as f64;
            // Largest *exclusive* time per instance on this trace's CP:
            // a parent span's duration contains its children's latency,
            // so full durations would make every ancestor of a culprit
            // correlate perfectly with TCP; exclusive time isolates each
            // instance's own contribution.
            let mut per_instance: BTreeMap<u32, f64> = BTreeMap::new();
            for entry in &trace.cp.entries {
                let d = entry.exclusive.as_micros() as f64;
                let slot = per_instance.entry(entry.instance.raw()).or_insert(0.0);
                if d > *slot {
                    *slot = d;
                }
                acc.entry(entry.instance.raw())
                    .or_insert_with(|| (entry.service, Vec::new(), Vec::new()));
            }
            for (iid, ti) in per_instance {
                let (_, tis, tcps) = acc.get_mut(&iid).expect("inserted above");
                tis.push(ti);
                tcps.push(tcp);
            }
        }

        acc.into_iter()
            .filter(|(_, (_, tis, _))| !tis.is_empty())
            .map(|(iid, (service, mut tis, tcps))| {
                let ri = pearson(&tis, &tcps);
                tis.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
                let p99 = sample_quantile(&tis, 0.99);
                let p50 = sample_quantile(&tis, 0.50);
                let ci = if p50 <= 0.0 {
                    1.0
                } else {
                    (p99 / p50).max(1.0)
                };
                InstanceFeatures {
                    instance: InstanceId(iid),
                    service,
                    ri,
                    ci,
                    samples: tis.len(),
                }
            })
            .collect()
    }

    /// Classifies features into SLO-violation candidates (Algorithm 2's
    /// `SVM.classify`), ordered by decreasing congestion intensity.
    pub fn candidates(&self, features: &[InstanceFeatures]) -> Vec<InstanceFeatures> {
        let mut out: Vec<InstanceFeatures> = features
            .iter()
            .filter(|f| f.samples >= self.min_samples)
            .filter(|f| self.classify(f))
            .copied()
            .collect();
        out.sort_by(|a, b| b.ci.partial_cmp(&a.ci).expect("ci is finite"));
        out
    }

    /// Binary decision for one instance.
    pub fn classify(&self, f: &InstanceFeatures) -> bool {
        if self.svm_active() {
            self.svm.predict(&f.svm_input())
        } else {
            f.ci >= self.heuristic_ci || f.ri >= self.heuristic_ri
        }
    }

    /// Raw SVM decision value (for ROC sweeps, Fig. 9a).
    pub fn decision_value(&self, f: &InstanceFeatures) -> f64 {
        self.svm.decision(&f.svm_input())
    }

    /// Online training step from injector ground truth (§3.6).
    pub fn train(&mut self, f: &InstanceFeatures, is_culprit: bool) {
        self.svm.partial_fit(&f.svm_input(), is_culprit);
    }
}

/// Ground-truth labelling for online training (§3.6): an instance is a
/// culprit if a container-level anomaly targets *it*, if a node-level
/// resource/delay anomaly hits its node, or if a workload surge is
/// active and the instance's CPU is saturated.
pub fn ground_truth_label(
    sim: &firm_sim::Simulation,
    instance: InstanceId,
    cpu_utilization: f64,
    now: SimTime,
) -> bool {
    let node = sim.instance(instance).node;
    for (_, spec, started) in sim.active_anomalies() {
        if *started > now {
            continue;
        }
        match (spec.kind, spec.target_instance) {
            (firm_sim::AnomalyKind::WorkloadVariation, _) => {
                if cpu_utilization > 0.85 {
                    return true;
                }
            }
            // Container-level: only the targeted container is guilty.
            (_, Some(target)) => {
                if target == instance {
                    return true;
                }
            }
            // Node-level: every container on the node is a victim.
            (_, None) => {
                if spec.node == node {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::spec::{AppSpec, ClusterSpec};
    use firm_sim::{AnomalyKind, AnomalySpec, NodeId, SimDuration, Simulation};
    use firm_trace::TracingCoordinator;

    fn window(sim: &mut Simulation, coord: &mut TracingCoordinator, secs: u64) -> Vec<StoredTrace> {
        let since = sim.now();
        sim.run_for(SimDuration::from_secs(secs));
        coord.ingest(sim.drain_completed());
        coord.traces_since(since).into_iter().cloned().collect()
    }

    #[test]
    fn features_cover_cp_instances() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 31).build();
        let mut coord = TracingCoordinator::new(100_000);
        let traces = window(&mut sim, &mut coord, 2);
        let ex = CriticalComponentExtractor::new(1);
        let feats = ex.features(traces.iter());
        assert!(feats.len() >= 3, "features for {} instances", feats.len());
        for f in &feats {
            assert!((-1.0..=1.0).contains(&f.ri), "ri {}", f.ri);
            assert!(f.ci >= 1.0, "ci {}", f.ci);
            assert!(f.samples > 0);
        }
        // The frontend (instance 0) is on every CP.
        assert!(feats.iter().any(|f| f.instance == InstanceId(0)));
    }

    #[test]
    fn congested_instance_has_higher_ci() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 32).build();
        let mut coord = TracingCoordinator::new(100_000);
        // Squeeze logic-a (instance 1) into *intermittent* congestion
        // (utilization ≈ 0.5): bursts queue up, the median stays low —
        // exactly the p99/p50 signature CI is built to expose. (Full
        // saturation would flatten the distribution instead.)
        sim.apply(firm_sim::Command::SetPartition {
            instance: InstanceId(1),
            kind: firm_sim::ResourceKind::Cpu,
            amount: 0.2,
        });
        sim.run_for(SimDuration::from_secs(1));
        sim.drain_completed();
        let traces = window(&mut sim, &mut coord, 3);
        let ex = CriticalComponentExtractor::new(1);
        let feats = ex.features(traces.iter());
        let victim = feats.iter().find(|f| f.instance == InstanceId(1));
        let victim = victim.expect("victim on CP");
        let others_max_ci = feats
            .iter()
            .filter(|f| f.instance != InstanceId(1))
            .map(|f| f.ci)
            .fold(1.0, f64::max);
        assert!(
            victim.ci > others_max_ci,
            "victim ci {} vs others {}",
            victim.ci,
            others_max_ci
        );
        assert!(victim.ri > 0.5, "victim ri {}", victim.ri);
    }

    #[test]
    fn bootstrap_heuristic_then_svm() {
        let mut ex = CriticalComponentExtractor::new(2);
        assert!(!ex.svm_active());
        let congested = InstanceFeatures {
            instance: InstanceId(1),
            service: ServiceId(1),
            ri: 0.9,
            ci: 5.0,
            samples: 50,
        };
        let calm = InstanceFeatures {
            instance: InstanceId(2),
            service: ServiceId(2),
            ri: 0.1,
            ci: 1.1,
            samples: 50,
        };
        // Heuristic phase.
        assert!(ex.classify(&congested));
        assert!(!ex.classify(&calm));
        // Train the SVM to the same decision boundary.
        for _ in 0..150 {
            ex.train(&congested, true);
            ex.train(&calm, false);
        }
        assert!(ex.svm_active());
        assert!(ex.classify(&congested));
        assert!(!ex.classify(&calm));
        let cands = ex.candidates(&[congested, calm]);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].instance, InstanceId(1));
    }

    #[test]
    fn min_samples_filters_noise() {
        let ex = CriticalComponentExtractor::new(3);
        let noisy = InstanceFeatures {
            instance: InstanceId(9),
            service: ServiceId(9),
            ri: 0.99,
            ci: 9.0,
            samples: 1,
        };
        assert!(ex.candidates(&[noisy]).is_empty());
    }

    #[test]
    fn ground_truth_labels_anomalous_node() {
        let mut sim =
            Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 33).build();
        sim.inject(AnomalySpec::new(
            AnomalyKind::MemBwStress,
            NodeId(0),
            0.9,
            SimDuration::from_secs(10),
        ));
        sim.run_for(SimDuration::from_millis(100));
        // Instance 0 (frontend) is on node 0; logic-a (instance 1) on node 1.
        assert!(ground_truth_label(&sim, InstanceId(0), 0.2, sim.now()));
        assert!(!ground_truth_label(&sim, InstanceId(1), 0.2, sim.now()));
    }
}
