//! The unified controller layer: one trait, one episode driver.
//!
//! Every resource manager in the workspace — [`FirmManager`], the
//! [`K8sHpaController`] and [`AimdController`] baselines, and the no-op
//! [`Unmanaged`] control group — implements the [`Controller`] trait,
//! and every harness (the single-scenario experiment runner, the fleet
//! executor, the examples) drives it through one [`run_episode`] loop.
//!
//! The driver owns the parts that used to be duplicated and drift:
//!
//! * **window measurement** — each control window's completed traces
//!   are drained from the simulator exactly once and measured before
//!   the controller sees them, so a trace finishing exactly on a tick
//!   boundary can never be counted in two windows;
//! * **warmup gating** — measurements start only after the warmup;
//! * **drop accounting** — a dropped request counts as a completion
//!   *and* an SLO violation, so load-shedding controllers never flatter
//!   their violation rate;
//! * **mitigation tracking** — the Fig. 11b injection-to-recovery
//!   accounting via [`MitigationTracker`];
//! * **the latency histogram and per-tick timeline** behind Fig. 10/1.
//!
//! Controllers export and import their learned policy through
//! [`PolicyCheckpoint`], which is what lets a fleet deploy a trained
//! shared agent back onto its catalog (the paper's round-trip claim).

use firm_sim::telemetry_probe::TelemetryWindow;
use firm_sim::{
    AnomalyId, CompletedRequest, Histogram, ResourceKind, SimDuration, SimTime, Simulation,
};

use crate::baselines::{AimdController, K8sHpaController};
use crate::injector::AnomalyInjector;
use crate::manager::{ExperienceLog, FirmManager};
use crate::slo::{window_violates, SloMonitor};

/// A frozen, serializable policy: the shared DDPG agent's
/// `(actor, critic)` weights. What a trained fleet exports and a
/// deployed controller imports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyCheckpoint {
    /// Flattened actor weights.
    pub actor: Vec<f64>,
    /// Flattened critic weights.
    pub critic: Vec<f64>,
}

impl PolicyCheckpoint {
    /// FNV-1a 64 over the weights' IEEE-754 bit patterns — a cheap
    /// fingerprint for bit-identity checks in tests and CI.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for w in self.actor.iter().chain(&self.critic) {
            for b in w.to_bits().to_le_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }
}

/// Everything one control tick hands a controller: the window's drained
/// traces and telemetry.
#[derive(Debug)]
pub struct TickContext {
    /// Start of the control window that just elapsed.
    pub window_start: SimTime,
    /// The control-loop period.
    pub control_interval: SimDuration,
    /// End-to-end requests completed in the window (drained exactly
    /// once; ownership passes to the controller).
    pub completed: Vec<CompletedRequest>,
    /// The window's telemetry snapshot.
    pub telemetry: TelemetryWindow,
}

impl TickContext {
    /// The shared tail-latency verdict over the window's drained
    /// traces, for controllers without their own assessment (FIRM's
    /// coordinator-based [`crate::slo::SloMonitor`] supersedes it).
    pub fn window_violates(&self, sim: &Simulation) -> bool {
        window_violates(sim.app(), &self.completed, SloMonitor::default().quantile)
    }
}

/// What a controller concluded about the window it just acted on.
#[derive(Debug, Clone, Copy)]
pub struct ControlDecision {
    /// Whether the controller considers the window SLO-violating (feeds
    /// the Fig. 11b mitigation accounting).
    pub violating: bool,
}

/// A resource manager under test: one tick per control window.
pub trait Controller {
    /// Report label ("FIRM", "K8S", "AIMD", "none").
    fn name(&self) -> &'static str;

    /// One control pass: observe the window, actuate on the simulation.
    fn tick(&mut self, sim: &mut Simulation, ctx: TickContext) -> ControlDecision;

    /// Takes the experience recorded since the last drain (empty for
    /// controllers that don't learn).
    fn drain_experience(&mut self) -> ExperienceLog {
        ExperienceLog::default()
    }

    /// The controller's current learned policy, if it has one.
    fn export_policy(&self) -> Option<PolicyCheckpoint> {
        None
    }

    /// Loads a frozen policy (no-op for policy-free controllers).
    fn import_policy(&mut self, _policy: &PolicyCheckpoint) {}
}

/// The control group: no management, static allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unmanaged;

impl Controller for Unmanaged {
    fn name(&self) -> &'static str {
        "none"
    }

    fn tick(&mut self, sim: &mut Simulation, ctx: TickContext) -> ControlDecision {
        ControlDecision {
            violating: ctx.window_violates(sim),
        }
    }
}

impl Controller for FirmManager {
    fn name(&self) -> &'static str {
        "FIRM"
    }

    fn tick(&mut self, sim: &mut Simulation, ctx: TickContext) -> ControlDecision {
        let assessment = self.tick_window(sim, ctx.completed, ctx.telemetry);
        ControlDecision {
            violating: assessment.any_violation(),
        }
    }

    fn drain_experience(&mut self) -> ExperienceLog {
        FirmManager::drain_experience(self)
    }

    fn export_policy(&self) -> Option<PolicyCheckpoint> {
        let (actor, critic) = self.shared_weights();
        Some(PolicyCheckpoint { actor, critic })
    }

    fn import_policy(&mut self, policy: &PolicyCheckpoint) {
        self.estimator_mut()
            .import_shared(&policy.actor, &policy.critic);
    }
}

impl Controller for K8sHpaController {
    fn name(&self) -> &'static str {
        "K8S"
    }

    fn tick(&mut self, sim: &mut Simulation, ctx: TickContext) -> ControlDecision {
        let violating = ctx.window_violates(sim);
        K8sHpaController::tick(self, sim, &ctx.telemetry);
        ControlDecision { violating }
    }
}

impl Controller for AimdController {
    fn name(&self) -> &'static str {
        "AIMD"
    }

    fn tick(&mut self, sim: &mut Simulation, ctx: TickContext) -> ControlDecision {
        let violating = ctx.window_violates(sim);
        self.ingest(ctx.completed);
        AimdController::tick(self, sim, &ctx.telemetry, ctx.window_start);
        ControlDecision { violating }
    }
}

/// One point of the per-tick timeline (Fig. 1 / Fig. 10 series).
#[derive(Debug, Clone, Copy)]
pub struct TimelinePoint {
    /// Tick end time.
    pub at: SimTime,
    /// p99 end-to-end latency in the tick window (us), 0 if no traffic.
    pub p99_us: f64,
    /// Mean end-to-end latency in the window (us).
    pub mean_us: f64,
    /// Sum of requested CPU limits (cores).
    pub requested_cpu: f64,
    /// Cluster-average CPU utilization of running instances.
    pub cpu_utilization: f64,
    /// Mean per-core DRAM access of instance 0's node (Fig. 1 series).
    pub per_core_dram: f64,
    /// Drops in the window.
    pub drops: u64,
}

/// Tracks SLO-mitigation times across control ticks: for each anomaly
/// that coincides with a violation, the time from the first violating
/// window to the first violation-free window while the anomaly is still
/// active (Fig. 11b's metric). Anomalies that end unresolved count
/// their full violation span.
#[derive(Debug, Default)]
pub struct MitigationTracker {
    /// anomaly id → (violation first seen, resolved).
    open: Vec<(AnomalyId, SimTime, bool)>,
    times: Vec<SimDuration>,
}

impl MitigationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MitigationTracker::default()
    }

    /// Mitigation times measured so far.
    pub fn times(&self) -> &[SimDuration] {
        &self.times
    }

    /// Consumes the tracker, yielding the measured times.
    pub fn into_times(self) -> Vec<SimDuration> {
        self.times
    }

    /// Observes one tick: which anomalies are active and whether the SLO
    /// held in this window.
    pub fn observe(
        &mut self,
        active: &[AnomalyId],
        violating: bool,
        now: SimTime,
        tick: SimDuration,
    ) {
        // Open trackers for new anomalies that coincide with violations.
        for id in active {
            if violating && !self.open.iter().any(|(a, _, _)| a == id) {
                self.open.push((*id, now, false));
            }
        }
        // A violation-free window while the anomaly is still active means
        // the manager mitigated it.
        if !violating {
            for (_, started, resolved) in &mut self.open {
                if !*resolved {
                    *resolved = true;
                    self.times.push((now - *started).saturating_sub(tick));
                }
            }
        }
        // Anomalies that ended unresolved count their full violation span.
        let still_active = |id: &AnomalyId| active.contains(id);
        let mut keep = Vec::new();
        for (id, started, resolved) in self.open.drain(..) {
            if still_active(&id) {
                keep.push((id, started, resolved));
            } else if !resolved {
                self.times.push(now - started);
            }
        }
        self.open = keep;
    }
}

/// Episode timing: how long to run, how often to tick, when to start
/// measuring.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeSpec {
    /// Episode length.
    pub duration: SimDuration,
    /// Control-loop period (and measurement window).
    pub control_interval: SimDuration,
    /// Measurements start after this warmup.
    pub warmup: SimDuration,
}

/// Everything one episode measured.
#[derive(Debug)]
pub struct EpisodeResult {
    /// Control ticks executed.
    pub ticks: u64,
    /// End-to-end latency histogram (us), post-warmup, non-dropped.
    pub latency: Histogram,
    /// Sum of recorded latencies, us (for exact means).
    pub latency_sum_us: u128,
    /// Per-tick timeline.
    pub timeline: Vec<TimelinePoint>,
    /// Requests finished post-warmup — served *or* dropped.
    pub completions: u64,
    /// Requests dropped post-warmup.
    pub drops: u64,
    /// SLO violations post-warmup (drops included).
    pub slo_violations: u64,
    /// Mean requested CPU limit over the measured window (cores).
    pub mean_requested_cpu: f64,
    /// Per-anomaly mitigation times (Fig. 11b).
    pub mitigation_times: Vec<SimDuration>,
}

impl EpisodeResult {
    /// SLO violation rate among completed requests.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }

    /// Mean end-to-end latency of served (non-dropped) requests, us.
    pub fn mean_latency_us(&self) -> f64 {
        let ok = self.completions.saturating_sub(self.drops);
        if ok == 0 {
            0.0
        } else {
            self.latency_sum_us as f64 / ok as f64
        }
    }

    /// Mean mitigation time in seconds (0 if no anomalies fired).
    pub fn mean_mitigation_secs(&self) -> f64 {
        if self.mitigation_times.is_empty() {
            return 0.0;
        }
        self.mitigation_times
            .iter()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / self.mitigation_times.len() as f64
    }
}

/// Drives one episode: the single tick/measurement/mitigation loop the
/// whole workspace shares. The caller keeps ownership of the
/// simulation, the controller, and the injector, so it can read
/// whatever else it needs afterwards (run stats, arrival logs,
/// injection history, harvested experience).
pub fn run_episode(
    sim: &mut Simulation,
    controller: &mut dyn Controller,
    mut injector: Option<&mut AnomalyInjector>,
    spec: &EpisodeSpec,
) -> EpisodeResult {
    let app = sim.app().clone();

    let mut latency = Histogram::new();
    let mut timeline = Vec::new();
    let mut tracker = MitigationTracker::new();
    let mut ticks = 0u64;
    let mut completions = 0u64;
    let mut drops = 0u64;
    let mut slo_violations = 0u64;
    let mut latency_sum_us = 0u128;
    let mut cpu_sum = 0.0;
    let mut cpu_n = 0u64;

    let end = sim.now() + spec.duration;
    let warm_until = sim.now() + spec.warmup;

    let stage_sim = firm_obs::metrics().histogram("stage.sim_us");
    while sim.now() < end {
        let window_start = sim.now();
        if let Some(inj) = injector.as_deref_mut() {
            inj.tick(sim);
        }
        let sim_started = std::time::Instant::now();
        sim.run_for(spec.control_interval);
        stage_sim.record(sim_started.elapsed().as_micros() as u64);
        ticks += 1;
        let measuring = sim.now() > warm_until;

        // The single measurement pass. Completed traces are *drained*
        // (each appears in exactly one window), which is what makes a
        // trace finishing exactly on a tick boundary count once — the
        // bug the old per-harness loops fixed independently or not at
        // all.
        let completed = sim.drain_completed();
        let telemetry = sim.drain_telemetry();

        let mut lats: Vec<f64> = Vec::new();
        let mut window_drops = 0u64;
        for r in &completed {
            if r.dropped {
                window_drops += 1;
                if measuring {
                    drops += 1;
                    completions += 1;
                    // A dropped request failed its SLO by definition;
                    // counting it keeps shedding controllers comparable
                    // to slow ones.
                    slo_violations += 1;
                }
            } else {
                let us = r.latency.as_micros();
                lats.push(us as f64);
                if measuring {
                    latency.record(us);
                    latency_sum_us += us as u128;
                    completions += 1;
                    if us > app.request_types[r.request_type.index()].slo_latency_us {
                        slo_violations += 1;
                    }
                }
            }
        }
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let window_p99 = firm_sim::stats::sample_quantile(&lats, 0.99);
        let window_mean = if lats.is_empty() {
            0.0
        } else {
            lats.iter().sum::<f64>() / lats.len() as f64
        };

        // Timeline inputs that come from the window's telemetry, read
        // before ownership moves into the tick.
        let cpu_util = {
            let running: Vec<_> = telemetry
                .instances
                .iter()
                .filter(|i| i.state == firm_sim::instance::InstanceState::Running)
                .collect();
            if running.is_empty() {
                0.0
            } else {
                running
                    .iter()
                    .map(|i| i.utilization.get(ResourceKind::Cpu))
                    .sum::<f64>()
                    / running.len() as f64
            }
        };
        let per_core_dram = telemetry
            .instances
            .first()
            .map(|i| i.per_core_dram_mbps)
            .unwrap_or(0.0);

        let decision = controller.tick(
            sim,
            TickContext {
                window_start,
                control_interval: spec.control_interval,
                completed,
                telemetry,
            },
        );

        // Requested CPU reflects the controller's actions this tick.
        let requested_cpu = sim.total_requested_cpu();
        if measuring {
            cpu_sum += requested_cpu;
            cpu_n += 1;
        }
        timeline.push(TimelinePoint {
            at: sim.now(),
            p99_us: window_p99,
            mean_us: window_mean,
            requested_cpu,
            cpu_utilization: cpu_util,
            per_core_dram,
            drops: window_drops,
        });

        // Mitigation accounting.
        let active: Vec<AnomalyId> = sim
            .active_anomalies()
            .iter()
            .filter(|(_, _, at)| *at <= sim.now())
            .map(|(id, _, _)| *id)
            .collect();
        tracker.observe(
            &active,
            decision.violating,
            sim.now(),
            spec.control_interval,
        );
    }

    EpisodeResult {
        ticks,
        latency,
        latency_sum_us,
        timeline,
        completions,
        drops,
        slo_violations,
        mean_requested_cpu: if cpu_n == 0 {
            0.0
        } else {
            cpu_sum / cpu_n as f64
        },
        mitigation_times: tracker.into_times(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{AimdConfig, K8sConfig};
    use crate::manager::FirmConfig;
    use firm_sim::spec::{AppSpec, ClusterSpec};
    use firm_sim::PoissonArrivals;

    fn tight_sim(seed: u64) -> Simulation {
        let mut app = AppSpec::three_tier_demo();
        app.request_types[0].slo_latency_us = 10_000;
        Simulation::builder(ClusterSpec::small(2), app, seed)
            .arrivals(Box::new(PoissonArrivals::new(60.0)))
            .build()
    }

    fn no_warmup_spec(secs: u64) -> EpisodeSpec {
        EpisodeSpec {
            duration: SimDuration::from_secs(secs),
            control_interval: SimDuration::from_secs(1),
            warmup: SimDuration::ZERO,
        }
    }

    /// Regression pin for the window-boundary double-count: with zero
    /// warmup, everything the simulator finalized must be measured
    /// exactly once, for every controller — including FIRM, whose old
    /// coordinator-side measurement loop counted a trace finishing
    /// exactly on a tick boundary in two windows until each harness
    /// patched it by hand.
    #[test]
    fn window_boundary_traces_are_counted_exactly_once() {
        let controllers: Vec<Box<dyn Controller>> = vec![
            Box::new(Unmanaged),
            Box::new(FirmManager::new(FirmConfig {
                training: true,
                ..FirmConfig::default()
            })),
            Box::new(K8sHpaController::new(K8sConfig::default(), 5)),
            Box::new(AimdController::new(AimdConfig::default())),
        ];
        for mut ctl in controllers {
            let mut sim = tight_sim(31);
            let result = run_episode(&mut sim, ctl.as_mut(), None, &no_warmup_spec(12));
            let stats = sim.stats();
            assert_eq!(
                result.completions,
                stats.completions,
                "{}: measured {} but the sim finalized {}",
                ctl.name(),
                result.completions,
                stats.completions
            );
            assert_eq!(
                result.drops,
                stats.drops,
                "{}: drop count drifted",
                ctl.name()
            );
            assert!(
                result.completions > 300,
                "{}: too little traffic",
                ctl.name()
            );
        }
    }

    #[test]
    fn unmanaged_episode_measures_and_tracks_timeline() {
        let mut sim = tight_sim(32);
        let mut ctl = Unmanaged;
        let result = run_episode(&mut sim, &mut ctl, None, &no_warmup_spec(8));
        assert_eq!(result.ticks, 8);
        assert_eq!(result.timeline.len(), 8);
        assert!(result.mean_requested_cpu > 0.0);
        assert!(result.latency.count() > 0);
        assert!(result.violation_rate() <= 1.0);
    }

    #[test]
    fn warmup_gates_measurement_but_not_the_timeline() {
        let mut sim = tight_sim(33);
        let mut ctl = Unmanaged;
        let spec = EpisodeSpec {
            duration: SimDuration::from_secs(6),
            control_interval: SimDuration::from_secs(1),
            warmup: SimDuration::from_secs(3),
        };
        let result = run_episode(&mut sim, &mut ctl, None, &spec);
        assert_eq!(result.timeline.len(), 6);
        // Only the post-warmup half was measured.
        assert!(result.completions < sim.stats().completions);
    }

    #[test]
    fn firm_policy_checkpoint_round_trips() {
        let trained = FirmManager::new(FirmConfig {
            training: true,
            seed: 5,
            ..FirmConfig::default()
        });
        let policy = Controller::export_policy(&trained).expect("FIRM has a policy");
        assert!(!policy.actor.is_empty() && !policy.critic.is_empty());

        let mut fresh = FirmManager::new(FirmConfig {
            seed: 99,
            ..FirmConfig::default()
        });
        let before = Controller::export_policy(&fresh).expect("policy");
        assert_ne!(before.digest(), policy.digest(), "seeds collide");
        fresh.import_policy(&policy);
        let after = Controller::export_policy(&fresh).expect("policy");
        assert_eq!(after, policy);
        assert_eq!(after.digest(), policy.digest());
    }

    #[test]
    fn policy_free_controllers_export_nothing() {
        assert!(Controller::export_policy(&Unmanaged).is_none());
        let hpa = K8sHpaController::new(K8sConfig::default(), 3);
        assert!(Controller::export_policy(&hpa).is_none());
        let mut aimd = AimdController::new(AimdConfig::default());
        assert!(Controller::export_policy(&aimd).is_none());
        // Importing into a policy-free controller is a harmless no-op.
        aimd.import_policy(&PolicyCheckpoint::default());
        assert!(Controller::drain_experience(&mut aimd).is_empty());
    }
}
