//! Micro-benchmarks for the FIRM reproduction's hot paths:
//!
//! * `critical_path` — Algorithm 1 extraction vs graph size;
//! * `svm` — incremental SVM `partial_fit` / `predict` (§3.3);
//! * `ddpg` — actor inference and one training update (§3.4 reports
//!   0.21 ± 0.1 ms per update and 40.5 ± 4 ms per inference step, the
//!   latter dominated by data collection in their deployment);
//! * `simulator` — discrete-event throughput on Social Network;
//! * `extractor` — Algorithm 2 feature computation over a window.
//!
//! The container image carries no external crates, so this is a plain
//! `harness = false` bench: each case is timed over a fixed iteration
//! budget with `std::time::Instant` and reported as ns/iter. Run with
//! `cargo bench -p firm-bench`.

use std::time::Instant;

use firm_core::estimator::{ACTION_DIM, ACTOR_STATE_DIM, STATE_DIM};
use firm_core::extractor::CriticalComponentExtractor;
use firm_ml::ddpg::{DdpgAgent, DdpgConfig, Transition};
use firm_ml::svm::IncrementalSvm;
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration, Simulation};
use firm_trace::critical_path::critical_path;
use firm_trace::graph::ExecutionHistoryGraph;
use firm_trace::TracingCoordinator;
use firm_workload::apps::Benchmark;

/// Times `f` over `iters` iterations and prints a ns/iter line. The
/// closure returns a value that is folded into a black-box accumulator
/// so the optimizer cannot elide the work.
fn bench<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {per_iter:>14.1} ns/iter   ({iters} iters)");
}

fn social_traces(seconds: u64) -> Vec<firm_sim::CompletedRequest> {
    let app = Benchmark::SocialNetwork.build();
    let mut sim = Simulation::builder(ClusterSpec::small(4), app, 3)
        .arrivals(Box::new(PoissonArrivals::new(200.0)))
        .build();
    sim.run_for(SimDuration::from_secs(seconds));
    sim.drain_completed()
}

fn bench_critical_path() {
    let traces = social_traces(2);
    // Pick traces of distinct span counts (one per size bucket).
    let mut seen = std::collections::BTreeSet::new();
    for &target in &[5usize, 10, 15] {
        let Some(t) = traces
            .iter()
            .filter(|t| t.spans.len() >= target)
            .min_by_key(|t| t.spans.len())
        else {
            continue;
        };
        if !seen.insert(t.spans.len()) {
            continue;
        }
        let graph = ExecutionHistoryGraph::build(t.clone()).expect("valid trace");
        bench(
            &format!("critical_path/alg1_extract/{}", graph.len()),
            10_000,
            || critical_path(&graph),
        );
    }
}

fn bench_svm() {
    let mut svm = IncrementalSvm::firm_default(1);
    for i in 0..500 {
        svm.partial_fit(&[0.5, (i % 7) as f64 / 7.0], i % 5 == 0);
    }
    bench("svm/partial_fit", 100_000, || {
        svm.partial_fit(&[0.62, 0.8], true)
    });
    bench("svm/predict", 100_000, || svm.predict(&[0.62, 0.8]));
}

fn bench_ddpg() {
    let mut agent = DdpgAgent::new(DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM), 7);
    let state = vec![0.4; STATE_DIM];
    for i in 0..256 {
        agent.observe(Transition {
            state: state.clone(),
            action: vec![0.1; ACTION_DIM],
            reward: (i % 10) as f64 / 10.0,
            next_state: state.clone(),
            done: i % 50 == 0,
        });
    }
    bench("ddpg/inference", 10_000, || agent.act(&state));
    bench("ddpg/train_step", 1_000, || agent.train_step());
}

fn bench_simulator() {
    bench("simulator/social_network_1s_at_200rps", 20, || {
        let mut sim =
            Simulation::builder(ClusterSpec::small(4), Benchmark::SocialNetwork.build(), 11)
                .arrivals(Box::new(PoissonArrivals::new(200.0)))
                .build();
        sim.run_for(SimDuration::from_secs(1));
        sim.stats().completions
    });
}

fn bench_extractor() {
    let traces = social_traces(2);
    let mut coord = TracingCoordinator::new(100_000);
    coord.ingest(traces);
    let stored: Vec<_> = coord
        .traces_since(firm_sim::SimTime::ZERO)
        .cloned()
        .collect();
    let mut extractor = CriticalComponentExtractor::new(5);
    bench("extractor/alg2_features_400_traces", 100, || {
        extractor.features(stored.iter().take(400))
    });
}

fn main() {
    println!("firm micro-benchmarks (plain harness, ns/iter)");
    println!("{}", "-".repeat(74));
    bench_critical_path();
    bench_svm();
    bench_ddpg();
    bench_simulator();
    bench_extractor();
}
