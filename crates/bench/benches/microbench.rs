//! Criterion micro-benchmarks for the FIRM reproduction's hot paths:
//!
//! * `critical_path` — Algorithm 1 extraction vs graph size;
//! * `svm` — incremental SVM `partial_fit` / `predict` (§3.3);
//! * `ddpg` — actor inference and one training update (§3.4 reports
//!   0.21 ± 0.1 ms per update and 40.5 ± 4 ms per inference step, the
//!   latter dominated by data collection in their deployment);
//! * `simulator` — discrete-event throughput on Social Network;
//! * `extractor` — Algorithm 2 feature computation over a window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use firm_core::estimator::{ACTION_DIM, ACTOR_STATE_DIM, STATE_DIM};
use firm_core::extractor::CriticalComponentExtractor;
use firm_ml::ddpg::{DdpgAgent, DdpgConfig, Transition};
use firm_ml::svm::IncrementalSvm;
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration, Simulation};
use firm_trace::critical_path::critical_path;
use firm_trace::graph::ExecutionHistoryGraph;
use firm_trace::TracingCoordinator;
use firm_workload::apps::Benchmark;

fn social_traces(seconds: u64) -> Vec<firm_sim::CompletedRequest> {
    let app = Benchmark::SocialNetwork.build();
    let mut sim = Simulation::builder(ClusterSpec::small(4), app, 3)
        .arrivals(Box::new(PoissonArrivals::new(200.0)))
        .build();
    sim.run_for(SimDuration::from_secs(seconds));
    sim.drain_completed()
}

fn bench_critical_path(c: &mut Criterion) {
    let traces = social_traces(2);
    let mut group = c.benchmark_group("critical_path");
    // Pick traces of distinct span counts (one per size bucket).
    let mut seen = std::collections::BTreeSet::new();
    for &target in &[5usize, 10, 15] {
        let Some(t) = traces
            .iter()
            .filter(|t| t.spans.len() >= target)
            .min_by_key(|t| t.spans.len())
        else {
            continue;
        };
        if !seen.insert(t.spans.len()) {
            continue;
        }
        let graph = ExecutionHistoryGraph::build(t).expect("valid trace");
        group.bench_with_input(
            BenchmarkId::new("alg1_extract", graph.len()),
            &graph,
            |b, g| b.iter(|| critical_path(g)),
        );
    }
    group.finish();
}

fn bench_svm(c: &mut Criterion) {
    let mut svm = IncrementalSvm::firm_default(1);
    for i in 0..500 {
        svm.partial_fit(&[0.5, (i % 7) as f64 / 7.0], i % 5 == 0);
    }
    c.bench_function("svm/partial_fit", |b| {
        b.iter(|| svm.partial_fit(&[0.62, 0.8], true))
    });
    c.bench_function("svm/predict", |b| b.iter(|| svm.predict(&[0.62, 0.8])));
}

fn bench_ddpg(c: &mut Criterion) {
    let mut agent = DdpgAgent::new(
        DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM),
        7,
    );
    let state = vec![0.4; STATE_DIM];
    for i in 0..256 {
        agent.observe(Transition {
            state: state.clone(),
            action: vec![0.1; ACTION_DIM],
            reward: (i % 10) as f64 / 10.0,
            next_state: state.clone(),
            done: i % 50 == 0,
        });
    }
    c.bench_function("ddpg/inference", |b| b.iter(|| agent.act(&state)));
    c.bench_function("ddpg/train_step", |b| b.iter(|| agent.train_step()));
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator/social_network_1s_at_200rps", |b| {
        b.iter_batched(
            || {
                Simulation::builder(
                    ClusterSpec::small(4),
                    Benchmark::SocialNetwork.build(),
                    11,
                )
                .arrivals(Box::new(PoissonArrivals::new(200.0)))
                .build()
            },
            |mut sim| {
                sim.run_for(SimDuration::from_secs(1));
                sim.stats().completions
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_extractor(c: &mut Criterion) {
    let traces = social_traces(2);
    let mut coord = TracingCoordinator::new(100_000);
    coord.ingest(traces);
    let stored: Vec<_> = coord
        .traces_since(firm_sim::SimTime::ZERO)
        .into_iter()
        .cloned()
        .collect();
    let extractor = CriticalComponentExtractor::new(5);
    c.bench_function("extractor/alg2_features_400_traces", |b| {
        b.iter(|| extractor.features(stored.iter().take(400)))
    });
}

criterion_group!(
    benches,
    bench_critical_path,
    bench_svm,
    bench_ddpg,
    bench_simulator,
    bench_extractor
);
criterion_main!(benches);
