//! Shared harness code for the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index) and prints the rows/series
//! the paper plots, plus a `paper:` reference line so the shapes can be
//! compared at a glance. Binaries accept `--key value` arguments for the
//! knobs that trade fidelity for runtime (episodes, seconds, rates).

use firm_sim::Histogram;

/// Parses `--key value` pairs from `std::env::args`.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Default for Args {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Args {
    /// Collects arguments from the process environment.
    pub fn from_env() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i + 1 < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                pairs.push((key.to_string(), raw[i + 1].clone()));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Builds from explicit pairs (tests).
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Self {
        Args {
            pairs: pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// A `u64` argument with a default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// An `f64` argument with a default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A raw argument value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Peak resident-set size of this process in KiB, read from
/// `/proc/self/status` `VmHWM` (the kernel's high-water mark, so it
/// captures the whole run regardless of when it is sampled). Returns 0
/// on platforms without procfs — bench JSON then records the absence
/// honestly instead of a fabricated number.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
    }
    0
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("{}", "=".repeat(74));
    println!("{id} — {caption}");
    println!("{}", "=".repeat(74));
}

/// Prints a sub-section rule.
pub fn section(title: &str) {
    println!(
        "\n-- {title} {}",
        "-".repeat(68usize.saturating_sub(title.len()))
    );
}

/// Prints a `paper:` reference line for shape comparison.
pub fn paper_note(note: &str) {
    println!("  [paper] {note}");
}

/// Summary statistics of a sample in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Sample count.
    pub n: usize,
    /// Mean, ms.
    pub mean_ms: f64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

/// Summarizes a latency sample given in microseconds.
pub fn summarize_us(mut lats: Vec<f64>) -> LatencySummary {
    if lats.is_empty() {
        return LatencySummary {
            n: 0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
        };
    }
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let n = lats.len();
    let mean = lats.iter().sum::<f64>() / n as f64;
    LatencySummary {
        n,
        mean_ms: mean / 1e3,
        p50_ms: firm_sim::stats::sample_quantile(&lats, 0.5) / 1e3,
        p99_ms: firm_sim::stats::sample_quantile(&lats, 0.99) / 1e3,
    }
}

/// Prints the CDF of a histogram (values in us, printed in ms) at the
/// canonical plotting quantiles.
pub fn print_cdf(label: &str, hist: &Histogram) {
    const QS: [f64; 9] = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999];
    print!("  {label:<22}");
    for q in QS {
        print!(
            " p{:<4}={:>9.2}ms",
            q * 100.0,
            hist.quantile(q) as f64 / 1e3
        );
    }
    println!("  (n={})", hist.count());
}

/// Prints a CDF from a raw sample in microseconds.
pub fn print_sample_cdf(label: &str, mut lats: Vec<f64>) {
    const QS: [f64; 9] = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999];
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    print!("  {label:<22}");
    for q in QS {
        print!(
            " p{:<4}={:>9.2}ms",
            q * 100.0,
            firm_sim::stats::sample_quantile(&lats, q) / 1e3
        );
    }
    println!("  (n={})", lats.len());
}

/// Formats a ratio as `x.x×` with a guard for division by ~zero.
pub fn factor(numerator: f64, denominator: f64) -> String {
    if denominator.abs() < 1e-12 {
        "n/a".into()
    } else {
        format!("{:.1}x", numerator / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs() {
        let a = Args::from_pairs(&[("seconds", "30"), ("rate", "2.5")]);
        assert_eq!(a.u64("seconds", 5), 30);
        assert_eq!(a.f64("rate", 1.0), 2.5);
        assert_eq!(a.u64("missing", 7), 7);
        assert_eq!(a.get("rate"), Some("2.5"));
    }

    #[test]
    fn summary_math() {
        let s = summarize_us(vec![1_000.0, 2_000.0, 3_000.0, 100_000.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean_ms - 26.5).abs() < 1e-9);
        assert!((s.p50_ms - 2.5).abs() < 1e-9);
        assert!(s.p99_ms > 90.0);
        assert_eq!(summarize_us(vec![]).n, 0);
    }

    #[test]
    fn factor_formats() {
        assert_eq!(factor(10.0, 2.0), "5.0x");
        assert_eq!(factor(1.0, 0.0), "n/a");
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "VmHWM parsed as {kb}");
        }
    }
}
