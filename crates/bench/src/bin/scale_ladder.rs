//! The scale ladder: runs generated catalogs at a series of scale
//! factors and emits `BENCH_scale.json` — throughput and peak RSS per
//! rung, so scale regressions are visible per PR (the clickgraph-table
//! convention: one committed row per sf).
//!
//! ```sh
//! cargo run --release -p firm-bench --bin scale_ladder -- \
//!     --sf 1,10,100 --threads 4 --out BENCH_scale.json
//! ```
//!
//! `--workers N` re-runs the *first* rung through N
//! `firm-fleet-worker` subprocesses and `--intra-shards K` re-runs it
//! with intra-scenario fan-out, asserting both reproduce the
//! in-process digest — the CI scale smoke. Generated catalogs are a
//! pure function of `(--seed, sf)`, so the digests recorded here are
//! as reproducible as the hand-written catalog's.
//!
//! Peak RSS is the kernel's `VmHWM` high-water mark for the whole
//! process, sampled after each rung: rung `i`'s number includes every
//! rung before it, so only the first rung and the final (largest) rung
//! are clean per-scale baselines; the ladder runs smallest-first to
//! keep the tail honest.

use std::time::Instant;

use firm_bench::{banner, peak_rss_kb, Args};
use firm_fleet::{generate_catalog, CatalogSpec, FleetConfig, FleetRunner};
use firm_wire::{JsonValue, Obj};

fn main() {
    let args = Args::from_env();
    let seed = args.u64("seed", 7);
    let threads = args.u64("threads", 4) as usize;
    let workers = args.u64("workers", 0) as usize;
    let intra = args.u64("intra-shards", 1) as usize;
    let train_steps = args.u64("train-steps", 128) as usize;
    let out_path = args.get("out").unwrap_or("BENCH_scale.json").to_string();
    let mut sfs: Vec<u64> = args
        .get("sf")
        .unwrap_or("1,10,100")
        .split(',')
        .map(|s| s.trim().parse().expect("--sf takes a comma list of u64"))
        .collect();
    sfs.sort_unstable();

    banner(
        "BENCH scale_ladder",
        "generated catalogs: throughput and peak RSS per scale factor",
    );

    let mut rungs: Vec<JsonValue> = Vec::new();
    let round3 = |x: f64| (x * 1_000.0).round() / 1_000.0;
    let mut first_digest: Option<(u64, u64)> = None;
    for &sf in &sfs {
        let spec = CatalogSpec::new(seed, sf);
        let catalog = generate_catalog(&spec);
        let total_rate: f64 = catalog.iter().map(|s| s.load.mean_rate()).sum();
        let start = Instant::now();
        let result = FleetRunner::new(FleetConfig {
            threads,
            seed,
            train_steps,
            ..FleetConfig::default()
        })
        .run(&catalog);
        let wall_secs = start.elapsed().as_secs_f64();
        let digest = result.report.digest();
        if first_digest.is_none() {
            first_digest = Some((sf, digest));
        }
        let rss_kb = peak_rss_kb();
        println!(
            "sf={sf:<4} users={:<9} tenants={:<3} rate={:>8.0} req/s  wall={wall_secs:>7.2}s \
             req/s={:>9.0}  peak-rss={} MiB  digest {digest:016x}",
            spec.users(),
            catalog.len(),
            total_rate,
            result.report.totals.completions as f64 / wall_secs,
            rss_kb / 1024,
        );
        rungs.push(
            Obj::new()
                .field("scale_factor", sf)
                .field("users", spec.users())
                .field("tenants", catalog.len())
                .field("replica_factor", spec.replica_factor())
                .field("offered_req_per_sec", round3(total_rate))
                .field("completions", result.report.totals.completions)
                .field("wall_secs", round3(wall_secs))
                .field(
                    "requests_per_sec",
                    round3(result.report.totals.completions as f64 / wall_secs),
                )
                .field("peak_rss_kb", rss_kb)
                .field("report_digest", format!("{digest:016x}"))
                .build(),
        );
    }

    // Parity checks (the CI scale smoke): the first — smallest — rung
    // re-run through subprocess workers and intra-scenario sharding
    // must reproduce the in-process digest bit for bit.
    let (parity_sf, expect) = first_digest.expect("--sf was empty");
    let parity_catalog = generate_catalog(&CatalogSpec::new(seed, parity_sf));
    let mut doc = Obj::new()
        .field("bench", "scale_ladder")
        .field("seed", seed)
        .field("threads", threads)
        .field("train_steps", train_steps)
        .field(
            "host_cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .field("rungs", rungs);
    if workers > 0 {
        let result = FleetRunner::new(
            FleetConfig {
                seed,
                train_steps,
                ..FleetConfig::default()
            }
            .workers(workers),
        )
        .run(&parity_catalog);
        assert_eq!(
            result.report.digest(),
            expect,
            "sf={parity_sf} over {workers} subprocess workers diverged from in-process"
        );
        println!("sf={parity_sf} x {workers} subprocess workers: digest matches in-process");
        doc = doc
            .field("parity_sf", parity_sf)
            .field("parity_workers", workers)
            .field("parity_workers_digest_matches", true);
    }
    if intra > 1 {
        let result = FleetRunner::new(
            FleetConfig {
                threads: 1,
                seed,
                train_steps,
                ..FleetConfig::default()
            }
            .intra_shards(intra),
        )
        .run(&parity_catalog);
        assert_eq!(
            result.report.digest(),
            expect,
            "sf={parity_sf} at intra_shards={intra} diverged from in-process"
        );
        println!("sf={parity_sf} at intra-shards {intra}: digest matches in-process");
        doc = doc
            .field("parity_intra_shards", intra)
            .field("parity_intra_digest_matches", true);
    }

    let mut json = doc.build().render();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    println!("wrote {out_path}");
}
