//! Fig. 3: distributions of end-to-end latency grouped by critical path
//! — the min-latency CP vs the max-latency CP for each benchmark.
//!
//! The paper reports up to 1.6× difference in median and 2.5× in p99
//! across CPs of the same application under anomaly injection.

use std::collections::BTreeMap;

use firm_bench::{banner, factor, paper_note, section, Args};
use firm_core::injector::{AnomalyInjector, CampaignConfig};
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration, SimTime, Simulation};
use firm_trace::TracingCoordinator;
use firm_workload::apps::{Benchmark, ALL_BENCHMARKS};

fn run_benchmark(bench: Benchmark, seconds: u64, rate: f64, seed: u64) {
    let app = bench.build();
    let mut sim = Simulation::builder(ClusterSpec::paper_cluster(), app, seed)
        .arrivals(Box::new(PoissonArrivals::new(rate)))
        .build();
    let mut coord = TracingCoordinator::new(400_000);
    // Resource stressors only: workload surges congest every CP at once
    // and blur the per-CP comparison the figure is after.
    let mut injector = AnomalyInjector::new(CampaignConfig::stressors_only(), seed ^ 0xF1D);

    let step = SimDuration::from_millis(500);
    let end = sim.now() + SimDuration::from_secs(seconds);
    while sim.now() < end {
        injector.tick(&mut sim);
        sim.run_for(step);
        coord.ingest(sim.drain_completed());
    }

    // Group end-to-end latencies by CP signature (per request type so
    // routes are comparable); pick the request type with the most
    // distinct signatures.
    let mut groups: BTreeMap<(u16, Vec<u16>), Vec<f64>> = BTreeMap::new();
    for t in coord.traces_since(SimTime::ZERO) {
        if t.dropped {
            continue;
        }
        let sig: Vec<u16> = t.cp.signature().iter().map(|s| s.raw()).collect();
        groups
            .entry((t.request_type.raw(), sig))
            .or_default()
            .push(t.latency.as_micros() as f64);
    }
    let min_samples = 50;
    let mut best: Option<(&(u16, Vec<u16>), f64)> = None;
    let mut worst: Option<(&(u16, Vec<u16>), f64)> = None;
    for (key, lats) in &groups {
        if lats.len() < min_samples {
            continue;
        }
        let mut sorted = lats.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med = firm_sim::stats::sample_quantile(&sorted, 0.5);
        if best.as_ref().map(|(_, m)| med < *m).unwrap_or(true) {
            best = Some((key, med));
        }
        if worst.as_ref().map(|(_, m)| med > *m).unwrap_or(true) {
            worst = Some((key, med));
        }
    }
    let (Some((min_key, _)), Some((max_key, _))) = (best, worst) else {
        println!("  (not enough CP diversity at this load)");
        return;
    };

    let stats = |key: &(u16, Vec<u16>)| {
        let mut lats = groups[key].clone();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (
            firm_sim::stats::sample_quantile(&lats, 0.5) / 1e3,
            firm_sim::stats::sample_quantile(&lats, 0.99) / 1e3,
            lats.len(),
        )
    };
    let (min_med, min_p99, min_n) = stats(min_key);
    let (max_med, max_p99, max_n) = stats(max_key);
    println!(
        "  Min-CP: median={min_med:>8.2}ms p99={min_p99:>8.2}ms (n={min_n}, {} spans)",
        min_key.1.len()
    );
    println!(
        "  Max-CP: median={max_med:>8.2}ms p99={max_p99:>8.2}ms (n={max_n}, {} spans)",
        max_key.1.len()
    );
    println!(
        "  spread: median {}  p99 {}  ({} distinct CPs observed)",
        factor(max_med, min_med),
        factor(max_p99, min_p99),
        groups.len()
    );
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 60);
    let rate = args.f64("rate", 150.0);
    let seed = args.u64("seed", 23);
    banner(
        "Fig. 3",
        "End-to-end latency distributions of min- vs max-latency critical paths",
    );
    for (i, bench) in ALL_BENCHMARKS.iter().enumerate() {
        section(bench.name());
        run_benchmark(*bench, seconds, rate, seed + i as u64);
    }
    println!();
    paper_note("across CPs: up to 1.6x difference in median and 2.5x in p99 (Fig. 3a–d)");
}
