//! §5 ablation — "Why Multi-level ML Framework?"
//!
//! The paper argues the SVM filter (level 1) is what keeps the RL agent
//! trainable: it shrinks the state-action space to the culprit instances
//! and decouples the agent from the application architecture. This
//! ablation trains and runs FIRM twice — with the filter, and with the
//! RL agent fed *every* critical-path instance — and compares actions
//! issued, mitigation quality, and tail latency.

use firm_bench::{banner, paper_note, section, Args};
use firm_core::experiment::{run_scenario, ControllerKind, ScenarioConfig};
use firm_core::injector::CampaignConfig;
use firm_core::manager::{FirmConfig, FirmManager};
use firm_core::training::{train_into, TrainingConfig};
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration};
use firm_workload::apps::Benchmark;

fn run_variant(svm_filter: bool, episodes: usize, seconds: u64, seed: u64) {
    let cluster = ClusterSpec::small(6);
    let mut app = Benchmark::SocialNetwork.build();
    firm_core::slo::calibrate_slos(&mut app, &cluster, 350.0, 1.4, seed);

    let mut mgr = FirmManager::new(FirmConfig {
        training: true,
        svm_filter,
        seed,
        ..FirmConfig::default()
    });
    let cfg = TrainingConfig {
        episodes,
        max_steps: 30,
        ramp_episodes: (episodes / 3).max(1),
        min_steps: 10,
        arrival_rate: 350.0,
        cluster: cluster.clone(),
        campaign: CampaignConfig {
            lambda: 0.6,
            intensity: (0.6, 1.0),
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    train_into(&app, &cfg, &mut mgr);
    let trained_actions = mgr.stats().actions;
    mgr.config.explore = false;

    let mut scenario = ScenarioConfig::new(app, ControllerKind::Firm(Box::new(mgr)));
    scenario.cluster = cluster;
    scenario.arrivals = Some(Box::new(PoissonArrivals::new(350.0)));
    scenario.duration = SimDuration::from_secs(seconds);
    scenario.campaign = Some(CampaignConfig {
        lambda: 0.33,
        intensity: (0.6, 1.0),
        ..Default::default()
    });
    scenario.seed = seed;
    let r = run_scenario(scenario);

    println!(
        "  {:<22} p50={:>8.2}ms p99={:>9.2}ms violations={:>5.1}% drops={:>5} cpu={:>6.1} actions(train)={}",
        if svm_filter { "two-level (SVM+RL)" } else { "RL-only (no filter)" },
        r.latency.p50() as f64 / 1e3,
        r.latency.p99() as f64 / 1e3,
        r.violation_rate() * 100.0,
        r.drops,
        r.mean_requested_cpu,
        trained_actions,
    );
}

fn main() {
    let args = Args::from_env();
    let episodes = args.u64("episodes", 40) as usize;
    let seconds = args.u64("seconds", 45);
    let seed = args.u64("seed", 67);

    banner(
        "§5 ablation",
        "Two-level (SVM filter + RL) vs RL acting on every CP instance",
    );
    section("validation scenario after equal training budgets");
    run_variant(true, episodes, seconds, seed);
    run_variant(false, episodes, seconds, seed);
    println!();
    paper_note("the SVM filter shrinks the RL's state-action space (faster training) and");
    paper_note("decouples the agent from the application architecture (§5)");
}
