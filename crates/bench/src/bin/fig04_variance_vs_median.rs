//! Fig. 4 (Insight 2): scaling the highest-variance service on the CP
//! beats scaling the highest-median one.
//!
//! In the Social Network compose-post path, `compose-post` carries the
//! larger median latency but `text` (squeezed here into intermittent
//! congestion) carries the variance. Adding a replica to `text` improves
//! the end-to-end tail; adding one to `compose-post` barely moves it.

use firm_bench::{banner, paper_note, section, summarize_us, Args};
use firm_sim::spec::ClusterSpec;
use firm_sim::{Command, PoissonArrivals, ResourceKind, SimDuration, Simulation};
use firm_workload::apps::Benchmark;

/// Runs the compose-post workload; optionally scales one service to two
/// replicas. Returns (text span latencies, compose span latencies,
/// end-to-end latencies) in us.
fn run(scale: Option<&str>, seconds: u64, rate: f64, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut app = Benchmark::SocialNetwork.build();
    // Compose-post only.
    app.request_types[0].weight = 1.0;
    app.request_types[1].weight = 0.0001;
    app.request_types[2].weight = 0.0001;
    let text_id = app.service_by_name("text").expect("text exists");
    let compose_id = app.service_by_name("compose-post").expect("compose exists");

    let mut sim = Simulation::builder(ClusterSpec::paper_cluster(), app, seed)
        .arrivals(Box::new(PoissonArrivals::new(rate)))
        .build();

    // Make `text` the high-variance service: a tight quota puts it at
    // ~50-60% utilization, so bursts queue intermittently. Give
    // `compose-post` plenty of workers so its (large) latency is steady:
    // high median, low variance — the paper's exact contrast.
    let text_inst = sim.replicas(text_id)[0];
    sim.apply(Command::SetPartition {
        instance: text_inst,
        kind: ResourceKind::Cpu,
        amount: 0.3,
    });
    let compose_inst = sim.replicas(compose_id)[0];
    sim.apply(Command::SetPartition {
        instance: compose_inst,
        kind: ResourceKind::Cpu,
        amount: 8.0,
    });
    if let Some(name) = scale {
        let svc = sim.app().service_by_name(name).expect("service exists");
        sim.apply(Command::ScaleOut {
            service: svc,
            warm: true,
        });
    }
    sim.run_for(SimDuration::from_secs(5));
    sim.drain_completed();

    sim.run_for(SimDuration::from_secs(seconds));
    let mut text = Vec::new();
    let mut compose = Vec::new();
    let mut total = Vec::new();
    for r in sim.drain_completed() {
        if r.dropped {
            continue;
        }
        total.push(r.latency.as_micros() as f64);
        for s in &r.spans {
            if s.service == text_id {
                text.push(s.duration().as_micros() as f64);
            } else if s.service == compose_id {
                compose.push(s.duration().as_micros() as f64);
            }
        }
    }
    (text, compose, total)
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 30);
    let rate = args.f64("rate", 180.0);
    let seed = args.u64("seed", 29);

    banner(
        "Fig. 4",
        "Scaling the highest-variance vs the highest-median service on the CP",
    );

    section("individual latencies on the CP (before scaling)");
    let (text, compose, before) = run(None, seconds, rate, seed);
    let ts = summarize_us(text);
    let cs = summarize_us(compose);
    println!(
        "  text:         median={:>7.2}ms p99={:>8.2}ms  (p99/p50 = {:.1} -> the variance)",
        ts.p50_ms,
        ts.p99_ms,
        ts.p99_ms / ts.p50_ms.max(1e-9)
    );
    println!(
        "  compose-post: median={:>7.2}ms p99={:>8.2}ms  (p99/p50 = {:.1} -> the median)",
        cs.p50_ms,
        cs.p99_ms,
        cs.p99_ms / cs.p50_ms.max(1e-9)
    );

    section("end-to-end latency after scaling one service to two replicas");
    let (_, _, text_scaled) = run(Some("text"), seconds, rate, seed + 1);
    let (_, _, compose_scaled) = run(Some("compose-post"), seconds, rate, seed + 2);
    let b = summarize_us(before);
    let t = summarize_us(text_scaled);
    let c = summarize_us(compose_scaled);
    println!(
        "  before:          median={:>7.2}ms p99={:>8.2}ms",
        b.p50_ms, b.p99_ms
    );
    println!(
        "  scale text:      median={:>7.2}ms p99={:>8.2}ms   <- variance scaled",
        t.p50_ms, t.p99_ms
    );
    println!(
        "  scale compose:   median={:>7.2}ms p99={:>8.2}ms   <- median scaled",
        c.p50_ms, c.p99_ms
    );
    println!(
        "\n  tail improvement from scaling text: {:.1}%  vs compose: {:.1}%",
        (1.0 - t.p99_ms / b.p99_ms) * 100.0,
        (1.0 - c.p99_ms / b.p99_ms) * 100.0
    );
    paper_note("scaling the higher-variance service (text) improves the tail; the higher-median one does not");
}
