//! Tables 2, 3, 4 and 5: the configuration surfaces of FIRM, printed
//! from the live code so drift between paper and implementation is
//! visible.

use firm_bench::{banner, section};
use firm_core::estimator::{ACTION_DIM, ACTOR_STATE_DIM, STATE_DIM};
use firm_ml::ddpg::DdpgConfig;
use firm_sim::anomaly::ANOMALY_KINDS;
use firm_telemetry::metric::METRIC_KINDS;

fn main() {
    banner(
        "Tables 2–5",
        "Configuration surfaces (telemetry, state-action, RL, anomalies)",
    );

    section("Table 2: collected telemetry data and sources");
    println!("  {:<44} source", "metric");
    for m in METRIC_KINDS {
        println!("  {:<44} {}", m.name(), m.paper_source());
    }

    section("Table 3: state-action space of the RL agent");
    println!("  state  (SVt, WCt, RCt, RUt[5])            -> actor inputs   = {ACTOR_STATE_DIM}");
    println!("  state  ⊕ normalized limits and usage      -> full state dim = {STATE_DIM}");
    println!("  action RLTi, i ∈ {{CPU, Mem, LLC, IO, Net}} -> action dim     = {ACTION_DIM}");
    println!(
        "  critic input = state ⊕ action             -> {} (Fig. 8: 23)",
        STATE_DIM + ACTION_DIM
    );

    section("Table 4: RL training parameters");
    let cfg = DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM);
    println!("  # time steps x # minibatch      300 x {}", cfg.batch_size);
    println!("  size of replay buffer           {}", cfg.replay_capacity);
    println!(
        "  learning rate                   actor {:.0e}, critic {:.0e}",
        cfg.actor_lr, cfg.critic_lr
    );
    println!("  discount factor                 {}", cfg.gamma);
    println!(
        "  soft-target update coefficient  {} (Alg. 3 reuses gamma)",
        cfg.tau
    );
    println!(
        "  hidden layers                   {:?} (Fig. 8: two x 40, ReLU; actor output Tanh)",
        cfg.hidden
    );

    section("Table 5: performance-anomaly types and the paper's tools");
    println!("  {:<30} tools (paper) / model (here)", "anomaly");
    for kind in ANOMALY_KINDS {
        let model = match kind.contended_resource() {
            Some(r) => format!("consumes node {r} pool"),
            None => match kind {
                firm_sim::AnomalyKind::WorkloadVariation => "multiplies arrival rate".to_string(),
                _ => "adds per-RPC delay".to_string(),
            },
        };
        println!("  {:<30} {} / {}", kind.label(), kind.paper_tools(), model);
    }
}
