//! Fig. 9(c): the multi-anomaly injection campaign — per-window
//! intensity of each of the six interference sources.

use firm_bench::{banner, paper_note, Args};
use firm_sim::spec::ClusterSpec;
use firm_sim::{NodeId, SimDuration, Simulation};
use firm_workload::apps::Benchmark;

fn main() {
    let args = Args::from_env();
    let windows = args.u64("windows", 12) as usize;
    let window_secs = args.u64("window-secs", 10);
    let seed = args.u64("seed", 9);

    banner(
        "Fig. 9(c)",
        "Anomaly-injection intensity and timing (multi-anomaly campaign)",
    );

    let app = Benchmark::SocialNetwork.build();
    let mut sim = Simulation::builder(ClusterSpec::paper_cluster(), app, seed).build();
    let timeline = firm_core::injector::fig9c_campaign(
        &mut sim,
        windows,
        SimDuration::from_secs(window_secs),
        NodeId(0),
        seed,
    );

    print!("  {:<22}", "interference source");
    for w in 0..windows {
        print!(" T{:<4}", w + 1);
    }
    println!();
    let sources = ["Workload", "CPU", "Memory", "LLC", "Disk I/O", "Network"];
    for (s, name) in sources.iter().enumerate() {
        print!("  {name:<22}");
        for row in &timeline {
            print!(" {:<5.2}", row[s].1);
        }
        println!();
    }
    println!(
        "\n  {} windows x {}s, intensities ~ U[0,1] per source per window",
        windows, window_secs
    );
    paper_note("12 x 10 s windows, 6 sources, intensity drawn uniformly at random in [0,1]");
}
