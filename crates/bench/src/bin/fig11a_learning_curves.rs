//! Fig. 11(a): RL learning curves — total episode reward for the
//! one-for-all, one-for-each, and transfer-learning agents trained on
//! Train-Ticket (§4.3).

use firm_bench::{banner, paper_note, section, Args};
use firm_core::estimator::AgentRegime;
use firm_core::injector::CampaignConfig;
use firm_core::manager::{FirmConfig, FirmManager};
use firm_core::training::{train_firm, train_into, EpisodeStats, TrainingConfig};
use firm_sim::spec::ClusterSpec;
use firm_workload::apps::Benchmark;

fn moving_avg(stats: &[EpisodeStats], window: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(stats.len());
    for i in 0..stats.len() {
        let lo = i.saturating_sub(window - 1);
        let xs = &stats[lo..=i];
        out.push(xs.iter().map(|s| s.total_reward).sum::<f64>() / xs.len() as f64);
    }
    out
}

/// Episode at which the moving average first reaches 80% of its final
/// plateau.
fn convergence_episode(avg: &[f64]) -> usize {
    let plateau =
        avg.iter().rev().take(avg.len() / 5 + 1).sum::<f64>() / (avg.len() / 5 + 1) as f64;
    avg.iter()
        .position(|v| *v >= plateau * 0.8)
        .unwrap_or(avg.len())
}

fn main() {
    let args = Args::from_env();
    let episodes = args.u64("episodes", 150) as usize;
    let seed = args.u64("seed", 53);

    banner(
        "Fig. 11(a)",
        "Learning curves: one-for-all vs one-for-each vs transferred agents",
    );

    let mut app = Benchmark::TrainTicket.build();
    firm_core::slo::calibrate_slos(&mut app, &ClusterSpec::small(6), 250.0, 1.4, seed);
    let cfg = |regime, seed| TrainingConfig {
        episodes,
        max_steps: 30,
        ramp_episodes: episodes / 4,
        min_steps: 8,
        arrival_rate: 250.0,
        cluster: ClusterSpec::small(6),
        regime,
        campaign: CampaignConfig {
            lambda: 0.6,
            intensity: (0.6, 1.0),
            ..Default::default()
        },
        seed,
        ..Default::default()
    };

    eprintln!("[fig11a] training one-for-all...");
    let (all_stats, teacher) = train_firm(&app, &cfg(AgentRegime::Shared, seed));
    eprintln!("[fig11a] training one-for-each...");
    let (each_stats, _) = train_firm(&app, &cfg(AgentRegime::PerService, seed + 1));
    eprintln!("[fig11a] training transferred (from the one-for-all weights)...");
    let (actor, critic) = teacher.shared_weights();
    let mut student = FirmManager::new(FirmConfig {
        training: true,
        regime: AgentRegime::Transfer,
        seed: seed + 2,
        ..FirmConfig::default()
    });
    student.estimator_mut().import_shared(&actor, &critic);
    let transfer_stats = train_into(&app, &cfg(AgentRegime::Transfer, seed + 2), &mut student);

    section("total reward (moving average over 10 episodes), sampled every 10 episodes");
    let a = moving_avg(&all_stats, 10);
    let e = moving_avg(&each_stats, 10);
    let t = moving_avg(&transfer_stats, 10);
    println!(
        "  {:>8} {:>14} {:>14} {:>14}",
        "episode", "one-for-all", "one-for-each", "transferred"
    );
    for i in (0..episodes).step_by(10.max(episodes / 15)) {
        println!("  {:>8} {:>14.1} {:>14.1} {:>14.1}", i, a[i], e[i], t[i]);
    }
    let last = episodes - 1;
    println!(
        "  {:>8} {:>14.1} {:>14.1} {:>14.1}",
        last, a[last], e[last], t[last]
    );

    section("convergence (episode reaching 80% of final plateau)");
    println!(
        "  one-for-all: {}   one-for-each: {}   transferred: {}",
        convergence_episode(&a),
        convergence_episode(&e),
        convergence_episode(&t)
    );
    paper_note("transferred converges fastest (≈2k iters), one-for-all slowest (≈15k) with ~6% lower reward than one-for-each");
}
