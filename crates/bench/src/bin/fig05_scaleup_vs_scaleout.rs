//! Fig. 5 (Insight 3): the scale-up vs scale-out trade-off moves with
//! user load, with the contended resource, and across applications.
//!
//! For a sweep of loads, a hot service's node suffers CPU- or memory-
//! bandwidth contention; mitigation is either *scale-up* (double the
//! quota / reserve bandwidth on the same node) or *scale-out* (add a
//! replica on a clean node). Median end-to-end latency is reported per
//! (load, resource, strategy).

use firm_bench::{banner, paper_note, section, summarize_us, Args};
use firm_sim::spec::ClusterSpec;
use firm_sim::{
    AnomalyKind, AnomalySpec, Command, PoissonArrivals, ResourceKind, SimDuration, Simulation,
};
use firm_workload::apps::Benchmark;

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    ScaleUp,
    ScaleOut,
}

fn run_point(
    bench: Benchmark,
    hot_service: &str,
    load: f64,
    resource: AnomalyKind,
    strategy: Strategy,
    seconds: u64,
    seed: u64,
) -> f64 {
    let app = bench.build();
    let mut sim = Simulation::builder(ClusterSpec::paper_cluster(), app, seed)
        .arrivals(Box::new(PoissonArrivals::new(load)))
        .build();
    let svc = sim
        .app()
        .service_by_name(hot_service)
        .expect("service exists");
    let inst = sim.replicas(svc)[0];
    let node = sim.instance(inst).node;

    // Contend the hot node for the whole run.
    sim.inject(AnomalySpec::new(
        resource,
        node,
        0.85,
        SimDuration::from_secs(seconds + 10),
    ));

    match strategy {
        Strategy::ScaleUp => {
            let current = sim.instance(inst).cpu_limit();
            sim.apply(Command::SetPartition {
                instance: inst,
                kind: ResourceKind::Cpu,
                amount: current * 2.0,
            });
            if resource == AnomalyKind::MemBwStress {
                // The MBA move: reserve bandwidth for the victim.
                sim.apply(Command::SetPartition {
                    instance: inst,
                    kind: ResourceKind::MemBw,
                    amount: 6_000.0,
                });
            }
        }
        Strategy::ScaleOut => {
            sim.apply(Command::ScaleOut {
                service: svc,
                warm: true,
            });
        }
    }

    sim.run_for(SimDuration::from_secs(5));
    sim.drain_completed();
    sim.run_for(SimDuration::from_secs(seconds));
    let lats: Vec<f64> = sim
        .drain_completed()
        .into_iter()
        .filter(|r| !r.dropped)
        .map(|r| r.latency.as_micros() as f64)
        .collect();
    summarize_us(lats).p50_ms
}

fn sweep(bench: Benchmark, hot: &str, loads: &[f64], seconds: u64, seed: u64) {
    println!(
        "  {:<10} | {:>9} {:>9} | {:>9} {:>9}   (median end-to-end, ms)",
        "load r/s", "up/CPU", "out/CPU", "up/Mem", "out/Mem"
    );
    for (i, &load) in loads.iter().enumerate() {
        let s = seed + i as u64 * 10;
        let up_cpu = run_point(
            bench,
            hot,
            load,
            AnomalyKind::CpuStress,
            Strategy::ScaleUp,
            seconds,
            s,
        );
        let out_cpu = run_point(
            bench,
            hot,
            load,
            AnomalyKind::CpuStress,
            Strategy::ScaleOut,
            seconds,
            s + 1,
        );
        let up_mem = run_point(
            bench,
            hot,
            load,
            AnomalyKind::MemBwStress,
            Strategy::ScaleUp,
            seconds,
            s + 2,
        );
        let out_mem = run_point(
            bench,
            hot,
            load,
            AnomalyKind::MemBwStress,
            Strategy::ScaleOut,
            seconds,
            s + 3,
        );
        let mark = |a: f64, b: f64| if a <= b { "*" } else { " " };
        println!(
            "  {:<10} | {:>8.2}{} {:>8.2}{} | {:>8.2}{} {:>8.2}{}",
            load,
            up_cpu,
            mark(up_cpu, out_cpu),
            out_cpu,
            mark(out_cpu, up_cpu),
            up_mem,
            mark(up_mem, out_mem),
            out_mem,
            mark(out_mem, up_mem),
        );
    }
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 20);
    let seed = args.u64("seed", 31);
    let loads: Vec<f64> = match args.get("loads") {
        Some(s) => s.split(',').filter_map(|x| x.parse().ok()).collect(),
        None => vec![50.0, 100.0, 200.0, 300.0, 450.0, 600.0],
    };

    banner(
        "Fig. 5",
        "Scale-up vs scale-out across load, per contended resource (* = winner)",
    );
    section("Social Network (upper)");
    sweep(
        Benchmark::SocialNetwork,
        "compose-post",
        &loads,
        seconds,
        seed,
    );
    section("Train-Ticket Booking (lower)");
    sweep(
        Benchmark::TrainTicket,
        "ts-travel",
        &loads,
        seconds,
        seed + 100,
    );
    println!();
    paper_note("at low load scale-up wins for both resources; at high load scale-out takes over for CPU while scale-up holds for memory; inflection points differ across applications");
}
