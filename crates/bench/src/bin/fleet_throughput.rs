//! Fleet throughput: wall-clock scaling of the multi-tenant fleet
//! runtime, emitted as machine-readable JSON so later PRs have a perf
//! trajectory to beat.
//!
//! Runs the built-in scenario catalog once per thread count, verifies
//! the reports are bit-identical (the fleet's determinism contract),
//! and writes `BENCH_fleet.json` with sim-ticks/sec, simulated
//! requests/sec, and the wall-clock speedup of each thread count over
//! 1 thread.
//!
//! ```sh
//! cargo run --release -p firm-bench --bin fleet_throughput -- \
//!     --seconds 20 --threads 4 --out BENCH_fleet.json
//! ```
//!
//! `--scenarios N` truncates the catalog to its first N entries — the
//! CI smoke mode, so the binary can't silently rot without burning
//! minutes. `--workers N` additionally runs the catalog through N
//! `firm-fleet-worker` subprocesses and asserts the report digest is
//! bit-identical to the in-process run (the wire codec's cross-process
//! determinism contract). `--remote addr1,addr2,...` does the same over
//! already-running `firm-fleet-worker --listen` processes — the
//! multi-node transport's digest-parity check (see README "Deploying
//! multi-node"). `--serve addr` submits the catalog to an
//! already-running `firm-fleet serve` coordinator as a client and
//! asserts the served report digest is bit-identical to the in-process
//! run — the resident service's end-to-end determinism contract.
//! `--intra-shards N` ladders the *intra*-scenario stage
//! fan-out (2, 4, … up to N) on one scenario thread and asserts every
//! rung reproduces the unsharded digest — the barrier-stepped
//! parallelism's bit-identity contract. `--scale-factor N` swaps the
//! hand-written catalog for a generated one
//! (`generate_catalog(CatalogSpec::new(seed, N))`) so the same
//! digest-parity checks run against scale-factor catalogs; the
//! dedicated sf=1/10/100 ladder lives in the `scale_ladder` binary.
//! The JSON also records the process's peak RSS (`VmHWM`), the memory
//! baseline for the streaming-statistics roadmap item.
//!
//! Observability riders: `--log-level LEVEL` filters the `firm_obs`
//! event stream (overrides `FIRM_LOG`), and `--obs-out PATH` writes the
//! buffered events plus the final run's `OpsReport` as firm-wire JSONL
//! — the export CI validates with `obs-check`. Neither can move a
//! report byte: observability is out-of-band by construction (see
//! `tests/obs_determinism.rs`).
//!
//! Note: speedup is bounded by the host's core count; on a single-core
//! container every thread count measures ≈1×. The JSON records
//! `host_cores` so readers can judge the headroom.

use std::time::Instant;

use firm_bench::{banner, peak_rss_kb, Args};
use firm_fleet::{
    builtin_catalog, generate_catalog, CatalogSpec, FleetConfig, FleetRunner, OpsReport, Scenario,
};
use firm_sim::SimDuration;
use firm_wire::{JsonValue, Obj};

struct Measurement {
    threads: usize,
    wall_secs: f64,
    sim_ticks: u64,
    requests: u64,
    digest: u64,
    ops: OpsReport,
}

fn run_once(scenarios: &[Scenario], threads: usize, seed: u64) -> Measurement {
    run_config(
        scenarios,
        FleetConfig {
            threads,
            seed,
            train_steps: 128,
            ..FleetConfig::default()
        },
    )
}

fn run_config(scenarios: &[Scenario], config: FleetConfig) -> Measurement {
    let threads = config.threads;
    let runner = FleetRunner::new(config);
    let start = Instant::now();
    let result = runner.run(scenarios);
    let wall_secs = start.elapsed().as_secs_f64();
    Measurement {
        threads,
        wall_secs,
        sim_ticks: result.report.scenarios.iter().map(|s| s.ticks).sum(),
        requests: result.report.totals.completions,
        digest: result.report.digest(),
        ops: result.ops,
    }
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 20);
    let max_threads = args.u64("threads", 4) as usize;
    let workers = args.u64("workers", 0) as usize;
    let intra_max = args.u64("intra-shards", 1) as usize;
    let remote: Vec<String> = args
        .get("remote")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let serve_addr = args.get("serve").map(str::to_string);
    let seed = args.u64("seed", 7);
    let take = args.u64("scenarios", u64::MAX) as usize;
    let out_path = args.get("out").unwrap_or("BENCH_fleet.json").to_string();
    let obs_out = args.get("obs-out").map(str::to_string);
    if let Some(raw) = args.get("log-level") {
        match firm_obs::parse_filter(raw) {
            Ok(level) => firm_obs::set_level(level),
            Err(e) => panic!("--log-level: {e}"),
        }
    }

    // `--scale-factor N` swaps the hand-written catalog for a generated
    // one (catalog seed = the fleet seed): the scale ladder's
    // throughput path. 0 (the default) keeps the legacy catalog and
    // its pinned digest trajectory.
    let scale_factor = args.u64("scale-factor", 0);
    let base_catalog = if scale_factor > 0 {
        generate_catalog(&CatalogSpec::new(seed, scale_factor))
    } else {
        builtin_catalog()
    };
    let scenarios: Vec<Scenario> = base_catalog
        .into_iter()
        .take(take.max(1))
        .map(|s| s.with_duration(SimDuration::from_secs(seconds)))
        .collect();

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    banner(
        "BENCH fleet_throughput",
        "multi-tenant fleet runtime: sim throughput and thread scaling",
    );
    println!(
        "catalog: {} scenarios x {seconds}s simulated; host cores: {host_cores}\n",
        scenarios.len()
    );

    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }

    let mut measurements = Vec::new();
    for &threads in &thread_counts {
        let m = run_once(&scenarios, threads, seed);
        println!(
            "threads={:<2} wall={:>7.2}s sim-ticks/s={:>10.0} req/s={:>10.0}",
            m.threads,
            m.wall_secs,
            m.sim_ticks as f64 / m.wall_secs,
            m.requests as f64 / m.wall_secs,
        );
        measurements.push(m);
    }

    // Determinism contract: every thread count produced identical bytes.
    let digest = measurements[0].digest;
    assert!(
        measurements.iter().all(|m| m.digest == digest),
        "fleet reports diverged across thread counts"
    );

    // Intra-scenario contract: laddering the stage fan-out on one
    // scenario thread cannot move a report byte, only wall-clock time.
    let mut intra_counts = Vec::new();
    let mut k = 2usize;
    while k <= intra_max {
        intra_counts.push(k);
        k *= 2;
    }
    let intra_runs: Vec<Measurement> = intra_counts
        .iter()
        .map(|&n| {
            let m = run_config(
                &scenarios,
                FleetConfig {
                    threads: 1,
                    seed,
                    train_steps: 128,
                    ..FleetConfig::default()
                }
                .intra_shards(n),
            );
            assert_eq!(
                m.digest, digest,
                "intra-sharded fleet ({n} shards) diverged from the unsharded digest"
            );
            println!(
                "intra-shards={n:<2} wall={:>7.2}s speedup-vs-unsharded={:>5.2}x \
                 digest matches",
                m.wall_secs,
                measurements[0].wall_secs / m.wall_secs,
            );
            m
        })
        .collect();

    // Cross-process contract: a subprocess-sharded fleet reproduces the
    // same digest through the wire codec.
    let subprocess = (workers > 0).then(|| {
        let m = run_config(
            &scenarios,
            FleetConfig {
                seed,
                train_steps: 128,
                ..FleetConfig::default()
            }
            .workers(workers),
        );
        assert_eq!(
            m.digest, digest,
            "subprocess fleet diverged from the in-process digest"
        );
        println!(
            "workers={workers} (subprocess) wall={:>7.2}s digest matches in-process",
            m.wall_secs
        );
        m
    });

    // Multi-node contract: a TCP-sharded fleet over running
    // `firm-fleet-worker --listen` processes reproduces the digest too.
    let tcp = (!remote.is_empty()).then(|| {
        let m = run_config(
            &scenarios,
            FleetConfig {
                seed,
                train_steps: 128,
                ..FleetConfig::default()
            }
            .remote_workers(&remote),
        );
        assert_eq!(
            m.digest, digest,
            "TCP-sharded fleet diverged from the in-process digest"
        );
        println!(
            "remote={} (tcp) wall={:>7.2}s digest matches in-process",
            remote.join(","),
            m.wall_secs
        );
        m
    });

    // Resident-service contract: submitting the same catalog to a
    // running `firm-fleet serve` coordinator streams every outcome back
    // and reproduces the in-process digest bit for bit.
    let serve = serve_addr.as_deref().map(|addr| {
        let mut client = firm_serve::ServeClient::connect(addr)
            .unwrap_or_else(|e| panic!("--serve {addr}: {e}"));
        let mut streamed = 0u64;
        let start = Instant::now();
        let report = client
            .submit(seed, 0, scenarios.clone(), &mut |_, _| streamed += 1)
            .unwrap_or_else(|e| panic!("--serve {addr} submission: {e}"));
        let wall_secs = start.elapsed().as_secs_f64();
        let served = report.report.digest();
        assert_eq!(
            served, digest,
            "served fleet report diverged from the in-process digest"
        );
        assert_eq!(
            streamed,
            scenarios.len() as u64,
            "the coordinator streamed {streamed} outcomes for {} scenarios",
            scenarios.len()
        );
        println!(
            "serve={addr} wall={wall_secs:>7.2}s streamed={streamed} digest matches in-process"
        );
        (wall_secs, streamed, report)
    });

    let base = measurements[0].wall_secs;
    let round3 = |x: f64| (x * 1_000.0).round() / 1_000.0;
    let row = |m: &Measurement| {
        Obj::new()
            .field("threads", m.threads)
            .field("wall_secs", round3(m.wall_secs))
            .field(
                "sim_ticks_per_sec",
                round3(m.sim_ticks as f64 / m.wall_secs),
            )
            .field("requests_per_sec", round3(m.requests as f64 / m.wall_secs))
            .field("speedup_vs_1_thread", round3(base / m.wall_secs))
            .build()
    };
    let runs: Vec<JsonValue> = measurements.iter().map(row).collect();
    let mut doc = Obj::new()
        .field("bench", "fleet_throughput")
        .field("scenarios", scenarios.len())
        .field("sim_seconds_each", seconds)
        .field("seed", seed)
        .field("host_cores", host_cores)
        .field("report_digest", format!("{digest:016x}"))
        .field("peak_rss_kb", peak_rss_kb())
        .field("runs", runs);
    if scale_factor > 0 {
        doc = doc.field("scale_factor", scale_factor);
    }
    if !intra_runs.is_empty() {
        let rows: Vec<JsonValue> = intra_counts
            .iter()
            .zip(&intra_runs)
            .map(|(&n, m)| {
                Obj::new()
                    .field("intra_shards", n)
                    .field("wall_secs", round3(m.wall_secs))
                    .field("speedup_vs_unsharded", round3(base / m.wall_secs))
                    .field("digest_matches", true)
                    .build()
            })
            .collect();
        doc = doc.field("intra_shard_runs", rows);
    }
    if let Some(m) = &subprocess {
        doc = doc
            .field("subprocess_workers", workers)
            .field("subprocess_wall_secs", round3(m.wall_secs))
            .field("subprocess_digest_matches", true);
    }
    if let Some(m) = &tcp {
        doc = doc
            .field("remote_workers", remote.len())
            .field("remote_wall_secs", round3(m.wall_secs))
            .field("remote_digest_matches", true);
    }
    if let Some((wall_secs, streamed, report)) = &serve {
        doc = doc
            .field("serve_addr", serve_addr.clone().expect("serve mode"))
            .field("serve_wall_secs", round3(*wall_secs))
            .field("serve_streamed_outcomes", *streamed)
            .field("serve_digest_matches", true)
            .field(
                "serve_policy_digest",
                format!("{:016x}", report.policy.digest()),
            )
            .field("serve_pooled_transitions", report.pooled_transitions);
    }
    let mut json = doc.build().render();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write BENCH_fleet.json");

    // Observability export: every buffered event, then the richest
    // OpsReport the run produced (a sharded run's report carries
    // per-worker session-end snapshots; a thread run's does not).
    if let Some(path) = &obs_out {
        let ops = tcp
            .as_ref()
            .or(subprocess.as_ref())
            .map(|m| &m.ops)
            .unwrap_or(&measurements[measurements.len() - 1].ops);
        let mut jsonl = firm_obs::drain_events_jsonl();
        jsonl.push_str(&firm_wire::encode_line(ops));
        std::fs::write(path, jsonl).expect("write --obs-out file");
        println!("wrote {path}");
    }
    println!(
        "\nbest speedup: {:.2}x at {} threads (host has {host_cores} core(s))",
        measurements
            .iter()
            .map(|m| base / m.wall_secs)
            .fold(0.0, f64::max),
        measurements
            .iter()
            .min_by(|a, b| a.wall_secs.partial_cmp(&b.wall_secs).expect("finite"))
            .map(|m| m.threads)
            .unwrap_or(1),
    );
    println!("wrote {out_path}");
}
