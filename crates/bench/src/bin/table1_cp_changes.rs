//! Table 1: critical-path changes in the Fig. 2(b) compose-post subgraph
//! under performance-anomaly injection.
//!
//! Each case ⟨service, CP⟩ stresses the node hosting one service and
//! reports the mean individual (exclusive) latency of every service on
//! the dominant critical path, plus the end-to-end total — the same rows
//! the paper's Table 1 lists.

use std::collections::BTreeMap;

use firm_bench::{banner, paper_note, section, Args};
use firm_sim::spec::ClusterSpec;
use firm_sim::{
    AnomalyKind, AnomalySpec, NodeId, PoissonArrivals, SimDuration, SimTime, Simulation,
};
use firm_trace::TracingCoordinator;
use firm_workload::fig2_compose_post;

const SERVICES: [&str; 6] = ["N", "V", "U", "I", "T", "C"];

fn run_case(label: &str, anomalies: &[AnomalySpec], seconds: u64, seed: u64) {
    let app = fig2_compose_post();
    // Seven services on seven nodes: one service per node, so stressing
    // a node stresses exactly one service.
    let mut sim = Simulation::builder(ClusterSpec::small(7), app, seed)
        .arrivals(Box::new(PoissonArrivals::new(8.0)))
        .build();
    let mut coord = TracingCoordinator::new(100_000);

    // Warm up, then inject.
    sim.run_for(SimDuration::from_secs(5));
    sim.drain_completed();
    for a in anomalies {
        sim.inject(*a);
    }
    let measure_from = sim.now();
    sim.run_for(SimDuration::from_secs(seconds));
    coord.ingest(sim.drain_completed());

    // Mean exclusive latency per service across dominant-CP entries, and
    // the dominant CP signature.
    let mut per_service: BTreeMap<u16, (f64, u64)> = BTreeMap::new();
    let mut signatures: BTreeMap<Vec<u16>, u64> = BTreeMap::new();
    let mut total = 0.0;
    let mut n = 0u64;
    for cp in coord.critical_paths_since(measure_from) {
        let sig: Vec<u16> = cp.signature().iter().map(|s| s.raw()).collect();
        *signatures.entry(sig).or_insert(0) += 1;
        for e in &cp.entries {
            let slot = per_service.entry(e.service.raw()).or_insert((0.0, 0));
            slot.0 += e.exclusive.as_millis_f64();
            slot.1 += 1;
        }
        total += cp.total.as_millis_f64();
        n += 1;
    }
    let dominant = signatures
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(sig, c)| {
            let names: Vec<&str> = sig
                .iter()
                .map(|s| SERVICES.get(*s as usize).copied().unwrap_or("W"))
                .collect();
            format!("{} ({}% of traces)", names.join("->"), 100 * c / n.max(1))
        })
        .unwrap_or_else(|| "none".into());

    print!("  {label:<14}");
    for (idx, name) in SERVICES.iter().enumerate() {
        let (sum, cnt) = per_service.get(&(idx as u16)).copied().unwrap_or((0.0, 0));
        let mean = if cnt == 0 { 0.0 } else { sum / cnt as f64 };
        print!(" {name}={mean:>6.1}");
    }
    println!("  total={:>6.1}  CP: {dominant}", total / n.max(1) as f64);
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 40);
    let seed = args.u64("seed", 17);
    banner(
        "Table 1",
        "CP changes under performance-anomaly injection (per-service individual ms)",
    );
    section("cases (stressed service -> expected dominant CP)");

    // Placement is round-robin: service i lives on node i.
    let dur = SimDuration::from_secs(seconds + 5);
    run_case("baseline", &[], seconds, seed);
    run_case(
        "<V,CP1>",
        &[
            AnomalySpec::new(AnomalyKind::MemBwStress, NodeId(1), 1.0, dur),
            AnomalySpec::new(AnomalyKind::LlcStress, NodeId(1), 1.0, dur),
        ],
        seconds,
        seed + 1,
    );
    run_case(
        "<U,CP2>",
        &[AnomalySpec::new(
            AnomalyKind::CpuStress,
            NodeId(2),
            1.0,
            dur,
        )],
        seconds,
        seed + 2,
    );
    run_case(
        "<T,CP3>",
        &[AnomalySpec::new(
            AnomalyKind::CpuStress,
            NodeId(4),
            1.0,
            dur,
        )],
        seconds,
        seed + 3,
    );

    println!();
    paper_note("<V,CP1>: N=3.2 V=231.6 total=234.8 | <U,CP2>: N=2.3 U=344.6 I=28.9 total=375.8");
    paper_note("<T,CP3>: N=1.9 T=193.1 C=54.0 total=249.0 — the stressed service dominates its CP");
    let _ = SimTime::ZERO;
}
