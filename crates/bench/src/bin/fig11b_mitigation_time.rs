//! Fig. 11(b): SLO-violation mitigation time as training progresses —
//! FIRM checkpoints vs the flat K8s and AIMD baselines.
//!
//! For each checkpoint, an agent is trained from scratch for that many
//! episodes (deterministic seeds make the prefix identical to continued
//! training) and evaluated frozen on a fixed one-minute injection
//! scenario, measuring the time from SLO violation to recovery.

use firm_bench::{banner, paper_note, section, Args};
use firm_core::baselines::{AimdConfig, K8sConfig};
use firm_core::estimator::AgentRegime;
use firm_core::experiment::{run_scenario, ControllerKind, ScenarioConfig};
use firm_core::injector::CampaignConfig;
use firm_core::manager::{FirmConfig, FirmManager};
use firm_core::training::{train_into, TrainingConfig};
use firm_sim::spec::{AppSpec, ClusterSpec};
use firm_sim::{PoissonArrivals, SimDuration};
use firm_workload::apps::Benchmark;

/// Evaluates mean mitigation time of a controller on the fixed
/// evaluation scenario (continuous injections for one minute, §4.3).
fn evaluate(app: &AppSpec, controller: ControllerKind, seed: u64) -> f64 {
    let mut cfg = ScenarioConfig::new(app.clone(), controller);
    cfg.cluster = ClusterSpec::small(6);
    cfg.arrivals = Some(Box::new(PoissonArrivals::new(250.0)));
    cfg.duration = SimDuration::from_secs(60);
    cfg.warmup = SimDuration::from_secs(3);
    cfg.campaign = Some(CampaignConfig {
        lambda: 0.5,
        intensity: (0.7, 1.0),
        ..Default::default()
    });
    cfg.seed = seed;
    let r = run_scenario(cfg);
    r.mean_mitigation_secs()
}

/// Trains a fresh manager for `episodes` episodes in the given regime
/// and returns it frozen (no exploration, no learning).
fn checkpoint(app: &AppSpec, regime: AgentRegime, episodes: usize, seed: u64) -> FirmManager {
    let mut mgr = FirmManager::new(FirmConfig {
        training: true,
        regime,
        seed,
        ..FirmConfig::default()
    });
    if episodes > 0 {
        let cfg = TrainingConfig {
            episodes,
            max_steps: 30,
            ramp_episodes: (episodes / 3).max(1),
            min_steps: 8,
            arrival_rate: 250.0,
            cluster: ClusterSpec::small(6),
            regime,
            campaign: CampaignConfig {
                lambda: 0.6,
                intensity: (0.6, 1.0),
                ..Default::default()
            },
            seed,
            ..Default::default()
        };
        train_into(app, &cfg, &mut mgr);
    }
    mgr.config.training = false;
    mgr.config.explore = false;
    mgr.reset_environment();
    mgr
}

fn main() {
    let args = Args::from_env();
    let episodes = args.u64("episodes", 120) as usize;
    let checkpoints = args.u64("checkpoints", 6) as usize;
    let seed = args.u64("seed", 59);

    banner(
        "Fig. 11(b)",
        "SLO mitigation time vs training episodes (checkpoint evaluation)",
    );

    let mut app = Benchmark::TrainTicket.build();
    firm_core::slo::calibrate_slos(&mut app, &ClusterSpec::small(6), 250.0, 1.4, seed);

    // Flat baselines.
    let k8s = evaluate(&app, ControllerKind::K8s(K8sConfig::default()), seed);
    let aimd = evaluate(&app, ControllerKind::Aimd(AimdConfig::default()), seed);

    section("mitigation time by training progress (seconds; lower is better)");
    println!(
        "  {:>9} {:>14} {:>14}   (K8s flat: {:.1}s, AIMD flat: {:.1}s)",
        "episode", "FIRM single-RL", "FIRM multi-RL", k8s, aimd
    );

    let per_chunk = (episodes / checkpoints).max(1);
    let mut last_single = f64::NAN;
    for c in 0..=checkpoints {
        let n = c * per_chunk;
        eprintln!("[fig11b] checkpoint at {n} episodes...");
        let single = checkpoint(&app, AgentRegime::Shared, n, seed);
        let multi = checkpoint(&app, AgentRegime::PerService, n, seed + 1);
        let s = evaluate(
            &app,
            ControllerKind::Firm(Box::new(single)),
            seed + 31 + c as u64,
        );
        let m = evaluate(
            &app,
            ControllerKind::Firm(Box::new(multi)),
            seed + 61 + c as u64,
        );
        println!("  {:>9} {:>14.1} {:>14.1}", n, s, m);
        last_single = s;
    }

    println!(
        "\n  converged FIRM vs baselines: AIMD {} | K8s {}",
        firm_bench::factor(aimd, last_single),
        firm_bench::factor(k8s, last_single)
    );
    paper_note("FIRM converges to ≈1.7 s mitigation; up to 9.6x faster than AIMD, 30.1x than K8s;");
    paper_note("early checkpoints (≲900 iters) are no better than K8s autoscaling");
}
