//! Chaos soak: the fleet's recovery machinery under seeded fault
//! plans, checked for bit-identical output — the CI smoke for the
//! `firm-chaos` adversary and the supervisor/transport hardening.
//!
//! Runs the (truncated) scenario catalog once fault-free in process,
//! then once per `--chaos-seeds` entry over real workers whose
//! connections suffer the seed's derived [`firm_chaos::FaultPlan`]
//! (crashes, drops, truncations, corruption, blackholes, stalls,
//! heartbeat suppression). Every chaotic run must reproduce the
//! baseline report bytes, digest, pooled experience, and trained
//! weights exactly; any divergence panics, so the exit code is the
//! verdict.
//!
//! ```sh
//! cargo run --release -p firm-bench --bin chaos_soak -- \
//!     --scenarios 4 --seconds 3 --chaos-seeds 1,2,3 \
//!     --remote 127.0.0.1:7101,127.0.0.1:7102
//! ```
//!
//! `--remote addr1,addr2,...` soaks already-running
//! `firm-fleet-worker --listen` processes over chaos-wrapped TCP;
//! without it, `--workers N` (default 2) spawns chaos-wrapped
//! `firm-fleet-worker` subprocesses. `--timeout-ms` bounds each
//! dispatched request so a planned blackhole is reaped in seconds
//! (timeouts are recovery machinery and may never move a byte).
//! Observability riders `--log-level` and `--obs-out` mirror
//! `fleet_throughput`: the JSONL export carries the
//! `chaos.injected.*`, `fleet.reconnect.backoff_us`, and
//! retry/recycle counters the soak exercised.

use std::sync::atomic::Ordering;
use std::time::Instant;

use firm_bench::{banner, Args};
use firm_chaos::{ChaosTransport, FaultPlan};
use firm_fleet::transport::{PipeTransport, TcpTransport, Transport};
use firm_fleet::{builtin_catalog, FleetConfig, FleetRunner, Scenario};
use firm_sim::SimDuration;
use firm_wire::{JsonValue, Obj};

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 3);
    let take = args.u64("scenarios", 4) as usize;
    let seed = args.u64("seed", 7);
    let workers = args.u64("workers", 2) as usize;
    let timeout_ms = args.u64("timeout-ms", 3_000);
    let chaos_seeds: Vec<u64> = args
        .get("chaos-seeds")
        .unwrap_or("1,2,3")
        .split(',')
        .map(|s| s.trim().parse().expect("--chaos-seeds takes integers"))
        .collect();
    let remote: Vec<String> = args
        .get("remote")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let out_path = args.get("out").unwrap_or("BENCH_chaos.json").to_string();
    let obs_out = args.get("obs-out").map(str::to_string);
    if let Some(raw) = args.get("log-level") {
        match firm_obs::parse_filter(raw) {
            Ok(level) => firm_obs::set_level(level),
            Err(e) => panic!("--log-level: {e}"),
        }
    }

    let scenarios: Vec<Scenario> = builtin_catalog()
        .into_iter()
        .take(take.max(1))
        .map(|s| s.with_duration(SimDuration::from_secs(seconds)))
        .collect();
    let config = FleetConfig {
        threads: 2,
        seed,
        train_steps: 32,
        request_timeout_ms: timeout_ms,
        ..FleetConfig::default()
    };
    let slots = if remote.is_empty() {
        workers.max(1)
    } else {
        remote.len()
    };

    banner(
        "BENCH chaos_soak",
        "seeded fault injection over real workers: recovery must not move a byte",
    );
    println!(
        "catalog: {} scenarios x {seconds}s simulated; {} chaos-wrapped {} slot(s); \
         chaos seeds {:?}\n",
        scenarios.len(),
        slots,
        if remote.is_empty() { "pipe" } else { "tcp" },
        chaos_seeds,
    );

    let baseline = FleetRunner::new(config.clone()).run(&scenarios);
    let digest = baseline.report.digest();

    let mut rows = Vec::new();
    let mut last_ops = None;
    let mut total_injected = 0u64;
    for &chaos_seed in &chaos_seeds {
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        let mut counters = Vec::new();
        for slot in 0..slots {
            let inner: Box<dyn Transport> = if remote.is_empty() {
                Box::new(PipeTransport::new(config.resolve_worker_bin()))
            } else {
                Box::new(TcpTransport::new(remote[slot].clone()))
            };
            let chaos = ChaosTransport::new(inner, FaultPlan::derive(chaos_seed, slot));
            counters.push(chaos.injection_counter());
            transports.push(Box::new(chaos));
        }
        let start = Instant::now();
        let chaotic = FleetRunner::new(config.clone()).run_with_transports(&scenarios, transports);
        let wall_secs = start.elapsed().as_secs_f64();
        let injected: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        total_injected += injected;

        assert_eq!(
            baseline.report.to_json(),
            chaotic.report.to_json(),
            "report bytes moved under chaos seed {chaos_seed}"
        );
        assert_eq!(
            digest,
            chaotic.report.digest(),
            "digest moved under chaos seed {chaos_seed}"
        );
        assert_eq!(
            baseline.pooled, chaotic.pooled,
            "pooled experience moved under chaos seed {chaos_seed}"
        );
        assert_eq!(
            baseline.estimator.shared_agent().export_weights(),
            chaotic.estimator.shared_agent().export_weights(),
            "trained weights moved under chaos seed {chaos_seed}"
        );
        println!(
            "chaos-seed={chaos_seed:<3} wall={wall_secs:>6.2}s injected={injected:<2} \
             digest matches baseline"
        );
        rows.push(
            Obj::new()
                .field("chaos_seed", chaos_seed)
                .field("wall_secs", (wall_secs * 1_000.0).round() / 1_000.0)
                .field("injected", injected)
                .field("digest_matches", true)
                .build(),
        );
        last_ops = Some(chaotic.ops);
    }
    println!(
        "\nall {} chaos seeds bit-identical to the fault-free run \
         (digest {digest:016x}, {total_injected} faults injected)",
        chaos_seeds.len(),
    );

    let rows: Vec<JsonValue> = rows;
    let doc = Obj::new()
        .field("bench", "chaos_soak")
        .field("scenarios", scenarios.len())
        .field("sim_seconds_each", seconds)
        .field("seed", seed)
        .field("slots", slots)
        .field("transport", if remote.is_empty() { "pipe" } else { "tcp" })
        .field("report_digest", format!("{digest:016x}"))
        .field("total_injected", total_injected)
        .field("runs", rows);
    let mut json = doc.build().render();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write BENCH_chaos.json");

    if let Some(path) = &obs_out {
        let mut jsonl = firm_obs::drain_events_jsonl();
        if let Some(ops) = &last_ops {
            jsonl.push_str(&firm_wire::encode_line(ops));
        }
        std::fs::write(path, jsonl).expect("write --obs-out file");
        println!("wrote {path}");
    }
    println!("wrote {out_path}");
}
