//! Table 6: average latency for resource-management operations.
//!
//! Samples each actuation-latency class through the simulator's actuator
//! model and verifies the measured mean/SD against the paper's values
//! (which the model encodes), then measures the end-to-end command
//! application latency inside a live simulation.

use firm_bench::{banner, paper_note, section, Args};
use firm_sim::actuator::table6;
use firm_sim::spec::{AppSpec, ClusterSpec};
use firm_sim::{Command, InstanceId, ResourceKind, SimRng, Simulation};

fn main() {
    let args = Args::from_env();
    let samples = args.u64("samples", 5_000) as usize;
    banner(
        "Table 6",
        "Avg. latency for resource management operations (partition + container start)",
    );

    let classes = [
        (
            "CPU partition (cgroups cpu.cfs_quota_us)",
            table6::CPU,
            2.1,
            0.3,
        ),
        ("Mem partition (Intel MBA)", table6::MEM, 42.4, 11.0),
        ("LLC partition (Intel CAT)", table6::LLC, 39.8, 9.2),
        ("I/O partition (cgroups blkio)", table6::IO, 2.3, 0.4),
        ("Net partition (tc HTB)", table6::NET, 12.3, 1.1),
        ("Container start (warm)", table6::CONTAINER_WARM, 45.7, 6.9),
        (
            "Container start (cold)",
            table6::CONTAINER_COLD,
            2050.8,
            291.4,
        ),
    ];

    section("sampled actuation latencies");
    println!(
        "  {:<42} {:>10} {:>9} | paper mean/SD",
        "operation", "mean (ms)", "SD (ms)"
    );
    let mut rng = SimRng::new(6);
    for (name, class, paper_mean, paper_sd) in classes {
        let xs: Vec<f64> = (0..samples)
            .map(|_| class.sample(&mut rng).as_millis_f64())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        println!(
            "  {:<42} {:>10.1} {:>9.1} | {:>7.1} / {:.1}",
            name,
            mean,
            var.sqrt(),
            paper_mean,
            paper_sd
        );
    }

    section("in-simulation command application (issue → effect)");
    let mut sim =
        Simulation::builder(ClusterSpec::small(2), AppSpec::three_tier_demo(), 66).build();
    let cmds = [
        (
            "SetPartition cpu",
            Command::SetPartition {
                instance: InstanceId(0),
                kind: ResourceKind::Cpu,
                amount: 3.0,
            },
        ),
        (
            "SetPartition mem",
            Command::SetPartition {
                instance: InstanceId(0),
                kind: ResourceKind::MemBw,
                amount: 4_000.0,
            },
        ),
        (
            "ScaleOut warm",
            Command::ScaleOut {
                service: firm_sim::ServiceId(1),
                warm: true,
            },
        ),
        (
            "ScaleOut cold",
            Command::ScaleOut {
                service: firm_sim::ServiceId(2),
                warm: false,
            },
        ),
    ];
    for (name, cmd) in cmds {
        let latency = sim.apply(cmd);
        println!("  {:<42} {:>10.1} ms", name, latency.as_millis_f64());
    }
    paper_note("§5: 2.1–45.7 ms partition ops lower-bound any mitigation; cold start ≈ 2 s");
}
