//! §3.1 overhead claim: distributed tracing and telemetry collection
//! cost <0.2% throughput and <0.11% latency in the paper's deployment.
//!
//! Inside the simulator, tracing is free *in simulated time* by
//! construction; the honest reproduction of the claim is the harness-side
//! cost: the wall-clock overhead of span collection, graph construction,
//! CP extraction and telemetry folding relative to the simulation itself.

use std::time::Instant;

use firm_bench::{banner, paper_note, section, Args};
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration, Simulation};
use firm_telemetry::TelemetryCollector;
use firm_trace::TracingCoordinator;
use firm_workload::apps::Benchmark;

fn run(seconds: u64, rate: f64, seed: u64, with_tracing: bool) -> (f64, u64) {
    let app = Benchmark::SocialNetwork.build();
    let mut sim = Simulation::builder(ClusterSpec::small(6), app, seed)
        .arrivals(Box::new(PoissonArrivals::new(rate)))
        .build();
    let mut coord = TracingCoordinator::new(1_000_000);
    let mut collector = TelemetryCollector::new(256);
    let t0 = Instant::now();
    let mut traces = 0u64;
    for _ in 0..seconds {
        sim.run_for(SimDuration::from_secs(1));
        let completed = sim.drain_completed();
        traces += completed.len() as u64;
        if with_tracing {
            coord.ingest(completed);
            collector.collect(&sim.drain_telemetry());
            // The coordinator pre-extracts CPs at ingestion; touch the
            // query path too.
            let _ = coord
                .critical_paths_since(firm_sim::SimTime::from_secs(
                    sim.now().as_micros() / 1_000_000 - 1,
                ))
                .len();
            coord.evict_before(firm_sim::SimTime::from_micros(
                sim.now().as_micros().saturating_sub(30_000_000),
            ));
        } else {
            sim.drain_telemetry();
        }
    }
    (t0.elapsed().as_secs_f64(), traces)
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 30);
    let rate = args.f64("rate", 300.0);
    let seed = args.u64("seed", 61);

    banner(
        "§3.1 overhead",
        "Tracing + telemetry collection overhead (harness wall-clock)",
    );

    // Interleave repetitions to damp machine noise.
    let mut with = 0.0;
    let mut without = 0.0;
    let mut traces = 0;
    for rep in 0..3 {
        let (w, t) = run(seconds, rate, seed + rep, true);
        let (wo, _) = run(seconds, rate, seed + rep, false);
        with += w;
        without += wo;
        traces += t;
    }

    section("results");
    println!("  simulated load: {rate} req/s x {seconds}s x 3 reps = {traces} traces");
    println!("  wall clock without tracing: {without:.3}s");
    println!("  wall clock with  tracing:   {with:.3}s");
    let overhead = (with - without) / without * 100.0;
    println!("  harness overhead: {overhead:.2}%");
    println!(
        "  per-trace cost: {:.1} us (ingest + graph build + CP extraction + telemetry)",
        (with - without) * 1e6 / traces as f64
    );
    println!("\n  in-simulation overhead: 0 by construction (spans are recorded out of band,");
    println!("  as the paper's agents do off the request path)");
    paper_note("<0.2% throughput loss and <0.11% latency loss from tracing (§3.1)");
}
