//! Fig. 1: the motivating experiment — tail-latency spikes from
//! memory-bandwidth contention that the Kubernetes autoscaler cannot see
//! (CPU utilization never moves) but FIRM mitigates.
//!
//! One memory-bandwidth anomaly hits the node hosting the Social Network
//! read path mid-run. The same timeline is produced under (a) the K8s
//! HPA and (b) FIRM; printed per 5-second window: p99 latency, average
//! container CPU utilization, and per-core DRAM access of the victim
//! node.

use firm_bench::{banner, paper_note, section, Args};
use firm_core::baselines::{K8sConfig, K8sHpaController};
use firm_core::controller::{Controller, TickContext};
use firm_core::training::{train_firm, TrainingConfig};
use firm_sim::spec::ClusterSpec;
use firm_sim::{AnomalyKind, AnomalySpec, PoissonArrivals, SimDuration, Simulation};
use firm_workload::apps::Benchmark;

struct Timeline {
    rows: Vec<(u64, f64, f64, f64)>,
}

/// Drives any [`Controller`] through the Fig. 1 timeline: one shared
/// code path, window traces drained exactly once (no per-controller
/// measurement forks, no boundary double-counts).
fn run(controller: &mut dyn Controller, seconds: u64, rate: f64, seed: u64) -> Timeline {
    let mut app = Benchmark::SocialNetwork.build();
    let cluster = ClusterSpec::small(6);
    firm_core::slo::calibrate_slos(&mut app, &cluster, rate, 1.4, seed);
    let mut sim = Simulation::builder(cluster, app, seed)
        .arrivals(Box::new(PoissonArrivals::new(rate)))
        .build();

    // The anomaly: memory-bandwidth contention on the node hosting the
    // post-storage memcached, from t=60 s to t=240 s (like Fig. 1).
    let victim_svc = sim.app().service_by_name("post-storage-memcached").unwrap();
    let victim = sim.replicas(victim_svc)[0];
    let start = seconds / 5;
    sim.inject_at(
        AnomalySpec::at_instance(
            AnomalyKind::MemBwStress,
            victim,
            0.95,
            SimDuration::from_secs(seconds * 3 / 5),
        ),
        firm_sim::SimTime::from_secs(start),
    );

    let mut rows = Vec::new();
    let window = 5u64;
    let interval = SimDuration::from_secs(1);
    let mut t = 0;
    while t < seconds {
        // Controllers tick at 1 s inside each 5 s reporting window.
        let mut lats: Vec<f64> = Vec::new();
        let mut cpu_util_sum = 0.0;
        let mut dram = 0.0;
        let mut n_util = 0.0f64;
        for _ in 0..window {
            let window_start = sim.now();
            sim.run_for(interval);
            let completed = sim.drain_completed();
            let telemetry = sim.drain_telemetry();
            for r in &completed {
                if !r.dropped {
                    lats.push(r.latency.as_micros() as f64);
                }
            }
            for i in &telemetry.instances {
                cpu_util_sum += i.utilization.get(firm_sim::ResourceKind::Cpu);
                n_util += 1.0;
                if i.instance == victim {
                    dram = i.per_core_dram_mbps;
                }
            }
            controller.tick(
                &mut sim,
                TickContext {
                    window_start,
                    control_interval: interval,
                    completed,
                    telemetry,
                },
            );
        }
        t += window;
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p99 = firm_sim::stats::sample_quantile(&lats, 0.99) / 1e3;
        rows.push((t, p99, cpu_util_sum / n_util.max(1.0) * 100.0, dram));
    }
    Timeline { rows }
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 150);
    let rate = args.f64("rate", 350.0);
    let seed = args.u64("seed", 43);
    let episodes = args.u64("episodes", 60) as usize;

    banner(
        "Fig. 1",
        "Latency spikes from memory-bandwidth contention: K8s autoscaling vs FIRM",
    );

    // Pre-train FIRM online against the injector (§3.6/§4.3).
    eprintln!("[fig01] pre-training FIRM for {episodes} episodes...");
    let mut train_app = Benchmark::SocialNetwork.build();
    firm_core::slo::calibrate_slos(&mut train_app, &ClusterSpec::small(6), rate, 1.4, seed);
    let cfg = TrainingConfig {
        episodes,
        max_steps: 30,
        ramp_episodes: episodes / 3,
        min_steps: 10,
        arrival_rate: rate,
        cluster: ClusterSpec::small(6),
        campaign: firm_core::injector::CampaignConfig {
            lambda: 0.6,
            intensity: (0.6, 1.0),
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    let (_, mut manager) = train_firm(&train_app, &cfg);
    manager.config.explore = false;
    manager.reset_environment();

    let mut hpa = K8sHpaController::new(K8sConfig::default(), train_app.services.len());
    let k8s = run(&mut hpa, seconds, rate, seed);
    let firm = run(&mut manager, seconds, rate, seed);

    section("timeline (anomaly active in the middle three-fifths of the run)");
    println!(
        "  {:>5} | {:>12} {:>9} {:>11} | {:>12} {:>9} {:>11}",
        "t(s)", "K8s p99(ms)", "cpu(%)", "dram(MB/s)", "FIRM p99(ms)", "cpu(%)", "dram(MB/s)"
    );
    for (a, b) in k8s.rows.iter().zip(&firm.rows) {
        println!(
            "  {:>5} | {:>12.1} {:>9.1} {:>11.0} | {:>12.1} {:>9.1} {:>11.0}",
            a.0, a.1, a.2, a.3, b.1, b.2, b.3
        );
    }

    // Summary over the anomalous stretch.
    let mid = |t: &Timeline| {
        let lo = t.rows.len() / 5;
        let hi = t.rows.len() * 4 / 5;
        let xs = &t.rows[lo..hi];
        xs.iter().map(|r| r.1).sum::<f64>() / xs.len() as f64
    };
    println!(
        "\n  mean p99 during contention: K8s {:.1} ms vs FIRM {:.1} ms ({})",
        mid(&k8s),
        mid(&firm),
        firm_bench::factor(mid(&k8s), mid(&firm))
    );
    paper_note("K8s: sustained tail spike, CPU util flat (blind); FIRM restores per-core DRAM access and the tail recovers");
}
