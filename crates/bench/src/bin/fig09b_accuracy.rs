//! Fig. 9(b): localization accuracy under multi-anomaly injection, per
//! benchmark and per processor architecture (x86 vs ppc64 clusters).
//!
//! The extractor trains online on single/multi-anomaly rounds, then its
//! accuracy is evaluated on windows with two simultaneous container-level
//! anomalies of random types — the paper reports 92.8–94.6% (overall
//! 93.8%) with no difference between ISAs.

use firm_bench::{banner, paper_note, Args};
use firm_core::extractor::CriticalComponentExtractor;
use firm_sim::instance::InstanceState;
use firm_sim::spec::{ClusterSpec, NodeSpec};
use firm_sim::{
    anomaly::ANOMALY_KINDS, AnomalySpec, InstanceId, PoissonArrivals, SimDuration, SimRng,
    Simulation,
};
use firm_trace::TracingCoordinator;
use firm_workload::apps::{Benchmark, ALL_BENCHMARKS};

fn cluster_of(arch: &str) -> ClusterSpec {
    let node = match arch {
        "x86" => NodeSpec::x86_default(),
        _ => NodeSpec::ppc64_default(),
    };
    ClusterSpec {
        nodes: (0..6).map(|_| node.clone()).collect(),
    }
}

/// Trains on `train_rounds` violating rounds, evaluates on `eval_rounds`
/// multi-anomaly rounds; returns accuracy.
fn run(bench: Benchmark, arch: &str, rounds: (usize, usize), rate: f64, seed: u64) -> f64 {
    let (train_rounds, eval_rounds) = rounds;
    let mut app = bench.build();
    let cluster = cluster_of(arch);
    firm_core::slo::calibrate_slos(&mut app, &cluster, rate, 1.4, seed);
    let mut sim = Simulation::builder(cluster, app, seed)
        .arrivals(Box::new(PoissonArrivals::new(rate)))
        .build();
    let mut coord = TracingCoordinator::new(300_000);
    let mut extractor = CriticalComponentExtractor::new(seed ^ 0x9B);
    let mut rng = SimRng::new(seed ^ 0xB00);
    let stressors: Vec<_> = ANOMALY_KINDS
        .iter()
        .copied()
        .filter(|k| k.contended_resource().is_some())
        .collect();

    sim.run_for(SimDuration::from_secs(4));
    coord.ingest(sim.drain_completed());
    let mut targets: Vec<InstanceId> = Vec::new();
    for cp in coord.critical_paths_since(firm_sim::SimTime::ZERO) {
        for e in &cp.entries {
            if !targets.contains(&e.instance) {
                targets.push(e.instance);
            }
        }
    }

    let mut correct = 0u64;
    let mut total = 0u64;
    for round in 0..train_rounds + eval_rounds {
        // One or two simultaneous anomalies (training mixes both so the
        // SVM sees the multi-anomaly regime too).
        let n_anoms = if round % 2 == 0 { 2 } else { 1 };
        let mut victims = Vec::new();
        for _ in 0..n_anoms {
            let kind = stressors[rng.index(stressors.len())];
            let target = targets[rng.index(targets.len())];
            let running = sim.instance(target).state == InstanceState::Running;
            if !running || victims.contains(&target) {
                continue;
            }
            sim.inject(AnomalySpec::at_instance(
                kind,
                target,
                rng.uniform_range(0.7, 1.0),
                SimDuration::from_secs(3),
            ));
            victims.push(target);
        }

        let window_start = sim.now();
        sim.run_for(SimDuration::from_secs(5));
        coord.ingest(sim.drain_completed());
        let features = extractor.features(coord.traces_since(window_start));
        for f in &features {
            let label = victims.contains(&f.instance);
            if round < train_rounds {
                extractor.train(f, label);
            } else {
                if extractor.classify(f) == label {
                    correct += 1;
                }
                total += 1;
            }
        }
        sim.run_for(SimDuration::from_secs(2));
        coord.ingest(sim.drain_completed());
        coord.evict_before(sim.now());
    }
    if total == 0 {
        return f64::NAN;
    }
    correct as f64 / total as f64
}

fn main() {
    let args = Args::from_env();
    let train_rounds = args.u64("train-rounds", 40) as usize;
    let eval_rounds = args.u64("rounds", 20) as usize;
    let seed = args.u64("seed", 41);

    banner(
        "Fig. 9(b)",
        "Multi-anomaly localization accuracy across benchmarks and ISAs",
    );
    println!(
        "  {:<20} {:>12} {:>12}",
        "benchmark", "Intel Xeon", "IBM Power"
    );
    let mut all = Vec::new();
    for (i, bench) in ALL_BENCHMARKS.iter().enumerate() {
        // Loads chosen so each app sits at moderate utilization.
        let rate = match bench {
            Benchmark::HotelReservation => 500.0,
            Benchmark::TrainTicket => 250.0,
            _ => 350.0,
        };
        let x86 = run(
            *bench,
            "x86",
            (train_rounds, eval_rounds),
            rate,
            seed + i as u64,
        );
        let ppc = run(
            *bench,
            "ppc64",
            (train_rounds, eval_rounds),
            rate,
            seed + 100 + i as u64,
        );
        println!(
            "  {:<20} {:>11.1}% {:>11.1}%",
            bench.name(),
            x86 * 100.0,
            ppc * 100.0
        );
        all.push(x86);
        all.push(ppc);
    }
    let overall = all.iter().sum::<f64>() / all.len() as f64;
    println!("\n  overall average accuracy: {:.1}%", overall * 100.0);
    paper_note("92.8–94.6% per benchmark, 93.8% overall; no difference between the two ISAs");
}
