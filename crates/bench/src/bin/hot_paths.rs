//! Per-stage hot-path microbench: times each layer of the
//! request → trace → features → train pipeline in isolation and emits
//! `BENCH_hotpaths.json`, so a future PR that regresses one layer shows
//! up as *that* stage slowing down rather than as an unexplained drop
//! in `fleet_throughput`.
//!
//! Pipeline stages:
//!
//! * `sim_only` — the discrete-event engine alone (drain and drop);
//! * `sim_ingest` — plus the tracing coordinator (graph + critical-path
//!   construction per trace);
//! * `sim_extract` — plus Algorithm 2 feature extraction per window;
//! * `ddpg_train` — one-for-all agent minibatch updates (paper dims);
//! * `wire_encode` / `wire_decode` — fleet-report codec round trip.
//!
//! Kernel stages break `ddpg_train` down by the linear-algebra
//! primitive, at the exact shapes the paper's networks hit (batch 64,
//! hidden 40×40, critic in 23, actor in 8):
//!
//! * `kernel_matmul_fwd` — forward `x·Wᵀ` ([`Matrix::matmul_transpose_b_into`]);
//! * `kernel_matmul_bwd` — input gradients `dz·W` ([`Matrix::matmul_into`]);
//! * `kernel_grad_acc` — weight/bias gradient accumulation
//!   (`dzᵀ·x` via [`Matrix::transpose_matmul_acc`] + column sums);
//! * `kernel_activations` — ReLU/tanh element maps;
//! * `kernel_soft_update` — Algorithm 3's target-network blend.
//!
//! ```sh
//! cargo run --release -p firm-bench --bin hot_paths -- \
//!     --seconds 10 --out BENCH_hotpaths.json
//! ```
//!
//! The workloads are seeded and deterministic; only the timings vary by
//! host. `--seconds`, `--train-steps`, `--kernel-iters` and
//! `--codec-iters` trade precision for runtime (CI smoke uses small
//! values). Per-iteration percentiles are exact order statistics over
//! the recorded samples — not log2-bucket upper bounds — so a 1.5×
//! kernel win moves the reported p50 by 1.5×, not by zero-or-2×.

use std::time::Instant;

use firm_bench::{banner, Args};
use firm_core::estimator::{ACTION_DIM, ACTOR_STATE_DIM, STATE_DIM};
use firm_core::extractor::CriticalComponentExtractor;
use firm_fleet::{FleetReport, ScenarioOutcome};
use firm_ml::ddpg::{DdpgAgent, DdpgConfig, Transition};
use firm_ml::nn::{Activation, Mlp};
use firm_ml::rng::MlRng;
use firm_ml::Matrix;
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration, Simulation};
use firm_trace::TracingCoordinator;
use firm_wire::{decode_string, encode_string, JsonValue, Obj};
use firm_workload::apps::Benchmark;

/// The paper's minibatch size — every kernel stage runs at this height.
const BATCH: usize = 64;
/// Hidden width of both paper networks (two 40-unit layers).
const HIDDEN: usize = 40;

struct Stage {
    name: &'static str,
    wall_secs: f64,
    units: u64,
    unit: &'static str,
    /// Per-iteration wall times (µs), one sample per sim window, train
    /// step, kernel pass, or codec document — sorted ascending, so the
    /// percentile accessors below are exact order statistics.
    samples: Vec<u64>,
}

impl Stage {
    fn new(
        name: &'static str,
        wall_secs: f64,
        units: u64,
        unit: &'static str,
        mut samples: Vec<u64>,
    ) -> Self {
        samples.sort_unstable();
        Stage {
            name,
            wall_secs,
            units,
            unit,
            samples,
        }
    }

    fn per_sec(&self) -> f64 {
        self.units as f64 / self.wall_secs.max(1e-9)
    }

    fn us_per_unit(&self) -> f64 {
        self.wall_secs * 1e6 / self.units.max(1) as f64
    }

    /// Nearest-rank percentile over the exact samples.
    fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let rank = (q * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.clamp(1, self.samples.len()) - 1]
    }

    fn max(&self) -> u64 {
        self.samples.last().copied().unwrap_or(0)
    }
}

fn sim() -> Simulation {
    Simulation::builder(ClusterSpec::small(4), Benchmark::SocialNetwork.build(), 7)
        .arrivals(Box::new(PoissonArrivals::new(300.0)))
        .build()
}

/// Stage 1: the engine alone — completed requests are drained and
/// dropped every 1s window.
fn sim_only(secs: u64) -> Stage {
    let mut s = sim();
    let mut samples = Vec::with_capacity(secs as usize);
    let start = Instant::now();
    let mut requests = 0u64;
    for _ in 0..secs {
        let window = Instant::now();
        s.run_for(SimDuration::from_secs(1));
        requests += s.drain_completed().len() as u64;
        let _ = s.drain_telemetry();
        samples.push(window.elapsed().as_micros() as u64);
    }
    Stage::new(
        "sim_only",
        start.elapsed().as_secs_f64(),
        requests,
        "requests",
        samples,
    )
}

/// Stage 2: engine + trace ingestion (graph and CP construction).
fn sim_ingest(secs: u64) -> Stage {
    let mut s = sim();
    let mut coord = TracingCoordinator::new(200_000);
    let mut samples = Vec::with_capacity(secs as usize);
    let start = Instant::now();
    for _ in 0..secs {
        let window = Instant::now();
        s.run_for(SimDuration::from_secs(1));
        coord.ingest(s.drain_completed());
        let _ = s.drain_telemetry();
        samples.push(window.elapsed().as_micros() as u64);
    }
    Stage::new(
        "sim_ingest",
        start.elapsed().as_secs_f64(),
        coord.store().total_ingested(),
        "requests",
        samples,
    )
}

/// Stage 3: engine + ingestion + Algorithm 2 features per window.
fn sim_extract(secs: u64) -> Stage {
    let mut s = sim();
    let mut coord = TracingCoordinator::new(200_000);
    let mut extractor = CriticalComponentExtractor::new(7);
    let mut samples = Vec::with_capacity(secs as usize);
    let start = Instant::now();
    let mut feature_rows = 0u64;
    for _ in 0..secs {
        let window_start = s.now();
        let window = Instant::now();
        s.run_for(SimDuration::from_secs(1));
        coord.ingest(s.drain_completed());
        let _ = s.drain_telemetry();
        feature_rows += extractor.features(coord.traces_since(window_start)).len() as u64;
        samples.push(window.elapsed().as_micros() as u64);
    }
    assert!(feature_rows > 0, "extractor produced no features");
    Stage::new(
        "sim_extract",
        start.elapsed().as_secs_f64(),
        coord.store().total_ingested(),
        "requests",
        samples,
    )
}

/// Stage 4: DDPG minibatch updates at the paper's dimensions.
fn ddpg_train(steps: u64) -> Stage {
    let mut agent = DdpgAgent::new(DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM), 7);
    let mut rng = MlRng::new(42);
    for _ in 0..1_000 {
        let state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.uniform_range(-1.0, 1.0))
            .collect();
        let next_state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.uniform_range(-1.0, 1.0))
            .collect();
        let action: Vec<f64> = (0..ACTION_DIM)
            .map(|_| rng.uniform_range(-1.0, 1.0))
            .collect();
        agent.observe(Transition {
            state,
            action,
            reward: rng.uniform_range(0.0, 5.0),
            next_state,
            done: false,
        });
    }
    let mut samples = Vec::with_capacity(steps as usize);
    let start = Instant::now();
    for _ in 0..steps {
        let step = Instant::now();
        agent.train_step().expect("replay holds a full batch");
        samples.push(step.elapsed().as_micros() as u64);
    }
    Stage::new(
        "ddpg_train",
        start.elapsed().as_secs_f64(),
        steps,
        "train steps",
        samples,
    )
}

/// The layer shapes one train step's network passes touch, as
/// `(fan_in, fan_out)` per layer: critic (23→40→40→1) and actor
/// (8→40→40→5), exactly what [`DdpgConfig::paper`] builds.
fn paper_layer_shapes() -> Vec<(usize, usize)> {
    let critic_in = STATE_DIM + ACTION_DIM;
    vec![
        (critic_in, HIDDEN),
        (HIDDEN, HIDDEN),
        (HIDDEN, 1),
        (ACTOR_STATE_DIM, HIDDEN),
        (HIDDEN, HIDDEN),
        (HIDDEN, ACTION_DIM),
    ]
}

fn random_matrix(rows: usize, cols: usize, rng: &mut MlRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform_range(-1.0, 1.0))
}

/// A gradient-like matrix with ReLU-style zeros (~40% of entries), so
/// the backward kernels' zero-skip paths see realistic sparsity.
fn masked_matrix(rows: usize, cols: usize, rng: &mut MlRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.uniform_range(0.0, 1.0) < 0.4 {
            0.0
        } else {
            rng.uniform_range(-1.0, 1.0)
        }
    })
}

/// Kernel stage: forward projections `x·Wᵀ` for every paper layer.
fn kernel_matmul_fwd(iters: u64) -> Stage {
    let mut rng = MlRng::new(7);
    let work: Vec<(Matrix, Matrix, Matrix)> = paper_layer_shapes()
        .into_iter()
        .map(|(fan_in, fan_out)| {
            (
                random_matrix(BATCH, fan_in, &mut rng),
                random_matrix(fan_out, fan_in, &mut rng),
                Matrix::zeros(BATCH, fan_out),
            )
        })
        .collect();
    let mut work = work;
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    for _ in 0..iters {
        let pass = Instant::now();
        for (x, w, out) in &mut work {
            x.matmul_transpose_b_into(w, out);
        }
        samples.push(pass.elapsed().as_micros() as u64);
    }
    std::hint::black_box(&work);
    Stage::new(
        "kernel_matmul_fwd",
        start.elapsed().as_secs_f64(),
        iters,
        "passes",
        samples,
    )
}

/// Kernel stage: input gradients `dz·W` for every paper layer.
fn kernel_matmul_bwd(iters: u64) -> Stage {
    let mut rng = MlRng::new(8);
    let work: Vec<(Matrix, Matrix, Matrix)> = paper_layer_shapes()
        .into_iter()
        .map(|(fan_in, fan_out)| {
            (
                masked_matrix(BATCH, fan_out, &mut rng),
                random_matrix(fan_out, fan_in, &mut rng),
                Matrix::zeros(BATCH, fan_in),
            )
        })
        .collect();
    let mut work = work;
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    for _ in 0..iters {
        let pass = Instant::now();
        for (dz, w, gin) in &mut work {
            dz.matmul_into(w, gin);
        }
        samples.push(pass.elapsed().as_micros() as u64);
    }
    std::hint::black_box(&work);
    Stage::new(
        "kernel_matmul_bwd",
        start.elapsed().as_secs_f64(),
        iters,
        "passes",
        samples,
    )
}

/// Kernel stage: weight/bias gradient accumulation (`dzᵀ·x` + column
/// sums) for every paper layer.
fn kernel_grad_acc(iters: u64) -> Stage {
    let mut rng = MlRng::new(9);
    let mut work: Vec<(Matrix, Matrix, Matrix, Vec<f64>)> = paper_layer_shapes()
        .into_iter()
        .map(|(fan_in, fan_out)| {
            (
                masked_matrix(BATCH, fan_out, &mut rng),
                random_matrix(BATCH, fan_in, &mut rng),
                Matrix::zeros(fan_out, fan_in),
                vec![0.0; fan_out],
            )
        })
        .collect();
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    for _ in 0..iters {
        let pass = Instant::now();
        for (dz, x, grad_w, grad_b) in &mut work {
            dz.transpose_matmul_acc(x, grad_w);
            dz.col_sums_acc(grad_b);
        }
        samples.push(pass.elapsed().as_micros() as u64);
    }
    std::hint::black_box(&work);
    Stage::new(
        "kernel_grad_acc",
        start.elapsed().as_secs_f64(),
        iters,
        "passes",
        samples,
    )
}

/// Kernel stage: the element-wise activation maps of one train step's
/// forward passes — four hidden ReLUs and the actor's tanh output.
/// Scratch is refreshed from pristine inputs outside the timed region,
/// so the samples cover the maps alone.
fn kernel_activations(iters: u64) -> Stage {
    let mut rng = MlRng::new(10);
    let shapes = [
        (HIDDEN, Activation::Relu),
        (HIDDEN, Activation::Relu),
        (HIDDEN, Activation::Relu),
        (HIDDEN, Activation::Relu),
        (ACTION_DIM, Activation::Tanh),
    ];
    let sources: Vec<Matrix> = shapes
        .iter()
        .map(|&(cols, _)| random_matrix(BATCH, cols, &mut rng))
        .collect();
    let mut scratch: Vec<Matrix> = sources.clone();
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    for _ in 0..iters {
        for (dst, src) in scratch.iter_mut().zip(&sources) {
            dst.copy_from(src);
        }
        let pass = Instant::now();
        for (m, &(_, act)) in scratch.iter_mut().zip(&shapes) {
            match act {
                Activation::Relu => m.map_inplace(|v| v.max(0.0)),
                Activation::Tanh => m.map_inplace(f64::tanh),
                Activation::Identity => {}
            }
        }
        samples.push(pass.elapsed().as_micros() as u64);
    }
    std::hint::black_box(&scratch);
    Stage::new(
        "kernel_activations",
        start.elapsed().as_secs_f64(),
        iters,
        "passes",
        samples,
    )
}

/// Kernel stage: Algorithm 3's target-network soft updates — both
/// target nets blended toward their online nets, as one train step does.
fn kernel_soft_update(iters: u64) -> Stage {
    let critic_in = STATE_DIM + ACTION_DIM;
    let critic = Mlp::new(
        &[critic_in, HIDDEN, HIDDEN, 1],
        Activation::Relu,
        Activation::Identity,
        11,
    );
    let actor = Mlp::new(
        &[ACTOR_STATE_DIM, HIDDEN, HIDDEN, ACTION_DIM],
        Activation::Relu,
        Activation::Tanh,
        12,
    );
    let mut critic_target = critic.clone();
    let mut actor_target = actor.clone();
    let tau = DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM).tau;
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    for _ in 0..iters {
        let pass = Instant::now();
        critic_target.soft_update_from(&critic, tau);
        actor_target.soft_update_from(&actor, tau);
        samples.push(pass.elapsed().as_micros() as u64);
    }
    std::hint::black_box((&critic_target, &actor_target));
    Stage::new(
        "kernel_soft_update",
        start.elapsed().as_secs_f64(),
        iters,
        "passes",
        samples,
    )
}

/// A synthetic 12-scenario fleet report for the codec stages.
fn synthetic_report() -> FleetReport {
    let outcomes = (0..12)
        .map(|i| ScenarioOutcome {
            name: format!("synthetic-{i:02}"),
            benchmark: "Social Network",
            controller: "FIRM",
            load: format!("steady@{}", 100 + i),
            seed: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1),
            ticks: 20 + i,
            arrivals: 10_000 + 137 * i,
            completions: 9_900 + 131 * i,
            drops: i % 3,
            slo_violations: 17 * i % 97,
            p50_us: 4_000 + 13 * i,
            p99_us: 21_000 + 977 * i,
            mean_latency_us: 6250.25 + i as f64 / 3.0,
            anomalies_injected: i % 5,
            mitigations: i % 4,
            mean_mitigation_secs: i as f64 * 0.75,
            transitions: 40 * i,
            svm_examples: 400 * i,
        })
        .collect();
    FleetReport::new(7, outcomes)
}

/// Stage 5: fleet-report wire encoding.
fn wire_encode(iters: u64) -> Stage {
    let report = synthetic_report();
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..iters {
        let doc = Instant::now();
        bytes += encode_string(std::hint::black_box(&report)).len();
        samples.push(doc.elapsed().as_micros() as u64);
    }
    assert!(bytes > 0);
    Stage::new(
        "wire_encode",
        start.elapsed().as_secs_f64(),
        iters,
        "documents",
        samples,
    )
}

/// Stage 6: fleet-report wire decoding.
fn wire_decode(iters: u64) -> Stage {
    let report = synthetic_report();
    let json = encode_string(&report);
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    for _ in 0..iters {
        let doc = Instant::now();
        let back: FleetReport = decode_string(std::hint::black_box(&json)).expect("report decodes");
        std::hint::black_box(&back);
        samples.push(doc.elapsed().as_micros() as u64);
    }
    Stage::new(
        "wire_decode",
        start.elapsed().as_secs_f64(),
        iters,
        "documents",
        samples,
    )
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 10);
    let train_steps = args.u64("train-steps", 500);
    let kernel_iters = args.u64("kernel-iters", 2_000);
    let codec_iters = args.u64("codec-iters", 2_000);
    let out_path = args.get("out").unwrap_or("BENCH_hotpaths.json").to_string();

    banner(
        "BENCH hot_paths",
        "per-stage hot-path timings: sim / ingest / extract / train / kernels / codec",
    );

    let stages = vec![
        sim_only(seconds),
        sim_ingest(seconds),
        sim_extract(seconds),
        ddpg_train(train_steps),
        kernel_matmul_fwd(kernel_iters),
        kernel_matmul_bwd(kernel_iters),
        kernel_grad_acc(kernel_iters),
        kernel_activations(kernel_iters),
        kernel_soft_update(kernel_iters),
        wire_encode(codec_iters),
        wire_decode(codec_iters),
    ];

    for s in &stages {
        println!(
            "{:<20} wall={:>8.3}s {:>12.0} {}/s ({:>9.2} us/{})  \
             iter p50={} p95={} p99={} max={} us",
            s.name,
            s.wall_secs,
            s.per_sec(),
            s.unit,
            s.us_per_unit(),
            s.unit.trim_end_matches('s'),
            s.percentile(0.50),
            s.percentile(0.95),
            s.percentile(0.99),
            s.max(),
        );
    }
    // The layer costs the fleet actually pays: ingest and extract
    // overhead per request, on top of the raw simulator.
    let per_req = |i: usize| stages[i].us_per_unit();
    println!(
        "\nper-request overhead: ingest {:+.2} us, extract {:+.2} us (sim alone {:.2} us)",
        per_req(1) - per_req(0),
        per_req(2) - per_req(1),
        per_req(0),
    );

    let round3 = |x: f64| (x * 1_000.0).round() / 1_000.0;
    let rows: Vec<JsonValue> = stages
        .iter()
        .map(|s| {
            Obj::new()
                .field("name", s.name)
                .field("wall_secs", round3(s.wall_secs))
                .field("units", s.units)
                .field("unit", s.unit)
                .field("per_sec", round3(s.per_sec()))
                .field("us_per_unit", round3(s.us_per_unit()))
                .field("iter_p50_us", s.percentile(0.50))
                .field("iter_p95_us", s.percentile(0.95))
                .field("iter_p99_us", s.percentile(0.99))
                .field("iter_max_us", s.max())
                .build()
        })
        .collect();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = Obj::new()
        .field("bench", "hot_paths")
        .field("sim_seconds", seconds)
        .field("train_steps", train_steps)
        .field("kernel_iters", kernel_iters)
        .field("codec_iters", codec_iters)
        .field("host_cores", host_cores)
        .field("stages", rows)
        .build()
        .render();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write BENCH_hotpaths.json");
    println!("wrote {out_path}");
}
