//! Per-stage hot-path microbench: times each layer of the
//! request → trace → features → train pipeline in isolation and emits
//! `BENCH_hotpaths.json`, so a future PR that regresses one layer shows
//! up as *that* stage slowing down rather than as an unexplained drop
//! in `fleet_throughput`.
//!
//! Stages:
//!
//! * `sim_only` — the discrete-event engine alone (drain and drop);
//! * `sim_ingest` — plus the tracing coordinator (graph + critical-path
//!   construction per trace);
//! * `sim_extract` — plus Algorithm 2 feature extraction per window;
//! * `ddpg_train` — one-for-all agent minibatch updates (paper dims);
//! * `wire_encode` / `wire_decode` — fleet-report codec round trip.
//!
//! ```sh
//! cargo run --release -p firm-bench --bin hot_paths -- \
//!     --seconds 10 --out BENCH_hotpaths.json
//! ```
//!
//! The workloads are seeded and deterministic; only the timings vary by
//! host. `--seconds`, `--train-steps` and `--codec-iters` trade
//! precision for runtime (CI smoke uses small values).

use std::time::Instant;

use firm_bench::{banner, Args};
use firm_core::estimator::{ACTION_DIM, ACTOR_STATE_DIM, STATE_DIM};
use firm_core::extractor::CriticalComponentExtractor;
use firm_fleet::{FleetReport, ScenarioOutcome};
use firm_ml::ddpg::{DdpgAgent, DdpgConfig, Transition};
use firm_ml::rng::MlRng;
use firm_obs::{Histogram, HistogramSnapshot};
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration, Simulation};
use firm_trace::TracingCoordinator;
use firm_wire::{decode_string, encode_string, JsonValue, Obj};
use firm_workload::apps::Benchmark;

struct Stage {
    name: &'static str,
    wall_secs: f64,
    units: u64,
    unit: &'static str,
    /// Per-iteration wall-time distribution (µs): one sample per sim
    /// window, train step, or codec document — log2-bucketed, so the
    /// percentiles are within 2× (`firm_obs` histogram semantics).
    hist: HistogramSnapshot,
}

impl Stage {
    fn per_sec(&self) -> f64 {
        self.units as f64 / self.wall_secs.max(1e-9)
    }

    fn us_per_unit(&self) -> f64 {
        self.wall_secs * 1e6 / self.units.max(1) as f64
    }
}

fn sim() -> Simulation {
    Simulation::builder(ClusterSpec::small(4), Benchmark::SocialNetwork.build(), 7)
        .arrivals(Box::new(PoissonArrivals::new(300.0)))
        .build()
}

/// Stage 1: the engine alone — completed requests are drained and
/// dropped every 1s window.
fn sim_only(secs: u64) -> Stage {
    let mut s = sim();
    let hist = Histogram::default();
    let start = Instant::now();
    let mut requests = 0u64;
    for _ in 0..secs {
        let window = Instant::now();
        s.run_for(SimDuration::from_secs(1));
        requests += s.drain_completed().len() as u64;
        let _ = s.drain_telemetry();
        hist.record(window.elapsed().as_micros() as u64);
    }
    Stage {
        name: "sim_only",
        wall_secs: start.elapsed().as_secs_f64(),
        units: requests,
        unit: "requests",
        hist: hist.snapshot(),
    }
}

/// Stage 2: engine + trace ingestion (graph and CP construction).
fn sim_ingest(secs: u64) -> Stage {
    let mut s = sim();
    let mut coord = TracingCoordinator::new(200_000);
    let hist = Histogram::default();
    let start = Instant::now();
    for _ in 0..secs {
        let window = Instant::now();
        s.run_for(SimDuration::from_secs(1));
        coord.ingest(s.drain_completed());
        let _ = s.drain_telemetry();
        hist.record(window.elapsed().as_micros() as u64);
    }
    Stage {
        name: "sim_ingest",
        wall_secs: start.elapsed().as_secs_f64(),
        units: coord.store().total_ingested(),
        unit: "requests",
        hist: hist.snapshot(),
    }
}

/// Stage 3: engine + ingestion + Algorithm 2 features per window.
fn sim_extract(secs: u64) -> Stage {
    let mut s = sim();
    let mut coord = TracingCoordinator::new(200_000);
    let mut extractor = CriticalComponentExtractor::new(7);
    let hist = Histogram::default();
    let start = Instant::now();
    let mut feature_rows = 0u64;
    for _ in 0..secs {
        let window_start = s.now();
        let window = Instant::now();
        s.run_for(SimDuration::from_secs(1));
        coord.ingest(s.drain_completed());
        let _ = s.drain_telemetry();
        feature_rows += extractor.features(coord.traces_since(window_start)).len() as u64;
        hist.record(window.elapsed().as_micros() as u64);
    }
    assert!(feature_rows > 0, "extractor produced no features");
    Stage {
        name: "sim_extract",
        wall_secs: start.elapsed().as_secs_f64(),
        units: coord.store().total_ingested(),
        unit: "requests",
        hist: hist.snapshot(),
    }
}

/// Stage 4: DDPG minibatch updates at the paper's dimensions.
fn ddpg_train(steps: u64) -> Stage {
    let mut agent = DdpgAgent::new(DdpgConfig::paper(STATE_DIM, ACTOR_STATE_DIM, ACTION_DIM), 7);
    let mut rng = MlRng::new(42);
    for _ in 0..1_000 {
        let state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.uniform_range(-1.0, 1.0))
            .collect();
        let next_state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.uniform_range(-1.0, 1.0))
            .collect();
        let action: Vec<f64> = (0..ACTION_DIM)
            .map(|_| rng.uniform_range(-1.0, 1.0))
            .collect();
        agent.observe(Transition {
            state,
            action,
            reward: rng.uniform_range(0.0, 5.0),
            next_state,
            done: false,
        });
    }
    let hist = Histogram::default();
    let start = Instant::now();
    for _ in 0..steps {
        let step = Instant::now();
        agent.train_step().expect("replay holds a full batch");
        hist.record(step.elapsed().as_micros() as u64);
    }
    Stage {
        name: "ddpg_train",
        wall_secs: start.elapsed().as_secs_f64(),
        units: steps,
        unit: "train steps",
        hist: hist.snapshot(),
    }
}

/// A synthetic 12-scenario fleet report for the codec stages.
fn synthetic_report() -> FleetReport {
    let outcomes = (0..12)
        .map(|i| ScenarioOutcome {
            name: format!("synthetic-{i:02}"),
            benchmark: "Social Network",
            controller: "FIRM",
            load: format!("steady@{}", 100 + i),
            seed: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1),
            ticks: 20 + i,
            arrivals: 10_000 + 137 * i,
            completions: 9_900 + 131 * i,
            drops: i % 3,
            slo_violations: 17 * i % 97,
            p50_us: 4_000 + 13 * i,
            p99_us: 21_000 + 977 * i,
            mean_latency_us: 6250.25 + i as f64 / 3.0,
            anomalies_injected: i % 5,
            mitigations: i % 4,
            mean_mitigation_secs: i as f64 * 0.75,
            transitions: 40 * i,
            svm_examples: 400 * i,
        })
        .collect();
    FleetReport::new(7, outcomes)
}

/// Stage 5: fleet-report wire encoding.
fn wire_encode(iters: u64) -> Stage {
    let report = synthetic_report();
    let hist = Histogram::default();
    let start = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..iters {
        let doc = Instant::now();
        bytes += encode_string(std::hint::black_box(&report)).len();
        hist.record(doc.elapsed().as_micros() as u64);
    }
    assert!(bytes > 0);
    Stage {
        name: "wire_encode",
        wall_secs: start.elapsed().as_secs_f64(),
        units: iters,
        unit: "documents",
        hist: hist.snapshot(),
    }
}

/// Stage 6: fleet-report wire decoding.
fn wire_decode(iters: u64) -> Stage {
    let report = synthetic_report();
    let json = encode_string(&report);
    let hist = Histogram::default();
    let start = Instant::now();
    for _ in 0..iters {
        let doc = Instant::now();
        let back: FleetReport = decode_string(std::hint::black_box(&json)).expect("report decodes");
        std::hint::black_box(&back);
        hist.record(doc.elapsed().as_micros() as u64);
    }
    Stage {
        name: "wire_decode",
        wall_secs: start.elapsed().as_secs_f64(),
        units: iters,
        unit: "documents",
        hist: hist.snapshot(),
    }
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 10);
    let train_steps = args.u64("train-steps", 500);
    let codec_iters = args.u64("codec-iters", 2_000);
    let out_path = args.get("out").unwrap_or("BENCH_hotpaths.json").to_string();

    banner(
        "BENCH hot_paths",
        "per-stage hot-path timings: sim / ingest / extract / train / codec",
    );

    let stages = vec![
        sim_only(seconds),
        sim_ingest(seconds),
        sim_extract(seconds),
        ddpg_train(train_steps),
        wire_encode(codec_iters),
        wire_decode(codec_iters),
    ];

    for s in &stages {
        println!(
            "{:<12} wall={:>8.3}s {:>12.0} {}/s ({:>9.2} us/{})  \
             iter p50={} p95={} p99={} max={} us",
            s.name,
            s.wall_secs,
            s.per_sec(),
            s.unit,
            s.us_per_unit(),
            s.unit.trim_end_matches('s'),
            s.hist.p50(),
            s.hist.p95(),
            s.hist.p99(),
            s.hist.max,
        );
    }
    // The layer costs the fleet actually pays: ingest and extract
    // overhead per request, on top of the raw simulator.
    let per_req = |i: usize| stages[i].us_per_unit();
    println!(
        "\nper-request overhead: ingest {:+.2} us, extract {:+.2} us (sim alone {:.2} us)",
        per_req(1) - per_req(0),
        per_req(2) - per_req(1),
        per_req(0),
    );

    let round3 = |x: f64| (x * 1_000.0).round() / 1_000.0;
    let rows: Vec<JsonValue> = stages
        .iter()
        .map(|s| {
            Obj::new()
                .field("name", s.name)
                .field("wall_secs", round3(s.wall_secs))
                .field("units", s.units)
                .field("unit", s.unit)
                .field("per_sec", round3(s.per_sec()))
                .field("us_per_unit", round3(s.us_per_unit()))
                .field("iter_p50_us", s.hist.p50())
                .field("iter_p95_us", s.hist.p95())
                .field("iter_p99_us", s.hist.p99())
                .field("iter_max_us", s.hist.max)
                .build()
        })
        .collect();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = Obj::new()
        .field("bench", "hot_paths")
        .field("sim_seconds", seconds)
        .field("train_steps", train_steps)
        .field("codec_iters", codec_iters)
        .field("host_cores", host_cores)
        .field("stages", rows)
        .build()
        .render();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write BENCH_hotpaths.json");
    println!("wrote {out_path}");
}
