//! Fig. 9(a): ROC curves of single-anomaly SLO-violation localization.
//!
//! Following §4.2's protocol: for each anomaly type, a critical-path
//! container is injected with an intensity drawn from the range that
//! *triggers SLO violations*; rounds whose injection fails to break the
//! SLO are discarded. The first phase trains the incremental SVM online
//! from the injector's ground truth; the second phase collects decision
//! scores and labels, from which the per-type ROC and AUC are computed.

use std::collections::BTreeSet;

use firm_bench::{banner, paper_note, section, Args};
use firm_core::extractor::CriticalComponentExtractor;
use firm_ml::metrics::{auc, roc_curve};
use firm_sim::spec::ClusterSpec;
use firm_sim::{
    AnomalyKind, AnomalySpec, InstanceId, PoissonArrivals, SimDuration, SimRng, Simulation,
};
use firm_trace::TracingCoordinator;
use firm_workload::apps::Benchmark;

/// One localization experiment for one anomaly kind; returns
/// (scores, labels) from the evaluation phase.
fn run_kind(
    kind: AnomalyKind,
    eval_rounds: usize,
    train_rounds: usize,
    rate: f64,
    seed: u64,
) -> (Vec<f64>, Vec<bool>) {
    let mut app = Benchmark::SocialNetwork.build();
    let cluster = ClusterSpec::small(6);
    // A tight tail SLO (1.4x healthy p99): a single stressed container
    // on the CP is enough to breach it, as in the paper's setup.
    firm_core::slo::calibrate_slos(&mut app, &cluster, rate, 1.4, seed);
    let slos: Vec<u64> = app.request_types.iter().map(|r| r.slo_latency_us).collect();
    let mut sim = Simulation::builder(cluster, app, seed)
        .arrivals(Box::new(PoissonArrivals::new(rate)))
        .build();
    let mut coord = TracingCoordinator::new(200_000);
    let mut extractor = CriticalComponentExtractor::new(seed ^ 0x90C);
    let mut rng = SimRng::new(seed ^ 0xABC);

    // Warmup: learn which instances appear on critical paths — those
    // are the Extractor's candidates and the injection targets — and
    // capture per-instance baseline span latencies.
    sim.run_for(SimDuration::from_secs(4));
    coord.ingest(sim.drain_completed());
    let mut cp_instances: BTreeSet<u32> = BTreeSet::new();
    for cp in coord.critical_paths_since(firm_sim::SimTime::ZERO) {
        for e in &cp.entries {
            cp_instances.insert(e.instance.raw());
        }
    }
    let targets: Vec<InstanceId> = cp_instances.into_iter().map(InstanceId).collect();
    let mut baseline: std::collections::BTreeMap<u32, (f64, u64)> = Default::default();
    for t in coord.traces_since(firm_sim::SimTime::ZERO) {
        for s in &t.graph.spans {
            let e = baseline.entry(s.instance.raw()).or_insert((0.0, 0));
            e.0 += s.duration().as_micros() as f64;
            e.1 += 1;
        }
    }
    let baseline_mean = |i: InstanceId| {
        baseline
            .get(&i.raw())
            .filter(|(_, n)| *n > 0)
            .map(|(s, n)| s / *n as f64)
    };

    let mut scores = Vec::new();
    let mut labels = Vec::new();
    let mut done_train = 0usize;
    let mut done_eval = 0usize;
    let budget = (train_rounds + eval_rounds) * 6;
    // Rolling reference: the previous cool-down window's p99 per request
    // type, so violations are attributed to the injection rather than to
    // background-load noise.
    let mut reference_p99: Vec<f64> = slos.iter().map(|s| *s as f64 / 1.4).collect();

    for _ in 0..budget {
        if done_eval >= eval_rounds {
            break;
        }
        let target = targets[rng.index(targets.len())];
        let intensity = rng.uniform_range(0.7, 1.0);
        let is_workload = kind == AnomalyKind::WorkloadVariation;
        if is_workload {
            sim.inject(AnomalySpec::new(
                kind,
                firm_sim::NodeId(0),
                intensity,
                SimDuration::from_secs(3),
            ));
        } else {
            sim.inject(AnomalySpec::at_instance(
                kind,
                target,
                intensity,
                SimDuration::from_secs(3),
            ));
        }

        // The measurement window runs past the anomaly so that requests
        // stalled by it still complete inside the window.
        let window_start = sim.now();
        sim.run_for(SimDuration::from_secs(5));
        coord.ingest(sim.drain_completed());
        sim.drain_telemetry();

        // §4.2: only rounds whose injection triggers an SLO violation
        // enter the study — and the violation must stand out against the
        // preceding quiet window (1.4x), not just against the SLO.
        let mut violated = false;
        for (rt, slo) in slos.iter().enumerate() {
            let mut lats = coord.latencies_since(window_start, firm_sim::RequestTypeId(rt as u16));
            if lats.is_empty() {
                continue;
            }
            lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let p99 = firm_sim::stats::sample_quantile(&lats, 0.99);
            if p99 > *slo as f64 && p99 > reference_p99[rt] * 1.4 {
                violated = true;
            }
        }

        if violated {
            let traces: Vec<_> = coord.traces_since(window_start).cloned().collect();
            // For workload surges the culprits are the instances that
            // actually degraded (≥1.5x their baseline span latency).
            let mut window_mean: std::collections::BTreeMap<u32, (f64, u64)> = Default::default();
            if is_workload {
                for t in &traces {
                    for s in &t.graph.spans {
                        let e = window_mean.entry(s.instance.raw()).or_insert((0.0, 0));
                        e.0 += s.duration().as_micros() as f64;
                        e.1 += 1;
                    }
                }
            }
            let degraded = |i: InstanceId| {
                let Some(base) = baseline_mean(i) else {
                    return false;
                };
                window_mean
                    .get(&i.raw())
                    .filter(|(_, n)| *n > 0)
                    .map(|(s, n)| s / *n as f64 > base * 1.5)
                    .unwrap_or(false)
            };
            let features = extractor.features(traces.iter());
            for f in &features {
                let label = if is_workload {
                    degraded(f.instance)
                } else {
                    f.instance == target
                };
                if done_train < train_rounds {
                    extractor.train(f, label);
                } else {
                    scores.push(extractor.decision_value(f));
                    labels.push(label);
                }
            }
            if done_train < train_rounds {
                done_train += 1;
            } else {
                done_eval += 1;
            }
        }

        // Cool-down so windows do not bleed into each other: a flush
        // phase drains residual congestion, then a quiet window
        // refreshes the p99 reference.
        sim.run_for(SimDuration::from_secs(1));
        sim.drain_completed();
        let cool_start = sim.now();
        sim.run_for(SimDuration::from_secs(3));
        coord.ingest(sim.drain_completed());
        for (rt, reference) in reference_p99.iter_mut().enumerate() {
            let mut lats = coord.latencies_since(cool_start, firm_sim::RequestTypeId(rt as u16));
            if lats.len() >= 20 {
                lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                *reference = firm_sim::stats::sample_quantile(&lats, 0.99);
            }
        }
        coord.evict_before(sim.now());
    }
    (scores, labels)
}

fn main() {
    let args = Args::from_env();
    let eval_rounds = args.u64("rounds", 25) as usize;
    let train_rounds = args.u64("train-rounds", 30) as usize;
    let rate = args.f64("rate", 120.0);
    let seed = args.u64("seed", 37);

    banner(
        "Fig. 9(a)",
        "ROC of single-anomaly SLO-violation localization (Social Network)",
    );

    let kinds = [
        ("Workload", AnomalyKind::WorkloadVariation),
        ("CPU", AnomalyKind::CpuStress),
        ("Memory", AnomalyKind::MemBwStress),
        ("LLC", AnomalyKind::LlcStress),
        ("Disk I/O", AnomalyKind::IoStress),
        ("Network", AnomalyKind::NetBwStress),
    ];
    section("per-anomaly-type AUC (TPR at FPR in [0.10, 0.15, 0.25])");
    let mut aucs = Vec::new();
    for (i, (name, kind)) in kinds.iter().enumerate() {
        let (scores, labels) = run_kind(*kind, eval_rounds, train_rounds, rate, seed + i as u64);
        let curve = roc_curve(&scores, &labels);
        let a = if curve.is_empty() {
            f64::NAN
        } else {
            auc(&curve)
        };
        let tpr_at = |fpr: f64| {
            curve
                .iter()
                .filter(|p| p.fpr <= fpr)
                .map(|p| p.tpr)
                .fold(0.0, f64::max)
        };
        println!(
            "  {:<10} AUC={:.3}  TPR@10%={:.2} TPR@15%={:.2} TPR@25%={:.2}  ({} samples, {} positive)",
            name,
            a,
            tpr_at(0.10),
            tpr_at(0.15),
            tpr_at(0.25),
            labels.len(),
            labels.iter().filter(|l| **l).count()
        );
        if a.is_finite() {
            aucs.push(a);
        }
    }
    let avg = aucs.iter().sum::<f64>() / aucs.len().max(1) as f64;
    println!("\n  Average AUC = {avg:.3}");
    paper_note("Avg AUC = 0.978; near-100% TPR at FPR in [0.12, 0.15]");
}
