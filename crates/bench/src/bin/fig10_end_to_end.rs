//! Fig. 10: end-to-end comparison — CDFs of end-to-end latency,
//! requested CPU limit, and dropped requests under FIRM (single-RL and
//! multi-RL), the AIMD baseline, and Kubernetes autoscaling.
//!
//! Following §4.3/§4.4, the RL agents are trained on Train-Ticket and
//! validated on DeathStarBench (Social Network) under the §4.1 anomaly
//! campaign.

use firm_bench::{banner, factor, paper_note, print_cdf, section, Args};
use firm_core::baselines::{AimdConfig, K8sConfig};
use firm_core::estimator::AgentRegime;
use firm_core::experiment::{run_scenario, ControllerKind, ScenarioConfig, ScenarioResult};
use firm_core::injector::CampaignConfig;
use firm_core::training::{train_firm, TrainingConfig};
use firm_sim::spec::ClusterSpec;
use firm_sim::{PoissonArrivals, SimDuration};
use firm_workload::apps::Benchmark;

fn scenario(
    app: &firm_sim::spec::AppSpec,
    controller: ControllerKind,
    seconds: u64,
    rate: f64,
    seed: u64,
) -> ScenarioResult {
    let mut cfg = ScenarioConfig::new(app.clone(), controller);
    cfg.cluster = ClusterSpec::small(6);
    cfg.arrivals = Some(Box::new(PoissonArrivals::new(rate)));
    cfg.duration = SimDuration::from_secs(seconds);
    cfg.campaign = Some(CampaignConfig {
        lambda: 0.33,
        intensity: (0.6, 1.0),
        ..Default::default()
    });
    cfg.seed = seed;
    run_scenario(cfg)
}

fn main() {
    let args = Args::from_env();
    let seconds = args.u64("seconds", 120);
    let rate = args.f64("rate", 350.0);
    let seed = args.u64("seed", 47);
    let episodes = args.u64("episodes", 80) as usize;

    banner(
        "Fig. 10",
        "End-to-end latency, requested CPU limit, and dropped requests (CDFs)",
    );

    // Train on Train-Ticket (§4.3), validate on Social Network (§4.4).
    let mut train_app = Benchmark::TrainTicket.build();
    firm_core::slo::calibrate_slos(&mut train_app, &ClusterSpec::small(6), 250.0, 1.4, seed);
    let train_cfg = |regime| TrainingConfig {
        episodes,
        max_steps: 30,
        ramp_episodes: episodes / 3,
        min_steps: 10,
        arrival_rate: 250.0,
        cluster: ClusterSpec::small(6),
        regime,
        campaign: CampaignConfig {
            lambda: 0.6,
            intensity: (0.6, 1.0),
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    eprintln!("[fig10] training single-RL (one-for-all) agent...");
    let (_, mut single) = train_firm(&train_app, &train_cfg(AgentRegime::Shared));
    single.config.explore = false;
    eprintln!("[fig10] training multi-RL (one-for-each) agents...");
    let (_, mut multi) = train_firm(&train_app, &train_cfg(AgentRegime::PerService));
    multi.config.explore = false;

    let mut validate_app = Benchmark::SocialNetwork.build();
    firm_core::slo::calibrate_slos(&mut validate_app, &ClusterSpec::small(6), rate, 1.4, seed);

    eprintln!("[fig10] running the four managed scenarios...");
    let results = vec![
        (
            "FIRM (Single-RL)",
            scenario(
                &validate_app,
                ControllerKind::Firm(Box::new(single)),
                seconds,
                rate,
                seed,
            ),
        ),
        (
            "FIRM (Multi-RL)",
            scenario(
                &validate_app,
                ControllerKind::Firm(Box::new(multi)),
                seconds,
                rate,
                seed,
            ),
        ),
        (
            "AIMD",
            scenario(
                &validate_app,
                ControllerKind::Aimd(AimdConfig::default()),
                seconds,
                rate,
                seed,
            ),
        ),
        (
            "K8S Auto-scaling",
            scenario(
                &validate_app,
                ControllerKind::K8s(K8sConfig::default()),
                seconds,
                rate,
                seed,
            ),
        ),
    ];

    section("(a) end-to-end latency CDF");
    for (name, r) in &results {
        print_cdf(name, &r.latency);
    }

    section("(b) requested CPU limit over time (cores)");
    for (name, r) in &results {
        let mut cpus: Vec<f64> = r.timeline.iter().map(|p| p.requested_cpu).collect();
        cpus.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "  {:<22} p10={:>7.1} p50={:>7.1} p90={:>7.1}  mean={:>7.1}",
            name,
            firm_sim::stats::sample_quantile(&cpus, 0.1),
            firm_sim::stats::sample_quantile(&cpus, 0.5),
            firm_sim::stats::sample_quantile(&cpus, 0.9),
            r.mean_requested_cpu
        );
    }

    section("(c) dropped requests per control window");
    for (name, r) in &results {
        let mut drops: Vec<f64> = r.timeline.iter().map(|p| p.drops as f64).collect();
        drops.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "  {:<22} p50={:>6.0} p90={:>6.0} p99={:>6.0}  total={}",
            name,
            firm_sim::stats::sample_quantile(&drops, 0.5),
            firm_sim::stats::sample_quantile(&drops, 0.9),
            firm_sim::stats::sample_quantile(&drops, 0.99),
            r.drops
        );
    }

    section("summary vs baselines");
    let p99 = |r: &ScenarioResult| r.latency.p99() as f64 / 1e3;
    let firm_p99 = p99(&results[0].1).min(p99(&results[1].1));
    let aimd = &results[2].1;
    let k8s = &results[3].1;
    println!(
        "  tail latency:   FIRM best p99 {:.1} ms vs AIMD {} / K8s {}",
        firm_p99,
        factor(p99(aimd), firm_p99),
        factor(p99(k8s), firm_p99),
    );
    let firm_viol = results[0]
        .1
        .violation_rate()
        .min(results[1].1.violation_rate());
    println!(
        "  SLO violations: FIRM {:.2}% vs AIMD {} / K8s {}",
        firm_viol * 100.0,
        factor(aimd.violation_rate(), firm_viol),
        factor(k8s.violation_rate(), firm_viol),
    );
    let firm_cpu = results[0]
        .1
        .mean_requested_cpu
        .min(results[1].1.mean_requested_cpu);
    println!(
        "  requested CPU:  FIRM {:.1} cores = {:.1}% below K8s ({:.1}), {:.1}% below AIMD ({:.1})",
        firm_cpu,
        (1.0 - firm_cpu / k8s.mean_requested_cpu) * 100.0,
        k8s.mean_requested_cpu,
        (1.0 - firm_cpu / aimd.mean_requested_cpu) * 100.0,
        aimd.mean_requested_cpu,
    );
    let firm_drops = results[0].1.drops.min(results[1].1.drops).max(1);
    println!(
        "  dropped reqs:   FIRM {} vs AIMD {} / K8s {}",
        results[0].1.drops.min(results[1].1.drops),
        factor(aimd.drops as f64, firm_drops as f64),
        factor(k8s.drops as f64, firm_drops as f64),
    );
    paper_note("FIRM beats baselines by up to 6.9x/11.5x on tails (9.8x/16.7x fewer violations),");
    paper_note("cuts requested CPU 29.1-62.3%, drops 8.6x fewer requests; single-RL ≈ multi-RL");
}
