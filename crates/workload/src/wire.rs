//! Wire-codec impls for workload descriptions.
//!
//! A [`LoadShape`] is the load half of a fleet scenario, so it must
//! cross the coordinator→worker boundary intact — including a full
//! [`ReplayTrace`], whose recorded arrival offsets ship verbatim so
//! every shard can re-run an identical incident. Shapes travel as
//! tagged objects (`{"shape":"steady",...}`); benchmarks by display
//! name, decoded by lookup in [`crate::apps::ALL_BENCHMARKS`].

use firm_sim::SimDuration;
use firm_wire::{DecodeError, JsonValue, Obj, WireDecode, WireEncode};

use crate::apps::{Benchmark, ALL_BENCHMARKS};
use crate::generator::{LoadShape, ReplayTrace};

impl WireEncode for Benchmark {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

impl WireDecode for Benchmark {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        let name = v.as_str()?;
        ALL_BENCHMARKS
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| DecodeError::new(format!("unknown benchmark {name:?}")))
    }
}

impl WireEncode for ReplayTrace {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("offsets_us", self.offsets_us())
            .field("span_us", self.span().as_micros())
            .build()
    }
}

impl WireDecode for ReplayTrace {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        let offsets: Vec<u64> = v.field("offsets_us")?;
        let span_us: u64 = v.field("span_us")?;
        // Re-validate the constructor contract here so malformed input
        // is a decode error, never a panic.
        if offsets.is_empty() {
            return Err(DecodeError::new("replay trace has no arrivals").push_segment("offsets_us"));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(
                DecodeError::new("replay offsets must be nondecreasing").push_segment("offsets_us")
            );
        }
        if span_us == 0 || span_us < *offsets.last().expect("non-empty") {
            return Err(
                DecodeError::new("span must be positive and cover the last arrival")
                    .push_segment("span_us"),
            );
        }
        Ok(ReplayTrace::from_offsets(
            offsets,
            SimDuration::from_micros(span_us),
        ))
    }
}

impl WireEncode for LoadShape {
    fn encode(&self) -> JsonValue {
        match self {
            LoadShape::Steady { rate } => Obj::new()
                .field("shape", "steady")
                .field("rate", *rate)
                .build(),
            LoadShape::Diurnal {
                base,
                amplitude,
                period_secs,
            } => Obj::new()
                .field("shape", "diurnal")
                .field("base", *base)
                .field("amplitude", *amplitude)
                .field("period_secs", *period_secs)
                .build(),
            LoadShape::FlashCrowd {
                base,
                multiplier,
                every_secs,
                crest_secs,
            } => Obj::new()
                .field("shape", "flash-crowd")
                .field("base", *base)
                .field("multiplier", *multiplier)
                .field("every_secs", *every_secs)
                .field("crest_secs", *crest_secs)
                .build(),
            LoadShape::Replay { trace } => Obj::new()
                .field("shape", "replay")
                .field("trace", trace)
                .build(),
        }
    }
}

impl WireDecode for LoadShape {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        let tag: String = v.field("shape")?;
        match tag.as_str() {
            "steady" => Ok(LoadShape::Steady {
                rate: v.field("rate")?,
            }),
            "diurnal" => Ok(LoadShape::Diurnal {
                base: v.field("base")?,
                amplitude: v.field("amplitude")?,
                period_secs: v.field("period_secs")?,
            }),
            "flash-crowd" => Ok(LoadShape::FlashCrowd {
                base: v.field("base")?,
                multiplier: v.field("multiplier")?,
                every_secs: v.field("every_secs")?,
                crest_secs: v.field("crest_secs")?,
            }),
            "replay" => Ok(LoadShape::Replay {
                trace: v.field("trace")?,
            }),
            other => {
                Err(DecodeError::new(format!("unknown load shape {other:?}")).push_segment("shape"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_wire::{assert_round_trip, decode_string, encode_string};

    #[test]
    fn benchmarks_round_trip_by_name() {
        for b in ALL_BENCHMARKS {
            assert_round_trip(&b);
        }
        assert!(Benchmark::decode(&JsonValue::Str("Unknown App".into())).is_err());
    }

    #[test]
    fn every_load_shape_round_trips() {
        let trace = ReplayTrace::synthesize(
            &LoadShape::FlashCrowd {
                base: 120.0,
                multiplier: 3.0,
                every_secs: 10,
                crest_secs: 2,
            },
            SimDuration::from_secs(5),
            9,
        );
        for shape in [
            LoadShape::Steady { rate: 250.0 },
            LoadShape::Diurnal {
                base: 200.0,
                amplitude: 0.4,
                period_secs: 40,
            },
            LoadShape::FlashCrowd {
                base: 150.0,
                multiplier: 3.0,
                every_secs: 20,
                crest_secs: 5,
            },
            LoadShape::Replay { trace },
        ] {
            assert_round_trip(&shape);
        }
    }

    #[test]
    fn replay_traces_ship_their_offsets_verbatim() {
        let trace =
            ReplayTrace::from_offsets(vec![10, 20, 20, 999], SimDuration::from_micros(1_000));
        let back: ReplayTrace = decode_string(&encode_string(&trace)).unwrap();
        assert_eq!(back.offsets_us(), trace.offsets_us());
        assert_eq!(back.span(), trace.span());
    }

    #[test]
    fn malformed_traces_decode_to_errors_not_panics() {
        for bad in [
            r#"{"offsets_us":[],"span_us":10}"#,
            r#"{"offsets_us":[5,3],"span_us":10}"#,
            r#"{"offsets_us":[5],"span_us":0}"#,
            r#"{"offsets_us":[5],"span_us":4}"#,
        ] {
            assert!(decode_string::<ReplayTrace>(bad).is_err(), "{bad} decoded");
        }
    }

    #[test]
    fn unknown_shape_tags_are_rejected_with_a_path() {
        let err = decode_string::<LoadShape>(r#"{"shape":"square-wave"}"#).unwrap_err();
        assert!(err.to_string().contains("square-wave"), "{err}");
    }
}
