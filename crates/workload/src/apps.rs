//! The four benchmark applications of §4.1, plus the Fig. 2 compose-post
//! subgraph used by Table 1.
//!
//! Service counts match the paper exactly: Social Network 36, Media
//! Service 38, Hotel Reservation 15, Train-Ticket 41. Topologies follow
//! the published DeathStarBench / Train-Ticket architectures at the level
//! FIRM cares about: who calls whom, which calls are parallel vs
//! sequential vs background, and which tier (and therefore bottleneck
//! class) each service belongs to.

use firm_sim::spec::{AppSpec, Call, DemandProfile, Stage};

use crate::builder::{bg, one, par, AppBuilder, Tier};

/// A benchmark application from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// DeathStarBench Social Network (36 services).
    SocialNetwork,
    /// DeathStarBench Media Service (38 services).
    MediaService,
    /// DeathStarBench Hotel Reservation (15 services).
    HotelReservation,
    /// FudanSELab Train-Ticket booking (41 services).
    TrainTicket,
}

/// All four benchmarks, in the paper's order.
pub const ALL_BENCHMARKS: [Benchmark; 4] = [
    Benchmark::SocialNetwork,
    Benchmark::MediaService,
    Benchmark::HotelReservation,
    Benchmark::TrainTicket,
];

impl Benchmark {
    /// Builds the application topology.
    pub fn build(self) -> AppSpec {
        match self {
            Benchmark::SocialNetwork => social_network(),
            Benchmark::MediaService => media_service(),
            Benchmark::HotelReservation => hotel_reservation(),
            Benchmark::TrainTicket => train_ticket(),
        }
    }

    /// Display name matching the paper.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::SocialNetwork => "Social Network",
            Benchmark::MediaService => "Media Service",
            Benchmark::HotelReservation => "Hotel Reservation",
            Benchmark::TrainTicket => "Train Ticket",
        }
    }

    /// Unique service count reported in §4.1.
    pub const fn paper_service_count(self) -> usize {
        match self {
            Benchmark::SocialNetwork => 36,
            Benchmark::MediaService => 38,
            Benchmark::HotelReservation => 15,
            Benchmark::TrainTicket => 41,
        }
    }
}

/// DeathStarBench Social Network: 36 services, three request types
/// (compose-post, read-home-timeline, read-user-timeline).
pub fn social_network() -> AppSpec {
    let mut b = AppBuilder::new("social-network", 3);

    // Logic tier.
    let nginx = b.service("nginx", Tier::Frontend);
    let compose_post = b.service("compose-post", Tier::Logic);
    let text = b.service("text", Tier::Logic);
    let unique_id = b.service("unique-id", Tier::Logic);
    let url_shorten = b.service("url-shorten", Tier::Logic);
    let user_mention = b.service("user-mention", Tier::Logic);
    let media = b.service("media", Tier::Media);
    let user_tag = b.service("user-tag", Tier::Logic);
    let user = b.service("user", Tier::Logic);
    let social_graph = b.service("social-graph", Tier::Logic);
    let post_storage = b.service("post-storage", Tier::Logic);
    let user_timeline = b.service("user-timeline", Tier::Logic);
    let home_timeline = b.service("home-timeline", Tier::Logic);
    let write_home_timeline = b.service("write-home-timeline", Tier::Logic);
    let read_post = b.service("read-post", Tier::Logic);
    let search = b.service("search", Tier::Logic);
    let recommender = b.service("recommender", Tier::Logic);
    let ads = b.service("ads", Tier::Logic);
    let login = b.service("login", Tier::Logic);
    let blocked_user = b.service("blocked-user", Tier::Logic);
    let favorite = b.service("favorite", Tier::Logic);

    // Storage tier.
    let (sg_mc, sg_db) = b.storage_pair("social-graph");
    let (ps_mc, ps_db) = b.storage_pair("post-storage");
    let (ut_mc, ut_db) = b.storage_pair("user-timeline");
    let (user_mc, user_db) = b.storage_pair("user");
    let (media_mc, media_db) = b.storage_pair("media");
    let (us_mc, us_db) = b.storage_pair("url-shorten");
    let ht_redis = b.service("home-timeline-redis", Tier::Cache);
    let cp_redis = b.service("compose-post-redis", Tier::Cache);
    let utag_db = b.service("user-tag-mongodb", Tier::Db);
    assert_eq!(b.service_count(), 36);

    // --- rt0: compose-post (the Fig. 2 flow) -------------------------
    let rt = 0;
    b.leaf(unique_id, rt, 0.4);
    b.leaf(cp_redis, rt, 0.5);
    b.leaf(us_mc, rt, 0.6);
    b.leaf(us_db, rt, 0.6);
    b.leaf(user_mc, rt, 0.5);
    b.leaf(user_db, rt, 0.5);
    b.leaf(media_mc, rt, 1.5);
    b.leaf(media_db, rt, 1.5);
    b.leaf(utag_db, rt, 0.8);
    b.leaf(ps_mc, rt, 1.0);
    b.leaf(ps_db, rt, 1.0);
    b.leaf(ht_redis, rt, 0.8);
    b.leaf(sg_mc, rt, 0.6);
    b.leaf(sg_db, rt, 0.6);
    b.lookaside(url_shorten, rt, 0.6, us_mc, us_db);
    b.lookaside(user_mention, rt, 0.5, user_mc, user_db);
    b.lookaside(media, rt, 1.0, media_mc, media_db);
    b.stages(user_tag, rt, 0.8, vec![one(utag_db)]);
    b.stages(text, rt, 1.0, vec![par(&[url_shorten, user_mention])]);
    b.lookaside(post_storage, rt, 1.0, ps_mc, ps_db);
    b.lookaside(social_graph, rt, 0.6, sg_mc, sg_db);
    b.stages(
        write_home_timeline,
        rt,
        0.8,
        vec![par(&[ht_redis, social_graph])],
    );
    b.stages(
        compose_post,
        rt,
        1.2,
        vec![
            par(&[text, unique_id, media, user_tag]),
            par(&[post_storage, cp_redis]),
            bg(write_home_timeline),
        ],
    );
    b.stages(nginx, rt, 1.0, vec![one(compose_post)]);

    // --- rt1: read-home-timeline --------------------------------------
    let rt = 1;
    b.leaf(ht_redis, rt, 1.2);
    b.leaf(ps_mc, rt, 1.2);
    b.leaf(ps_db, rt, 1.2);
    b.leaf(media_mc, rt, 0.8);
    b.leaf(media_db, rt, 0.8);
    b.leaf(user_mc, rt, 0.5);
    b.leaf(user_db, rt, 0.5);
    b.leaf(ads, rt, 0.4);
    b.lookaside(post_storage, rt, 1.0, ps_mc, ps_db);
    b.lookaside(media, rt, 0.6, media_mc, media_db);
    b.lookaside(user, rt, 0.5, user_mc, user_db);
    b.stages(read_post, rt, 0.8, vec![par(&[post_storage, media])]);
    b.stages(
        home_timeline,
        rt,
        1.0,
        vec![one(ht_redis), one(read_post), par(&[ads, user])],
    );
    b.stages(nginx, rt, 1.0, vec![one(home_timeline)]);

    // --- rt2: read-user-timeline ---------------------------------------
    let rt = 2;
    b.leaf(ut_mc, rt, 1.0);
    b.leaf(ut_db, rt, 1.0);
    b.leaf(ps_mc, rt, 1.0);
    b.leaf(ps_db, rt, 1.0);
    b.leaf(media_mc, rt, 0.8);
    b.leaf(media_db, rt, 0.8);
    b.leaf(blocked_user, rt, 0.4);
    b.leaf(favorite, rt, 0.4);
    b.lookaside(post_storage, rt, 1.0, ps_mc, ps_db);
    b.lookaside(media, rt, 0.6, media_mc, media_db);
    b.stages(read_post, rt, 0.8, vec![par(&[post_storage, media])]);
    b.stages(
        user_timeline,
        rt,
        1.0,
        vec![
            one(ut_mc),
            one(ut_db),
            one(read_post),
            par(&[blocked_user, favorite]),
        ],
    );
    b.stages(nginx, rt, 1.0, vec![one(user_timeline)]);

    // Unused-but-deployed services still need sensible spare behaviour
    // for no request type; search/recommender/login stay idle, as their
    // endpoints are not driven in the paper's workload either.
    let _ = (search, recommender, login);

    b.request_type(0, "compose-post", nginx, 0.25, 100)
        .request_type(1, "read-home-timeline", nginx, 0.5, 50)
        .request_type(2, "read-user-timeline", nginx, 0.25, 50);
    b.with_cpu(nginx, 6.0);
    b.build()
}

/// DeathStarBench Media Service: 38 services, three request types
/// (compose-review, browse-movie, stream-movie).
pub fn media_service() -> AppSpec {
    let mut b = AppBuilder::new("media-service", 3);

    let nginx = b.service("nginx", Tier::Frontend);
    let compose_review = b.service("compose-review", Tier::Logic);
    let review_storage = b.service("review-storage", Tier::Logic);
    let user_review = b.service("user-review", Tier::Logic);
    let movie_review = b.service("movie-review", Tier::Logic);
    let movie_id = b.service("movie-id", Tier::Logic);
    let movie_info = b.service("movie-info", Tier::Logic);
    let plot = b.service("plot", Tier::Logic);
    let rating = b.service("rating", Tier::Logic);
    let user = b.service("user", Tier::Logic);
    let cast_info = b.service("cast-info", Tier::Logic);
    let video_streaming = b.service("video-streaming", Tier::Media);
    let text = b.service("text", Tier::Logic);
    let unique_id = b.service("unique-id", Tier::Logic);
    let recommender = b.service("recommender", Tier::Logic);
    let search = b.service("search", Tier::Logic);
    let login = b.service("login", Tier::Logic);
    let ads = b.service("ads", Tier::Logic);
    let rent_movie = b.service("rent-movie", Tier::Logic);
    let payment = b.service("payment", Tier::Logic);

    let (rs_mc, rs_db) = b.storage_pair("review-storage");
    let (ur_mc, ur_db) = b.storage_pair("user-review");
    let (mr_mc, mr_db) = b.storage_pair("movie-review");
    let (mi_mc, mi_db) = b.storage_pair("movie-info");
    let (plot_mc, plot_db) = b.storage_pair("plot");
    let (user_mc, user_db) = b.storage_pair("user");
    let (ci_mc, ci_db) = b.storage_pair("cast-info");
    let (mid_mc, mid_db) = b.storage_pair("movie-id");
    let rating_redis = b.service("rating-redis", Tier::Cache);
    let video_storage = b.service("video-storage", Tier::Media);
    assert_eq!(b.service_count(), 38);

    // --- rt0: compose-review -------------------------------------------
    let rt = 0;
    b.leaf(text, rt, 0.8);
    b.leaf(unique_id, rt, 0.4);
    b.leaf(user_mc, rt, 0.5);
    b.leaf(user_db, rt, 0.5);
    b.leaf(mid_mc, rt, 0.5);
    b.leaf(mid_db, rt, 0.5);
    b.leaf(rs_mc, rt, 1.0);
    b.leaf(rs_db, rt, 1.0);
    b.leaf(ur_mc, rt, 0.8);
    b.leaf(ur_db, rt, 0.8);
    b.leaf(mr_mc, rt, 0.8);
    b.leaf(mr_db, rt, 0.8);
    b.leaf(rating_redis, rt, 0.6);
    b.lookaside(user, rt, 0.5, user_mc, user_db);
    b.lookaside(movie_id, rt, 0.5, mid_mc, mid_db);
    b.lookaside(review_storage, rt, 1.0, rs_mc, rs_db);
    b.lookaside(user_review, rt, 0.8, ur_mc, ur_db);
    b.stages(
        movie_review,
        rt,
        0.8,
        vec![par(&[mr_mc]), par(&[mr_db, rating_redis])],
    );
    b.stages(
        compose_review,
        rt,
        1.2,
        vec![
            par(&[text, unique_id, user, movie_id]),
            one(review_storage),
            Stage {
                calls: vec![
                    Call::background(user_review),
                    Call::background(movie_review),
                ],
            },
        ],
    );
    b.stages(nginx, rt, 1.0, vec![one(compose_review)]);

    // --- rt1: browse-movie ----------------------------------------------
    let rt = 1;
    b.leaf(mi_mc, rt, 1.0);
    b.leaf(mi_db, rt, 1.0);
    b.leaf(plot_mc, rt, 0.8);
    b.leaf(plot_db, rt, 0.8);
    b.leaf(ci_mc, rt, 0.8);
    b.leaf(ci_db, rt, 0.8);
    b.leaf(rating_redis, rt, 0.6);
    b.leaf(recommender, rt, 0.6);
    b.leaf(ads, rt, 0.4);
    b.lookaside(plot, rt, 0.8, plot_mc, plot_db);
    b.lookaside(cast_info, rt, 0.8, ci_mc, ci_db);
    b.stages(rating, rt, 0.5, vec![one(rating_redis)]);
    b.stages(
        movie_info,
        rt,
        1.0,
        vec![
            one(mi_mc),
            one(mi_db),
            par(&[plot, cast_info, rating, recommender]),
        ],
    );
    b.stages(nginx, rt, 1.0, vec![par(&[movie_info, ads])]);

    // --- rt2: stream-movie ------------------------------------------------
    let rt = 2;
    b.leaf(user_mc, rt, 0.5);
    b.leaf(user_db, rt, 0.5);
    b.leaf(mid_mc, rt, 0.5);
    b.leaf(mid_db, rt, 0.5);
    b.leaf(video_storage, rt, 1.2);
    b.leaf(payment, rt, 0.5);
    b.lookaside(user, rt, 0.5, user_mc, user_db);
    b.lookaside(movie_id, rt, 0.5, mid_mc, mid_db);
    b.stages(rent_movie, rt, 0.6, vec![one(payment)]);
    b.stages(
        video_streaming,
        rt,
        1.0,
        vec![par(&[user, movie_id]), one(rent_movie), one(video_storage)],
    );
    b.stages(nginx, rt, 1.0, vec![one(video_streaming)]);

    let _ = (search, login);

    b.request_type(0, "compose-review", nginx, 0.3, 100)
        .request_type(1, "browse-movie", nginx, 0.5, 60)
        .request_type(2, "stream-movie", nginx, 0.2, 120);
    b.with_cpu(nginx, 6.0);
    b.build()
}

/// DeathStarBench Hotel Reservation: 15 services, three request types
/// (search-hotel, recommend, reserve).
pub fn hotel_reservation() -> AppSpec {
    let mut b = AppBuilder::new("hotel-reservation", 3);

    let frontend = b.service("frontend", Tier::Frontend);
    let search = b.service("search", Tier::Logic);
    let geo = b.service("geo", Tier::Logic);
    let rate = b.service("rate", Tier::Logic);
    let recommendation = b.service("recommendation", Tier::Logic);
    let user = b.service("user", Tier::Logic);
    let reservation = b.service("reservation", Tier::Logic);
    let profile = b.service("profile", Tier::Logic);
    let (profile_mc, profile_db) = b.storage_pair("profile");
    let (rate_mc, rate_db) = b.storage_pair("rate");
    let (res_mc, res_db) = b.storage_pair("reservation");
    let geo_db = b.service("geo-mongodb", Tier::Db);
    assert_eq!(b.service_count(), 15);

    // --- rt0: search-hotel ---------------------------------------------
    let rt = 0;
    b.leaf(geo_db, rt, 0.8);
    b.leaf(rate_mc, rt, 1.0);
    b.leaf(rate_db, rt, 1.0);
    b.leaf(profile_mc, rt, 1.2);
    b.leaf(profile_db, rt, 1.2);
    b.stages(geo, rt, 0.8, vec![one(geo_db)]);
    b.lookaside(rate, rt, 1.0, rate_mc, rate_db);
    b.lookaside(profile, rt, 1.0, profile_mc, profile_db);
    b.stages(search, rt, 1.0, vec![par(&[geo, rate])]);
    b.stages(frontend, rt, 1.0, vec![one(search), one(profile)]);

    // --- rt1: recommend --------------------------------------------------
    let rt = 1;
    b.leaf(geo_db, rt, 0.8);
    b.leaf(profile_mc, rt, 1.0);
    b.leaf(profile_db, rt, 1.0);
    b.stages(geo, rt, 0.8, vec![one(geo_db)]);
    b.lookaside(profile, rt, 1.0, profile_mc, profile_db);
    b.stages(recommendation, rt, 1.2, vec![par(&[geo, profile])]);
    b.stages(frontend, rt, 1.0, vec![one(recommendation)]);

    // --- rt2: reserve ------------------------------------------------------
    let rt = 2;
    b.leaf(user, rt, 0.5);
    b.leaf(res_mc, rt, 1.0);
    b.leaf(res_db, rt, 1.2);
    b.lookaside(reservation, rt, 1.0, res_mc, res_db);
    b.stages(frontend, rt, 1.0, vec![par(&[user, reservation])]);

    b.request_type(0, "search-hotel", frontend, 0.6, 60)
        .request_type(1, "recommend", frontend, 0.2, 60)
        .request_type(2, "reserve", frontend, 0.2, 80);
    b.with_cpu(frontend, 6.0);
    b.build()
}

/// Train-Ticket booking service: 41 services, four request types
/// (search-ticket, book-ticket, pay, cancel).
pub fn train_ticket() -> AppSpec {
    let mut b = AppBuilder::new("train-ticket", 4);

    let ui = b.service("ts-ui-dashboard", Tier::Frontend);
    let auth = b.service("ts-auth", Tier::Logic);
    let user = b.service("ts-user", Tier::Logic);
    let verification = b.service("ts-verification-code", Tier::Logic);
    let station = b.service("ts-station", Tier::Logic);
    let train = b.service("ts-train", Tier::Logic);
    let config = b.service("ts-config", Tier::Logic);
    let security = b.service("ts-security", Tier::Logic);
    let contacts = b.service("ts-contacts", Tier::Logic);
    let order = b.service("ts-order", Tier::Logic);
    let order_other = b.service("ts-order-other", Tier::Logic);
    let preserve = b.service("ts-preserve", Tier::Logic);
    let price = b.service("ts-price", Tier::Logic);
    let basic = b.service("ts-basic", Tier::Logic);
    let ticketinfo = b.service("ts-ticketinfo", Tier::Logic);
    let travel = b.service("ts-travel", Tier::Logic);
    let travel2 = b.service("ts-travel2", Tier::Logic);
    let route = b.service("ts-route", Tier::Logic);
    let route_plan = b.service("ts-route-plan", Tier::Logic);
    let travel_plan = b.service("ts-travel-plan", Tier::Logic);
    let seat = b.service("ts-seat", Tier::Logic);
    let food = b.service("ts-food", Tier::Logic);
    let food_map = b.service("ts-food-map", Tier::Logic);
    let consign = b.service("ts-consign", Tier::Logic);
    let consign_price = b.service("ts-consign-price", Tier::Logic);
    let notification = b.service("ts-notification", Tier::Logic);
    let payment = b.service("ts-payment", Tier::Logic);
    let inside_payment = b.service("ts-inside-payment", Tier::Logic);
    let cancel = b.service("ts-cancel", Tier::Logic);
    let rebook = b.service("ts-rebook", Tier::Logic);
    let assurance = b.service("ts-assurance", Tier::Logic);

    let user_db = b.service("ts-user-mongodb", Tier::Db);
    let order_db = b.service("ts-order-mongodb", Tier::Db);
    let order_other_db = b.service("ts-order-other-mongodb", Tier::Db);
    let route_db = b.service("ts-route-mongodb", Tier::Db);
    let travel_db = b.service("ts-travel-mongodb", Tier::Db);
    let station_db = b.service("ts-station-mongodb", Tier::Db);
    let price_db = b.service("ts-price-mongodb", Tier::Db);
    let food_db = b.service("ts-food-mongodb", Tier::Db);
    let consign_db = b.service("ts-consign-mongodb", Tier::Db);
    let payment_db = b.service("ts-payment-mongodb", Tier::Db);
    assert_eq!(b.service_count(), 41);

    // --- rt0: search-ticket ---------------------------------------------
    let rt = 0;
    b.leaf(route_db, rt, 1.0);
    b.leaf(travel_db, rt, 1.0);
    b.leaf(station_db, rt, 0.8);
    b.leaf(price_db, rt, 0.8);
    b.leaf(train, rt, 0.5);
    b.stages(route, rt, 0.8, vec![one(route_db)]);
    b.stages(route_plan, rt, 1.0, vec![one(route)]);
    b.stages(station, rt, 0.6, vec![one(station_db)]);
    b.stages(price, rt, 0.6, vec![one(price_db)]);
    b.stages(basic, rt, 0.8, vec![par(&[station, price])]);
    b.stages(ticketinfo, rt, 0.8, vec![one(basic)]);
    b.stages(
        travel,
        rt,
        1.0,
        vec![par(&[ticketinfo, train, route]), one(travel_db)],
    );
    b.stages(travel_plan, rt, 1.0, vec![par(&[route_plan, travel])]);
    b.stages(ui, rt, 1.0, vec![one(travel_plan)]);

    // --- rt1: book-ticket ---------------------------------------------------
    let rt = 1;
    b.leaf(user_db, rt, 0.8);
    b.leaf(verification, rt, 0.4);
    b.leaf(order_db, rt, 1.2);
    b.leaf(station_db, rt, 0.6);
    b.leaf(price_db, rt, 0.6);
    b.leaf(food_db, rt, 0.6);
    b.leaf(seat, rt, 0.8);
    b.leaf(contacts, rt, 0.5);
    b.leaf(assurance, rt, 0.5);
    b.leaf(notification, rt, 0.5);
    b.stages(user, rt, 0.6, vec![one(user_db)]);
    b.stages(auth, rt, 0.6, vec![par(&[user, verification])]);
    b.stages(order, rt, 1.0, vec![one(order_db)]);
    b.stages(security, rt, 0.8, vec![one(order)]);
    b.stages(station, rt, 0.6, vec![one(station_db)]);
    b.stages(price, rt, 0.6, vec![one(price_db)]);
    b.stages(basic, rt, 0.8, vec![par(&[station, price])]);
    b.stages(ticketinfo, rt, 0.8, vec![one(basic)]);
    b.stages(food_map, rt, 0.6, vec![one(food_db)]);
    b.stages(food, rt, 0.6, vec![one(food_map)]);
    b.stages(
        preserve,
        rt,
        1.2,
        vec![
            par(&[security, contacts, ticketinfo, assurance]),
            par(&[seat, food]),
            one(order),
            bg(notification),
        ],
    );
    b.stages(ui, rt, 1.0, vec![one(auth), one(preserve)]);

    // --- rt2: pay ---------------------------------------------------------------
    let rt = 2;
    b.leaf(order_db, rt, 1.0);
    b.leaf(payment_db, rt, 1.0);
    b.leaf(notification, rt, 0.5);
    b.stages(order, rt, 0.8, vec![one(order_db)]);
    b.stages(payment, rt, 0.8, vec![one(payment_db)]);
    b.stages(
        inside_payment,
        rt,
        1.0,
        vec![one(order), one(payment), bg(notification)],
    );
    b.stages(ui, rt, 1.0, vec![one(inside_payment)]);

    // --- rt3: cancel ---------------------------------------------------------
    let rt = 3;
    b.leaf(order_db, rt, 1.0);
    b.leaf(payment_db, rt, 0.8);
    b.leaf(notification, rt, 0.5);
    b.leaf(user_db, rt, 0.6);
    b.stages(order, rt, 0.8, vec![one(order_db)]);
    b.stages(user, rt, 0.6, vec![one(user_db)]);
    b.stages(payment, rt, 0.8, vec![one(payment_db)]);
    b.stages(inside_payment, rt, 0.8, vec![one(payment)]);
    b.stages(
        cancel,
        rt,
        1.0,
        vec![par(&[order, user]), one(inside_payment), bg(notification)],
    );
    b.stages(ui, rt, 1.0, vec![one(cancel)]);

    let _ = (
        config,
        order_other,
        travel2,
        consign,
        consign_price,
        rebook,
        order_other_db,
        consign_db,
    );

    b.request_type(0, "search-ticket", ui, 0.45, 100)
        .request_type(1, "book-ticket", ui, 0.35, 150)
        .request_type(2, "pay", ui, 0.1, 80)
        .request_type(3, "cancel", ui, 0.1, 80);
    b.with_cpu(ui, 6.0);
    b.build()
}

/// The Fig. 2(b) compose-post subgraph used for Table 1: Nginx (N) fans
/// out to video (V), userTag (U) and text (T); U calls uniqueID (I)
/// sequentially; T calls composePost (C); C triggers writeTimeline (W)
/// in the background.
///
/// Demands are tuned so the unstressed per-service latencies sit in the
/// same regime as Table 1's unstressed columns (N ≈ 2-3 ms, V ≈ 70 ms,
/// U ≈ 90 ms with I inside, T ≈ 30 ms, C ≈ 50 ms).
pub fn fig2_compose_post() -> AppSpec {
    let mut b = AppBuilder::new("fig2-compose-post", 1);
    let n = b.service("nginx", Tier::Frontend);
    let v = b.service("video", Tier::Media);
    let u = b.service("user-tag", Tier::Logic);
    let i = b.service("unique-id", Tier::Logic);
    let t = b.service("text", Tier::Logic);
    let c = b.service("compose-post", Tier::Logic);
    let w = b.service("write-timeline", Tier::Logic);

    let demand = |cpu_ms: f64, mem_mb: f64| DemandProfile {
        cpu_us: cpu_ms * 1_000.0,
        mem_mb,
        llc_ws_mb: 2.0,
        llc_sensitivity: 0.5,
        io_mb: 0.0,
        resp_kb: 8.0,
        cv: 0.12,
    };

    use firm_sim::spec::Behavior;
    b.with_cpu(n, 6.0);
    b.stages(n, 0, 1.0, vec![par(&[v, u, t])]);
    // Per-service demands tuned to the Table 1 unstressed regime.
    // Video is deliberately memory-traffic heavy and LLC-sensitive so
    // that memory/LLC stress shifts the CP onto it (Table 1's ⟨V,CP1⟩).
    let video_demand = DemandProfile {
        llc_ws_mb: 8.0,
        llc_sensitivity: 0.8,
        ..demand(35.0, 60.0)
    };
    let overrides: [(firm_sim::ServiceId, DemandProfile, Vec<Stage>); 6] = [
        (v, video_demand, vec![]),
        (u, demand(58.0, 6.0), vec![one(i)]),
        (i, demand(24.0, 1.5), vec![]),
        (t, demand(26.0, 2.0), vec![one(c)]),
        (c, demand(48.0, 4.0), vec![bg(w)]),
        (w, demand(35.0, 3.0), vec![]),
    ];
    for (svc, d, stages) in overrides {
        let behavior = if stages.is_empty() {
            Behavior::leaf(d)
        } else {
            Behavior::with_stages(d, stages)
        };
        b.set_behavior(svc, 0, behavior);
    }
    b.request_type(0, "compose-post", n, 1.0, 250);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_sim::{spec::ClusterSpec, SimDuration, Simulation};

    #[test]
    fn service_counts_match_paper() {
        for bench in ALL_BENCHMARKS {
            let app = bench.build();
            assert_eq!(
                app.services.len(),
                bench.paper_service_count(),
                "{} service count",
                bench.name()
            );
            assert!(app.validate().is_ok(), "{} invalid", bench.name());
        }
    }

    #[test]
    fn all_benchmarks_serve_requests() {
        for bench in ALL_BENCHMARKS {
            let app = bench.build();
            let n_rts = app.request_types.len();
            let mut sim = Simulation::builder(ClusterSpec::paper_cluster(), app, 1).build();
            sim.run_for(SimDuration::from_secs(2));
            let done = sim.drain_completed();
            assert!(
                done.len() > 100,
                "{}: only {} completed",
                bench.name(),
                done.len()
            );
            let drops = done.iter().filter(|r| r.dropped).count();
            assert!(
                (drops as f64) < done.len() as f64 * 0.02,
                "{}: {} drops out of {}",
                bench.name(),
                drops,
                done.len()
            );
            // Every request type flows.
            for rt in 0..n_rts {
                assert!(
                    done.iter().any(|r| r.request_type.index() == rt),
                    "{}: request type {rt} never completed",
                    bench.name()
                );
            }
        }
    }

    #[test]
    fn workflow_patterns_present() {
        // The paper claims the benchmarks cover all three workflow
        // patterns (§4.1); check on Social Network traces.
        let app = social_network();
        let mut sim = Simulation::builder(ClusterSpec::small(4), app, 2).build();
        sim.run_for(SimDuration::from_secs(1));
        let done = sim.drain_completed();
        let mut saw_background = false;
        let mut saw_parallel_stage = false;
        let mut saw_sequential_stages = false;
        for r in &done {
            for s in &r.spans {
                if s.background {
                    saw_background = true;
                }
                let sync: Vec<_> = s.calls.iter().filter(|c| !c.background).collect();
                if sync.len() >= 2 {
                    let same_instant = sync.iter().any(|a| {
                        sync.iter()
                            .any(|b| a.child_span != b.child_span && a.sent == b.sent)
                    });
                    if same_instant {
                        saw_parallel_stage = true;
                    }
                    if sync.iter().any(|a| {
                        sync.iter().any(|b| {
                            b.sent > a.sent && a.returned.map(|r| r <= b.sent).unwrap_or(false)
                        })
                    }) {
                        saw_sequential_stages = true;
                    }
                }
            }
        }
        assert!(saw_background, "no background workflow observed");
        assert!(saw_parallel_stage, "no parallel workflow observed");
        assert!(saw_sequential_stages, "no sequential workflow observed");
    }

    #[test]
    fn fig2_latency_regime_matches_table1() {
        let app = fig2_compose_post();
        assert_eq!(app.services.len(), 7);
        // The subgraph's services do tens of ms of work per request;
        // drive it well under saturation like the paper's §2 experiment.
        let mut sim = Simulation::builder(ClusterSpec::small(3), app, 3)
            .arrivals(Box::new(firm_sim::PoissonArrivals::new(8.0)))
            .build();
        sim.run_for(SimDuration::from_secs(10));
        let done = sim.drain_completed();
        assert!(done.len() > 50);
        let mean_ms = done
            .iter()
            .filter(|r| !r.dropped)
            .map(|r| r.latency.as_millis_f64())
            .sum::<f64>()
            / done.len() as f64;
        // Unstressed end-to-end sits near the U-chain ≈ 90-130 ms.
        assert!(
            (60.0..200.0).contains(&mean_ms),
            "mean end-to-end {mean_ms} ms"
        );
    }
}
