//! A small builder DSL for assembling application topologies.

use firm_sim::spec::{AppSpec, Behavior, Call, DemandProfile, RequestTypeSpec, ServiceSpec, Stage};
use firm_sim::ServiceId;

/// Service tier; determines the default resource-demand profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// User-facing reverse proxy / API gateway: light CPU, network-heavy.
    Frontend,
    /// Business-logic service: CPU-bound.
    Logic,
    /// In-memory cache (memcached/redis): memory-bandwidth-bound and
    /// LLC-sensitive.
    Cache,
    /// Persistent store (MongoDB/MySQL): disk-I/O-bound.
    Db,
    /// Media processing (video/image): CPU- and memory-heavy with large
    /// responses.
    Media,
}

impl Tier {
    /// The default per-request demand of this tier, scaled by `work`
    /// (1.0 = nominal).
    pub fn demand(self, work: f64) -> DemandProfile {
        match self {
            Tier::Frontend => DemandProfile {
                cpu_us: 120.0 * work,
                mem_mb: 0.02 * work,
                llc_ws_mb: 0.3,
                llc_sensitivity: 0.1,
                io_mb: 0.0,
                resp_kb: 4.0,
                cv: 0.1,
            },
            Tier::Logic => DemandProfile {
                cpu_us: 450.0 * work,
                mem_mb: 0.08 * work,
                llc_ws_mb: 1.0,
                llc_sensitivity: 0.3,
                io_mb: 0.0,
                resp_kb: 2.0,
                cv: 0.2,
            },
            Tier::Cache => DemandProfile {
                cpu_us: 60.0 * work,
                mem_mb: 2.5 * work,
                llc_ws_mb: 6.0,
                llc_sensitivity: 0.9,
                io_mb: 0.0,
                resp_kb: 8.0,
                cv: 0.15,
            },
            Tier::Db => DemandProfile {
                cpu_us: 150.0 * work,
                mem_mb: 0.3 * work,
                llc_ws_mb: 2.0,
                llc_sensitivity: 0.4,
                io_mb: 0.35 * work,
                resp_kb: 6.0,
                cv: 0.35,
            },
            Tier::Media => DemandProfile {
                cpu_us: 900.0 * work,
                mem_mb: 4.0 * work,
                llc_ws_mb: 8.0,
                llc_sensitivity: 0.7,
                io_mb: 0.1 * work,
                resp_kb: 64.0,
                cv: 0.3,
            },
        }
    }

    /// Default CPU quota (cores) for this tier's containers.
    pub fn default_cpu(self) -> f64 {
        match self {
            Tier::Frontend => 4.0,
            Tier::Logic => 2.0,
            Tier::Cache => 2.0,
            Tier::Db => 2.0,
            Tier::Media => 4.0,
        }
    }
}

/// Incremental builder for [`AppSpec`]s.
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    services: Vec<ServiceSpec>,
    tiers: Vec<Tier>,
    request_types: Vec<RequestTypeSpec>,
    n_request_types: usize,
}

impl AppBuilder {
    /// Starts an application with a fixed number of request types.
    pub fn new(name: impl Into<String>, n_request_types: usize) -> Self {
        AppBuilder {
            name: name.into(),
            services: Vec::new(),
            tiers: Vec::new(),
            request_types: Vec::new(),
            n_request_types,
        }
    }

    /// Registers a service of a tier; returns its id.
    pub fn service(&mut self, name: impl Into<String>, tier: Tier) -> ServiceId {
        let mut spec = ServiceSpec::new(name, self.n_request_types);
        spec.initial_cpu = tier.default_cpu();
        let id = ServiceId(self.services.len() as u16);
        self.services.push(spec);
        self.tiers.push(tier);
        id
    }

    /// Number of services registered so far.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Registers a cache+database pair backing a logic service; returns
    /// `(cache, db)`.
    pub fn storage_pair(&mut self, base: &str) -> (ServiceId, ServiceId) {
        let cache = self.service(format!("{base}-memcached"), Tier::Cache);
        let db = self.service(format!("{base}-mongodb"), Tier::Db);
        (cache, db)
    }

    /// Sets a leaf behaviour (compute only) for `(service, rt)`, with the
    /// tier's default demand scaled by `work`.
    pub fn leaf(&mut self, service: ServiceId, rt: usize, work: f64) -> &mut Self {
        let demand = self.tiers[service.index()].demand(work);
        self.services[service.index()].behaviors[rt] = Some(Behavior::leaf(demand));
        self
    }

    /// Sets a behaviour with downstream call stages for `(service, rt)`.
    pub fn stages(
        &mut self,
        service: ServiceId,
        rt: usize,
        work: f64,
        stages: Vec<Stage>,
    ) -> &mut Self {
        let demand = self.tiers[service.index()].demand(work);
        self.services[service.index()].behaviors[rt] = Some(Behavior::with_stages(demand, stages));
        self
    }

    /// Convenience: a cache-then-db lookaside pattern — call the cache,
    /// then the database, sequentially (two stages).
    pub fn lookaside(
        &mut self,
        service: ServiceId,
        rt: usize,
        work: f64,
        cache: ServiceId,
        db: ServiceId,
    ) -> &mut Self {
        self.stages(
            service,
            rt,
            work,
            vec![Stage::single(cache), Stage::single(db)],
        )
    }

    /// Sets an explicit behaviour (custom demand profile) for
    /// `(service, rt)`.
    pub fn set_behavior(&mut self, service: ServiceId, rt: usize, behavior: Behavior) -> &mut Self {
        self.services[service.index()].behaviors[rt] = Some(behavior);
        self
    }

    /// Registers a request type; `idx` must be < `n_request_types`.
    pub fn request_type(
        &mut self,
        idx: usize,
        name: impl Into<String>,
        entry: ServiceId,
        weight: f64,
        slo_ms: u64,
    ) -> &mut Self {
        assert_eq!(
            idx,
            self.request_types.len(),
            "register request types in order"
        );
        assert!(
            idx < self.n_request_types,
            "request-type index out of range"
        );
        self.request_types.push(RequestTypeSpec {
            name: name.into(),
            entry,
            weight,
            slo_latency_us: slo_ms * 1_000,
        });
        self
    }

    /// Overrides the initial CPU quota of a service.
    pub fn with_cpu(&mut self, service: ServiceId, cpu: f64) -> &mut Self {
        self.services[service.index()].initial_cpu = cpu;
        self
    }

    /// Overrides the initial replica count of a service.
    pub fn with_replicas(&mut self, service: ServiceId, replicas: u32) -> &mut Self {
        self.services[service.index()].initial_replicas = replicas;
        self
    }

    /// Finalizes and validates the application.
    ///
    /// # Panics
    ///
    /// Panics if the topology is structurally invalid (the builders are
    /// static data; invalid topologies are programming errors).
    pub fn build(self) -> AppSpec {
        let app = AppSpec {
            name: self.name,
            services: self.services,
            request_types: self.request_types,
        };
        if let Err(e) = app.validate() {
            panic!("invalid topology {}: {e}", app.name);
        }
        app
    }
}

/// Multiplies every service's initial replica count by `factor` — the
/// replica-fan-out half of the catalog `scale_factor` knob. `factor`
/// is clamped to ≥ 1, so the result always satisfies the
/// replicas-≥-1 topology invariant.
pub fn scale_replicas(app: &mut AppSpec, factor: u32) {
    let factor = factor.max(1);
    for svc in &mut app.services {
        svc.initial_replicas = svc.initial_replicas.max(1).saturating_mul(factor);
    }
}

/// Shorthand for a parallel stage.
pub fn par(targets: &[ServiceId]) -> Stage {
    Stage::parallel(targets)
}

/// Shorthand for a single-call stage.
pub fn one(target: ServiceId) -> Stage {
    Stage::single(target)
}

/// Shorthand for a background-call stage.
pub fn bg(target: ServiceId) -> Stage {
    Stage {
        calls: vec![Call::background(target)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_valid_app() {
        let mut b = AppBuilder::new("mini", 1);
        let fe = b.service("frontend", Tier::Frontend);
        let logic = b.service("logic", Tier::Logic);
        let (cache, db) = b.storage_pair("logic");
        b.leaf(cache, 0, 1.0);
        b.leaf(db, 0, 1.0);
        b.lookaside(logic, 0, 1.0, cache, db);
        b.stages(fe, 0, 1.0, vec![one(logic)]);
        b.request_type(0, "get", fe, 1.0, 100);
        let app = b.build();
        assert_eq!(app.services.len(), 4);
        assert_eq!(app.request_types.len(), 1);
    }

    #[test]
    fn tier_demands_span_bottleneck_classes() {
        assert!(Tier::Logic.demand(1.0).cpu_us > Tier::Cache.demand(1.0).cpu_us);
        assert!(Tier::Cache.demand(1.0).mem_mb > Tier::Logic.demand(1.0).mem_mb);
        assert!(Tier::Db.demand(1.0).io_mb > 0.0);
        assert_eq!(Tier::Logic.demand(1.0).io_mb, 0.0);
        assert!(Tier::Media.demand(1.0).resp_kb > Tier::Frontend.demand(1.0).resp_kb);
        // Work scaling applies to CPU.
        assert_eq!(Tier::Logic.demand(2.0).cpu_us, 900.0);
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn build_rejects_missing_entry_behavior() {
        let mut b = AppBuilder::new("broken", 1);
        let fe = b.service("frontend", Tier::Frontend);
        b.request_type(0, "get", fe, 1.0, 100);
        b.build();
    }
}
