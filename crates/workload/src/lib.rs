//! Benchmark application topologies and load generators.
//!
//! The paper evaluates FIRM on four real-world microservice benchmarks
//! (§4.1): DeathStarBench's Social Network (36 services), Media Service
//! (38), and Hotel Reservation (15), plus the Train-Ticket booking system
//! (41). This crate builds equivalent [`firm_sim::spec::AppSpec`]
//! topologies — same service counts, the same workflow-pattern mix
//! (sequential, parallel, background, §3.2), and per-tier resource-demand
//! profiles spanning the same bottleneck classes (CPU-, memory-BW-, LLC-,
//! IO- and network-bound).
//!
//! It also provides the wrk2-style open-loop arrival processes of §4.1:
//! constant, diurnal, exponential (Poisson), and load with spikes.
//!
//! # Examples
//!
//! ```
//! use firm_workload::apps::Benchmark;
//!
//! let app = Benchmark::SocialNetwork.build();
//! assert_eq!(app.services.len(), 36);
//! app.validate().expect("valid topology");
//! ```

pub mod apps;
pub mod builder;
pub mod generator;
pub mod wire;

pub use apps::{fig2_compose_post, Benchmark};
pub use builder::{scale_replicas, AppBuilder, Tier};
pub use generator::{
    DiurnalArrivals, LoadShape, ReplayArrivals, ReplayTrace, SpikeArrivals, StepArrivals,
};
