//! Open-loop load shapes (§4.1): diurnal, spiky, and stepped arrivals.
//!
//! Constant and exponential (Poisson) processes live in
//! [`firm_sim::arrival`]; this module adds the time-varying shapes the
//! paper drives its benchmarks with.

use std::sync::Arc;

use firm_sim::{ArrivalProcess, ArrivalRecord, SimDuration, SimRng, SimTime};

/// Sinusoidal diurnal load: `rate(t) = base · (1 + amplitude·sin(2πt/p))`.
#[derive(Debug, Clone)]
pub struct DiurnalArrivals {
    base: f64,
    amplitude: f64,
    period: SimDuration,
}

impl DiurnalArrivals {
    /// Creates a diurnal process.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0`, `0 ≤ amplitude < 1`, and `period > 0`.
    pub fn new(base: f64, amplitude: f64, period: SimDuration) -> Self {
        assert!(base > 0.0, "base rate must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(period > SimDuration::ZERO, "period must be positive");
        DiurnalArrivals {
            base,
            amplitude,
            period,
        }
    }

    fn rate_at(&self, now: SimTime) -> f64 {
        let phase = (now.as_secs_f64() / self.period.as_secs_f64()) * std::f64::consts::TAU;
        self.base * (1.0 + self.amplitude * phase.sin())
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn next_interarrival(&mut self, now: SimTime, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.rate_at(now)))
    }

    fn nominal_rate(&self, now: SimTime) -> f64 {
        self.rate_at(now)
    }
}

/// Periodic load spikes: base Poisson rate with multiplicative bursts.
#[derive(Debug, Clone)]
pub struct SpikeArrivals {
    base: f64,
    spike_multiplier: f64,
    spike_every: SimDuration,
    spike_duration: SimDuration,
}

impl SpikeArrivals {
    /// Creates a spiky process: every `spike_every`, the rate jumps to
    /// `base · spike_multiplier` for `spike_duration`.
    ///
    /// # Panics
    ///
    /// Panics unless rates and durations are positive and the spike fits
    /// in its period.
    pub fn new(
        base: f64,
        spike_multiplier: f64,
        spike_every: SimDuration,
        spike_duration: SimDuration,
    ) -> Self {
        assert!(base > 0.0 && spike_multiplier >= 1.0, "invalid rates");
        assert!(
            SimDuration::ZERO < spike_duration && spike_duration < spike_every,
            "spike must fit in its period"
        );
        SpikeArrivals {
            base,
            spike_multiplier,
            spike_every,
            spike_duration,
        }
    }

    fn rate_at(&self, now: SimTime) -> f64 {
        let into_period = now.as_micros() % self.spike_every.as_micros();
        if into_period < self.spike_duration.as_micros() {
            self.base * self.spike_multiplier
        } else {
            self.base
        }
    }
}

impl ArrivalProcess for SpikeArrivals {
    fn next_interarrival(&mut self, now: SimTime, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.rate_at(now)))
    }

    fn nominal_rate(&self, now: SimTime) -> f64 {
        self.rate_at(now)
    }
}

/// Piecewise-constant rate steps, e.g. for load sweeps (Fig. 5).
#[derive(Debug, Clone)]
pub struct StepArrivals {
    /// `(start_time, rate)` steps, sorted by time; the rate before the
    /// first step is the first rate.
    steps: Vec<(SimTime, f64)>,
}

impl StepArrivals {
    /// Creates a stepped process.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, unsorted, or contains a non-positive
    /// rate.
    pub fn new(steps: Vec<(SimTime, f64)>) -> Self {
        assert!(!steps.is_empty(), "need at least one step");
        assert!(
            steps.windows(2).all(|w| w[0].0 <= w[1].0),
            "steps must be sorted by time"
        );
        assert!(
            steps.iter().all(|(_, r)| *r > 0.0),
            "rates must be positive"
        );
        StepArrivals { steps }
    }

    fn rate_at(&self, now: SimTime) -> f64 {
        let mut rate = self.steps[0].1;
        for &(at, r) in &self.steps {
            if at <= now {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }
}

impl ArrivalProcess for StepArrivals {
    fn next_interarrival(&mut self, now: SimTime, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.rate_at(now)))
    }

    fn nominal_rate(&self, now: SimTime) -> f64 {
        self.rate_at(now)
    }
}

/// A recorded arrival sequence: absolute arrival offsets from the start
/// of an episode, plus the span the recording covers.
///
/// A trace is plain, cheaply clonable data (the offsets live behind an
/// [`Arc`]), so it can sit inside a scenario catalog and be compared,
/// stored, and shipped to worker threads like any other load shape.
/// Build one from a live run's [`firm_sim::Simulation::arrival_log`]
/// with [`ReplayTrace::from_records`], or synthesize an "incident
/// recording" from any other shape with [`ReplayTrace::synthesize`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTrace {
    /// Arrival offsets from episode start, microseconds, nondecreasing.
    offsets_us: Arc<Vec<u64>>,
    /// The span the recording covers (≥ the last offset).
    span_us: u64,
}

impl ReplayTrace {
    /// Builds a trace from raw offsets (µs from episode start).
    ///
    /// # Panics
    ///
    /// Panics if `offsets_us` is empty or unsorted, or if `span` does
    /// not cover the last offset.
    pub fn from_offsets(offsets_us: Vec<u64>, span: SimDuration) -> Self {
        assert!(!offsets_us.is_empty(), "a replay trace needs arrivals");
        assert!(
            offsets_us.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be nondecreasing"
        );
        let span_us = span.as_micros();
        assert!(
            span_us >= *offsets_us.last().expect("non-empty"),
            "span must cover the last arrival"
        );
        assert!(span_us > 0, "span must be positive");
        ReplayTrace {
            offsets_us: Arc::new(offsets_us),
            span_us,
        }
    }

    /// Builds a trace from a recorded arrival log, re-based so the first
    /// window starts at `start` and covers `span`.
    pub fn from_records(records: &[ArrivalRecord], start: SimTime, span: SimDuration) -> Self {
        let base = start.as_micros();
        let offsets = records
            .iter()
            .map(|r| r.at.as_micros().saturating_sub(base))
            .collect();
        ReplayTrace::from_offsets(offsets, span)
    }

    /// Synthesizes a recording by sampling another load shape for
    /// `duration` with a dedicated RNG stream — a deterministic stand-in
    /// for a captured production incident.
    ///
    /// # Panics
    ///
    /// Panics if the sampled shape produces no arrival within
    /// `duration`.
    pub fn synthesize(shape: &LoadShape, duration: SimDuration, seed: u64) -> Self {
        let mut process = shape.build();
        let mut rng = SimRng::new(seed);
        let mut offsets = Vec::new();
        let mut now = SimTime::ZERO;
        loop {
            let gap = process.next_interarrival(now, &mut rng);
            now += gap;
            if now.as_micros() > duration.as_micros() {
                break;
            }
            offsets.push(now.as_micros());
        }
        ReplayTrace::from_offsets(offsets, duration)
    }

    /// Number of recorded arrivals.
    pub fn len(&self) -> usize {
        self.offsets_us.len()
    }

    /// True when the trace records no arrivals (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.offsets_us.is_empty()
    }

    /// The recorded span.
    pub fn span(&self) -> SimDuration {
        SimDuration::from_micros(self.span_us)
    }

    /// Arrival offsets from episode start, µs.
    pub fn offsets_us(&self) -> &[u64] {
        &self.offsets_us
    }

    /// Mean arrival rate over the recorded span, req/s.
    pub fn mean_rate(&self) -> f64 {
        self.offsets_us.len() as f64 / (self.span_us as f64 / 1e6)
    }

    /// Per-second arrival counts over the span (the replay's
    /// nominal-rate profile).
    fn second_buckets(&self) -> Vec<f64> {
        let n = self.span_us.div_ceil(1_000_000).max(1) as usize;
        let mut buckets = vec![0.0; n];
        for &off in self.offsets_us.iter() {
            let idx = ((off / 1_000_000) as usize).min(n - 1);
            buckets[idx] += 1.0;
        }
        buckets
    }
}

/// Replays a [`ReplayTrace`] as an [`ArrivalProcess`]: arrivals land at
/// exactly the recorded offsets. When the trace is exhausted it wraps
/// around, repeating the recording from the episode's next multiple of
/// the span — so a 30 s incident recording can drive a 120 s run.
#[derive(Debug, Clone)]
pub struct ReplayArrivals {
    trace: ReplayTrace,
    /// Next offset index to replay.
    idx: usize,
    /// Absolute µs base of the current repetition of the trace.
    cycle_base_us: u64,
    /// Per-second rate profile for `nominal_rate`.
    buckets: Vec<f64>,
}

impl ReplayArrivals {
    /// Creates the process from a recording.
    pub fn new(trace: ReplayTrace) -> Self {
        let buckets = trace.second_buckets();
        ReplayArrivals {
            trace,
            idx: 0,
            cycle_base_us: 0,
            buckets,
        }
    }
}

impl ArrivalProcess for ReplayArrivals {
    fn next_interarrival(&mut self, now: SimTime, _rng: &mut SimRng) -> SimDuration {
        if self.idx >= self.trace.offsets_us().len() {
            self.idx = 0;
            self.cycle_base_us += self.trace.span_us;
        }
        let target = self.cycle_base_us + self.trace.offsets_us()[self.idx];
        self.idx += 1;
        SimDuration::from_micros(target.saturating_sub(now.as_micros()))
    }

    fn nominal_rate(&self, now: SimTime) -> f64 {
        let into = now.as_micros() % self.trace.span_us;
        let idx = ((into / 1_000_000) as usize).min(self.buckets.len() - 1);
        self.buckets[idx]
    }
}

/// A declarative arrival-shape specification, the load half of a fleet
/// scenario.
///
/// Scenario catalogs need load shapes that can be written down as plain
/// data (named, compared, stored in tables) and only turned into a live
/// [`ArrivalProcess`] when a simulation is built. The synthetic shapes
/// cover the paper's §4.1 regimes — steady Poisson traffic, diurnal
/// (sinusoidal) variation, and flash crowds (periodic multiplicative
/// bursts) — and [`LoadShape::Replay`] feeds a recorded arrival trace
/// back in verbatim, so catalogs can re-run captured incidents instead
/// of synthetic curves.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadShape {
    /// Poisson arrivals at a fixed rate (req/s).
    Steady {
        /// Mean arrival rate, req/s.
        rate: f64,
    },
    /// Sinusoidal rate: `base · (1 + amplitude·sin(2πt/period))`.
    Diurnal {
        /// Mean arrival rate, req/s.
        base: f64,
        /// Relative swing in `[0, 1)`.
        amplitude: f64,
        /// Oscillation period, seconds.
        period_secs: u64,
    },
    /// Flash crowd: every `every_secs`, the rate jumps to
    /// `base · multiplier` for `crest_secs`.
    FlashCrowd {
        /// Baseline arrival rate, req/s.
        base: f64,
        /// Burst multiplier (≥ 1).
        multiplier: f64,
        /// Burst period, seconds.
        every_secs: u64,
        /// Burst length, seconds (must be < `every_secs`).
        crest_secs: u64,
    },
    /// Replay of a recorded arrival sequence: arrivals land at exactly
    /// the recorded offsets, wrapping around when the run outlives the
    /// recording.
    Replay {
        /// The recording to replay.
        trace: ReplayTrace,
    },
}

impl LoadShape {
    /// Instantiates the live arrival process.
    ///
    /// # Panics
    ///
    /// Panics if the shape parameters violate the constructor contracts
    /// of the underlying processes (non-positive rates, oversized
    /// bursts, amplitude outside `[0, 1)`).
    pub fn build(&self) -> Box<dyn ArrivalProcess> {
        match self {
            LoadShape::Steady { rate } => Box::new(firm_sim::PoissonArrivals::new(*rate)),
            LoadShape::Diurnal {
                base,
                amplitude,
                period_secs,
            } => Box::new(DiurnalArrivals::new(
                *base,
                *amplitude,
                SimDuration::from_secs(*period_secs),
            )),
            LoadShape::FlashCrowd {
                base,
                multiplier,
                every_secs,
                crest_secs,
            } => Box::new(SpikeArrivals::new(
                *base,
                *multiplier,
                SimDuration::from_secs(*every_secs),
                SimDuration::from_secs(*crest_secs),
            )),
            LoadShape::Replay { trace } => Box::new(ReplayArrivals::new(trace.clone())),
        }
    }

    /// The time-averaged arrival rate of the shape, req/s.
    pub fn mean_rate(&self) -> f64 {
        match self {
            LoadShape::Steady { rate } => *rate,
            // The sinusoid integrates to its base over a full period.
            LoadShape::Diurnal { base, .. } => *base,
            LoadShape::FlashCrowd {
                base,
                multiplier,
                every_secs,
                crest_secs,
            } => {
                let crest_frac = *crest_secs as f64 / *every_secs as f64;
                base * (1.0 + (multiplier - 1.0) * crest_frac)
            }
            LoadShape::Replay { trace } => trace.mean_rate(),
        }
    }

    /// Returns the shape with its rate axis multiplied by `factor` —
    /// the arrival-rate half of the catalog `scale_factor` knob.
    /// Relative parameters (amplitude, multiplier, periods) and replay
    /// recordings are untouched: a replayed incident is a fixed
    /// arrival sequence, so scaling it would fabricate arrivals that
    /// were never recorded.
    pub fn scaled(self, factor: f64) -> LoadShape {
        match self {
            LoadShape::Steady { rate } => LoadShape::Steady {
                rate: rate * factor,
            },
            LoadShape::Diurnal {
                base,
                amplitude,
                period_secs,
            } => LoadShape::Diurnal {
                base: base * factor,
                amplitude,
                period_secs,
            },
            LoadShape::FlashCrowd {
                base,
                multiplier,
                every_secs,
                crest_secs,
            } => LoadShape::FlashCrowd {
                base: base * factor,
                multiplier,
                every_secs,
                crest_secs,
            },
            replay @ LoadShape::Replay { .. } => replay,
        }
    }

    /// A short label for reports (`steady@100`, `diurnal@80±50%`,
    /// `flash@60x4`, `replay@105x7432`).
    pub fn label(&self) -> String {
        match self {
            LoadShape::Steady { rate } => format!("steady@{rate:.0}"),
            LoadShape::Diurnal {
                base, amplitude, ..
            } => format!("diurnal@{base:.0}\u{b1}{:.0}%", amplitude * 100.0),
            LoadShape::FlashCrowd {
                base, multiplier, ..
            } => format!("flash@{base:.0}x{multiplier:.0}"),
            LoadShape::Replay { trace } => {
                format!("replay@{:.0}x{}", trace.mean_rate(), trace.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(p: &mut dyn ArrivalProcess, from: SimTime, n: usize) -> f64 {
        let mut rng = SimRng::new(7);
        let total: f64 = (0..n)
            .map(|_| p.next_interarrival(from, &mut rng).as_secs_f64())
            .sum();
        n as f64 / total
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let p = DiurnalArrivals::new(100.0, 0.5, SimDuration::from_secs(100));
        assert!((p.nominal_rate(SimTime::ZERO) - 100.0).abs() < 1e-9);
        // Peak at a quarter period.
        assert!((p.nominal_rate(SimTime::from_secs(25)) - 150.0).abs() < 0.1);
        // Trough at three quarters.
        assert!((p.nominal_rate(SimTime::from_secs(75)) - 50.0).abs() < 0.1);
        let mut p = p;
        let measured = mean_rate(&mut p, SimTime::from_secs(25), 20_000);
        assert!((measured - 150.0).abs() < 7.0, "measured {measured}");
    }

    #[test]
    fn spikes_multiply_rate() {
        let p = SpikeArrivals::new(
            100.0,
            5.0,
            SimDuration::from_secs(60),
            SimDuration::from_secs(10),
        );
        assert_eq!(p.nominal_rate(SimTime::from_secs(5)), 500.0);
        assert_eq!(p.nominal_rate(SimTime::from_secs(30)), 100.0);
        assert_eq!(p.nominal_rate(SimTime::from_secs(65)), 500.0);
    }

    #[test]
    fn steps_switch_rates() {
        let p = StepArrivals::new(vec![
            (SimTime::ZERO, 100.0),
            (SimTime::from_secs(10), 300.0),
            (SimTime::from_secs(20), 50.0),
        ]);
        assert_eq!(p.nominal_rate(SimTime::from_secs(5)), 100.0);
        assert_eq!(p.nominal_rate(SimTime::from_secs(15)), 300.0);
        assert_eq!(p.nominal_rate(SimTime::from_secs(99)), 50.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_steps_rejected() {
        StepArrivals::new(vec![
            (SimTime::from_secs(10), 100.0),
            (SimTime::ZERO, 300.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "fit in its period")]
    fn oversized_spike_rejected() {
        SpikeArrivals::new(
            100.0,
            2.0,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        );
    }

    #[test]
    fn load_shapes_build_and_report_rates() {
        let shapes = [
            LoadShape::Steady { rate: 100.0 },
            LoadShape::Diurnal {
                base: 80.0,
                amplitude: 0.5,
                period_secs: 120,
            },
            LoadShape::FlashCrowd {
                base: 60.0,
                multiplier: 4.0,
                every_secs: 60,
                crest_secs: 15,
            },
        ];
        for shape in &shapes {
            let p = shape.build();
            assert!(p.nominal_rate(SimTime::ZERO) > 0.0, "{}", shape.label());
            assert!(shape.mean_rate() > 0.0);
            assert!(!shape.label().is_empty());
        }
        assert_eq!(shapes[0].mean_rate(), 100.0);
        assert_eq!(shapes[1].mean_rate(), 80.0);
        // 60·(1 + 3·0.25) = 105.
        assert!((shapes[2].mean_rate() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn replay_reproduces_recorded_offsets_exactly() {
        let trace = ReplayTrace::synthesize(
            &LoadShape::FlashCrowd {
                base: 100.0,
                multiplier: 4.0,
                every_secs: 10,
                crest_secs: 2,
            },
            SimDuration::from_secs(12),
            9,
        );
        assert!(trace.len() > 500, "only {} arrivals", trace.len());

        // Driving the process from t=0 reproduces every offset exactly,
        // regardless of the RNG handed in.
        let mut p = ReplayArrivals::new(trace.clone());
        let mut rng = SimRng::new(12345);
        let mut now = SimTime::ZERO;
        let mut replayed = Vec::with_capacity(trace.len());
        for _ in 0..trace.len() {
            now += p.next_interarrival(now, &mut rng);
            replayed.push(now.as_micros());
        }
        assert_eq!(replayed, trace.offsets_us());

        // The next arrival wraps into the second repetition of the span.
        now += p.next_interarrival(now, &mut rng);
        assert_eq!(
            now.as_micros(),
            trace.span().as_micros() + trace.offsets_us()[0]
        );
    }

    #[test]
    fn replay_nominal_rate_follows_the_recorded_burst() {
        let shape = LoadShape::FlashCrowd {
            base: 80.0,
            multiplier: 5.0,
            every_secs: 20,
            crest_secs: 4,
        };
        let trace = ReplayTrace::synthesize(&shape, SimDuration::from_secs(20), 11);
        let replay = ReplayArrivals::new(trace.clone());
        // Crest seconds see several times the base rate.
        let crest = replay.nominal_rate(SimTime::from_secs(1));
        let quiet = replay.nominal_rate(SimTime::from_secs(12));
        assert!(crest > quiet * 2.0, "crest {crest} quiet {quiet}");
        // Replay mean tracks the source shape's mean.
        assert!(
            (trace.mean_rate() - shape.mean_rate()).abs() < shape.mean_rate() * 0.2,
            "trace {} shape {}",
            trace.mean_rate(),
            shape.mean_rate()
        );
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn unsorted_replay_offsets_rejected() {
        ReplayTrace::from_offsets(vec![5, 3], SimDuration::from_secs(1));
    }
}
