//! The symmetric codec API: [`WireEncode`] / [`WireDecode`] and the
//! round-trip contract.
//!
//! Every type that crosses a process boundary implements both halves,
//! and the contract is `decode(encode(x)) == x` — checked directly by
//! [`assert_round_trip`] in each owning crate's tests. Encoding builds
//! a [`JsonValue`] tree (so rendering stays deterministic in one
//! place); decoding walks a parsed tree and reports failures as a
//! [`DecodeError`] carrying the path of fields it descended through,
//! e.g. `scenarios[3].load.rate: expected number, found string`.
//!
//! [`encode_line`] / [`decode_line`] wrap the codec for the fleet's
//! subprocess protocol: one frame per line, which is sound because the
//! escaper never lets a raw newline into rendered output.

use std::fmt;

use crate::parse::{parse, ParseError};
use crate::value::JsonValue;

/// Encoding half: build the wire document for a value.
pub trait WireEncode {
    /// The value as a document tree.
    fn encode(&self) -> JsonValue;
}

/// Decoding half: rebuild a value from a wire document.
pub trait WireDecode: Sized {
    /// Rebuilds the value; errors carry the field path to the failure.
    fn decode(v: &JsonValue) -> Result<Self, DecodeError>;
}

impl<T: WireEncode + ?Sized> WireEncode for &T {
    fn encode(&self) -> JsonValue {
        (**self).encode()
    }
}

/// A typed-decode failure: what went wrong and the field path that led
/// there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Dotted field path from the document root (empty at the root).
    pub path: String,
    /// What went wrong.
    pub msg: String,
}

impl DecodeError {
    /// A fresh error at the current position.
    pub fn new(msg: impl Into<String>) -> Self {
        DecodeError {
            path: String::new(),
            msg: msg.into(),
        }
    }

    /// The standard shape mismatch message.
    pub fn expected(what: &str, found: &JsonValue) -> Self {
        DecodeError::new(format!("expected {what}, found {}", found.kind()))
    }

    /// Prefixes a path segment (used while unwinding out of a field).
    pub fn push_segment(mut self, segment: &str) -> Self {
        if self.path.is_empty() {
            self.path = segment.to_string();
        } else if self.path.starts_with('[') {
            self.path = format!("{segment}{}", self.path);
        } else {
            self.path = format!("{segment}.{}", self.path);
        }
        self
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "decode error: {}", self.msg)
        } else {
            write!(f, "decode error at `{}`: {}", self.path, self.msg)
        }
    }
}

impl std::error::Error for DecodeError {}

/// Adds a path segment to a decode failure on the way out.
pub trait Context {
    /// Prefixes `segment` onto the error's field path.
    fn context(self, segment: &str) -> Self;
}

impl<T> Context for Result<T, DecodeError> {
    fn context(self, segment: &str) -> Self {
        self.map_err(|e| e.push_segment(segment))
    }
}

/// Either half of the text boundary failing: the bytes weren't JSON, or
/// the JSON wasn't the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The input was not valid JSON.
    Parse(ParseError),
    /// The document did not match the target type.
    Decode(DecodeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse(e) => e.fmt(f),
            WireError::Decode(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ParseError> for WireError {
    fn from(e: ParseError) -> Self {
        WireError::Parse(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// Renders a value to its wire bytes.
pub fn encode_string<T: WireEncode + ?Sized>(value: &T) -> String {
    value.encode().render()
}

/// Parses and decodes a value from wire bytes.
pub fn decode_string<T: WireDecode>(input: &str) -> Result<T, WireError> {
    Ok(T::decode(&parse(input)?)?)
}

/// Renders a value as one newline-terminated frame. The escaper
/// guarantees rendered JSON never contains a raw newline, so frames
/// split cleanly on `\n`.
pub fn encode_line<T: WireEncode + ?Sized>(value: &T) -> String {
    let mut frame = encode_string(value);
    debug_assert!(!frame.contains('\n'), "rendered frame contains newline");
    frame.push('\n');
    frame
}

/// Decodes one frame (ignores the trailing newline, if present).
pub fn decode_line<T: WireDecode>(line: &str) -> Result<T, WireError> {
    decode_string(line.trim_end_matches(['\n', '\r']))
}

/// Asserts the codec contract `decode(encode(x)) == x`, plus stability
/// of the rendered bytes. The shared round-trip check every migrated
/// type's tests call.
pub fn assert_round_trip<T>(value: &T)
where
    T: WireEncode + WireDecode + PartialEq + fmt::Debug,
{
    let bytes = encode_string(value);
    let back: T = decode_string(&bytes)
        .unwrap_or_else(|e| panic!("round trip failed: {e}\nwire bytes: {bytes}"));
    assert_eq!(&back, value, "decode(encode(x)) != x");
    assert_eq!(
        encode_string(&back),
        bytes,
        "re-encoding is not byte-stable"
    );
}

/// An insertion-ordered object builder for `encode` implementations.
#[derive(Debug, Default)]
pub struct Obj(Vec<(String, JsonValue)>);

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj(Vec::new())
    }

    /// Starts a tagged-union frame: an object whose first field is
    /// `"type": tag`. The shape every control-plane frame in the fleet
    /// protocol uses (handshake, heartbeat, response envelope), decoded
    /// by dispatching on [`JsonValue::tag`].
    pub fn tagged(tag: &str) -> Self {
        Obj::new().field("type", tag)
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: impl WireEncode) -> Self {
        self.0.push((key.to_string(), value.encode()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.0)
    }
}

impl JsonValue {
    /// Decodes a required object field, threading the key into error
    /// paths.
    pub fn field<T: WireDecode>(&self, key: &str) -> Result<T, DecodeError> {
        match self {
            JsonValue::Object(_) => match self.get(key) {
                Some(v) => T::decode(v).context(key),
                None => Err(DecodeError::new("missing field").push_segment(key)),
            },
            other => Err(DecodeError::expected("object", other)),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[JsonValue], DecodeError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(DecodeError::expected("array", other)),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, DecodeError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(DecodeError::expected("string", other)),
        }
    }

    /// The discriminant of a tagged-union frame: the object's `"type"`
    /// field, as built by [`Obj::tagged`]. Decoders for frame enums
    /// dispatch on this before reading the variant's fields.
    pub fn tag(&self) -> Result<&str, DecodeError> {
        match self {
            JsonValue::Object(_) => match self.get("type") {
                Some(v) => v.as_str().context("type"),
                None => Err(DecodeError::new("missing field").push_segment("type")),
            },
            other => Err(DecodeError::expected("object", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Primitive and container impls.
// ---------------------------------------------------------------------

impl WireEncode for bool {
    fn encode(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl WireDecode for bool {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(DecodeError::expected("bool", other)),
        }
    }
}

impl WireEncode for String {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl WireEncode for str {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl WireDecode for String {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        v.as_str().map(str::to_string)
    }
}

impl WireEncode for u64 {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(*self)
    }
}

impl WireDecode for u64 {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        match v {
            JsonValue::U64(n) => Ok(*n),
            other => Err(DecodeError::expected("unsigned integer", other)),
        }
    }
}

macro_rules! narrow_unsigned {
    ($($ty:ty),*) => {$(
        impl WireEncode for $ty {
            fn encode(&self) -> JsonValue {
                JsonValue::U64(*self as u64)
            }
        }

        impl WireDecode for $ty {
            fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
                let n = u64::decode(v)?;
                <$ty>::try_from(n).map_err(|_| {
                    DecodeError::new(format!(
                        "{n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

narrow_unsigned!(u8, u16, u32, usize);

impl WireEncode for i64 {
    fn encode(&self) -> JsonValue {
        if *self >= 0 {
            JsonValue::U64(*self as u64)
        } else {
            JsonValue::I64(*self)
        }
    }
}

impl WireDecode for i64 {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        match v {
            JsonValue::U64(n) => {
                i64::try_from(*n).map_err(|_| DecodeError::new(format!("{n} overflows i64")))
            }
            JsonValue::I64(n) => Ok(*n),
            other => Err(DecodeError::expected("integer", other)),
        }
    }
}

impl WireEncode for f64 {
    fn encode(&self) -> JsonValue {
        JsonValue::F64(*self)
    }
}

impl WireDecode for f64 {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        match v {
            JsonValue::F64(x) => Ok(*x),
            JsonValue::U64(n) => Ok(*n as f64),
            JsonValue::I64(n) => Ok(*n as f64),
            other => Err(DecodeError::expected("number", other)),
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(WireEncode::encode).collect())
    }
}

impl<T: WireEncode> WireEncode for [T] {
    fn encode(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(WireEncode::encode).collect())
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        v.as_array()?
            .iter()
            .enumerate()
            // Build the "[i]" segment only on the error path; this runs
            // per element on the coordinator's response-drain hot path.
            .map(|(i, item)| T::decode(item).map_err(|e| e.push_segment(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self) -> JsonValue {
        match self {
            Some(x) => x.encode(),
            None => JsonValue::Null,
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::decode(other).map(Some),
        }
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.encode(), self.1.encode()])
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        let items = v.as_array()?;
        if items.len() != 2 {
            return Err(DecodeError::new(format!(
                "expected 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::decode(&items[0]).context("[0]")?,
            B::decode(&items[1]).context("[1]")?,
        ))
    }
}

impl WireEncode for JsonValue {
    fn encode(&self) -> JsonValue {
        self.clone()
    }
}

impl WireDecode for JsonValue {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_round_trip(&true);
        assert_round_trip(&0u64);
        assert_round_trip(&u64::MAX);
        assert_round_trip(&42u16);
        assert_round_trip(&(-17i64));
        assert_round_trip(&2.5f64);
        assert_round_trip(&f64::MIN_POSITIVE);
        assert_round_trip(&1e300f64);
        assert_round_trip(&"héllo \"w\u{7}orld\"\n".to_string());
        assert_round_trip(&vec![1u64, 2, 3]);
        assert_round_trip(&Some(5u64));
        assert_round_trip(&(Option::<u64>::None));
        assert_round_trip(&(1.5f64, "x".to_string()));
    }

    #[test]
    fn negative_zero_survives_with_its_sign_bit() {
        let bytes = encode_string(&(-0.0f64));
        assert_eq!(bytes, "-0");
        let back: f64 = decode_string(&bytes).unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn u64_seeds_above_2_53_are_exact() {
        // A mix64-style seed that f64 could not represent.
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let back: u64 = decode_string(&encode_string(&seed)).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn decode_errors_carry_field_paths() {
        #[derive(Debug, PartialEq)]
        struct Inner {
            items: Vec<u64>,
        }
        impl WireDecode for Inner {
            fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
                Ok(Inner {
                    items: v.field("items")?,
                })
            }
        }
        #[derive(Debug, PartialEq)]
        struct Outer {
            inner: Inner,
        }
        impl WireDecode for Outer {
            fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
                Ok(Outer {
                    inner: v.field("outer")?,
                })
            }
        }
        let doc = parse(r#"{"outer":{"items":[1,"two"]}}"#).unwrap();
        let err = Outer::decode(&doc).unwrap_err();
        assert_eq!(err.path, "outer.items[1]");
        assert!(err.msg.contains("expected unsigned integer"));
        assert!(err.to_string().contains("outer.items[1]"));
    }

    #[test]
    fn frames_are_single_lines() {
        let frame = encode_line(&"two\nlines".to_string());
        assert_eq!(frame.matches('\n').count(), 1);
        assert!(frame.ends_with('\n'));
        let back: String = decode_line(&frame).unwrap();
        assert_eq!(back, "two\nlines");
    }

    #[test]
    fn tagged_frames_expose_their_discriminant() {
        let frame = Obj::tagged("heartbeat").field("busy", 3u64).build();
        assert_eq!(frame.render(), r#"{"type":"heartbeat","busy":3}"#);
        assert_eq!(frame.tag().unwrap(), "heartbeat");

        let untagged = Obj::new().field("busy", 3u64).build();
        let err = untagged.tag().unwrap_err();
        assert_eq!(err.path, "type");
        assert!(JsonValue::Null.tag().is_err());
    }

    #[test]
    fn wire_error_distinguishes_parse_from_decode() {
        assert!(matches!(
            decode_string::<u64>("not json"),
            Err(WireError::Parse(_))
        ));
        assert!(matches!(
            decode_string::<u64>("\"str\""),
            Err(WireError::Decode(_))
        ));
    }
}
