//! A hand-rolled recursive-descent JSON parser with spanned errors.
//!
//! The decode half of the wire boundary. Strictness is deliberate —
//! a coordinator reading frames from a subprocess wants malformed input
//! to fail *here*, with a byte position, rather than propagate as a
//! half-decoded struct:
//!
//! * raw control characters inside strings are rejected (the escaper
//!   never emits them);
//! * `\uXXXX` escapes are validated, including surrogate pairs;
//! * numbers follow the JSON grammar (no leading zeros, no bare `.5`)
//!   and are re-parsed with the standard library's exact conversions,
//!   so a float that rendered via shortest `Display` parses back to the
//!   identical bits;
//! * nesting depth is capped at [`MAX_DEPTH`], so hostile input returns
//!   an [`Err`] instead of overflowing the stack (an abort no test
//!   could catch).

use std::fmt;

use crate::value::JsonValue;

/// Maximum nesting depth (arrays + objects) before the parser bails
/// out. Deep enough for any real document, shallow enough that hostile
/// input can't blow the stack.
pub const MAX_DEPTH: usize = 128;

/// A parse failure, pinned to the byte offset (and line/column) where
/// the parser gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub pos: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in bytes from the line start).
    pub col: u32,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at byte {} (line {}, col {}): {}",
            self.pos, self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> ParseError {
        let consumed = &self.input.as_bytes()[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() as u32 + 1;
        let line_start = consumed
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        ParseError {
            pos: self.pos,
            line,
            col: (self.pos - line_start) as u32 + 1,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth >= MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH}")));
        }
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth >= MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH}")));
        }
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape_into(&mut out)?;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error(format!(
                        "raw control character {b:#04x} in string (must be escaped)"
                    )))
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape_into(&mut self, out: &mut String) -> Result<(), ParseError> {
        let Some(b) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let c = match unit {
                    // High surrogate: a low surrogate must follow.
                    0xD800..=0xDBFF => {
                        if !(self.peek() == Some(b'\\')
                            && self.bytes.get(self.pos + 1) == Some(&b'u'))
                        {
                            return Err(self.error("high surrogate not followed by \\u escape"));
                        }
                        self.pos += 2;
                        let low = self.hex4()?;
                        if !(0xDC00..=0xDFFF).contains(&low) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((unit as u32 - 0xD800) << 10) + (low as u32 - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    }
                    0xDC00..=0xDFFF => return Err(self.error("unpaired low surrogate")),
                    _ => char::from_u32(unit as u32)
                        .ok_or_else(|| self.error("invalid \\u escape"))?,
                };
                out.push(c);
            }
            other => {
                self.pos -= 1;
                return Err(self.error(format!("invalid escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        // Byte-wise so a multi-byte UTF-8 char inside the escape is an
        // error, never a slice panic.
        let mut unit: u16 = 0;
        for &b in &self.bytes[self.pos..end] {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex in \\u escape"))?;
            unit = unit * 16 + digit as u16;
        }
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];

        if integral {
            if !neg {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(JsonValue::U64(n));
                }
            } else if text == "-0" {
                // `-0` is what `-0.0_f64` renders to; keep it a float so
                // the sign bit survives the round trip.
                return Ok(JsonValue::F64(-0.0));
            } else if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::I64(n));
            }
            // Integer too large for 64 bits: fall through to f64.
        }
        let x: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number {text:?}")))?;
        if !x.is_finite() {
            return Err(self.error(format!("number {text:?} overflows f64")));
        }
        Ok(JsonValue::F64(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(s: &str) -> JsonValue {
        parse(s).unwrap_or_else(|e| panic!("{s:?} failed: {e}"))
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(ok("null"), JsonValue::Null);
        assert_eq!(ok(" true "), JsonValue::Bool(true));
        assert_eq!(ok("false"), JsonValue::Bool(false));
        assert_eq!(ok("0"), JsonValue::U64(0));
        assert_eq!(ok("18446744073709551615"), JsonValue::U64(u64::MAX));
        assert_eq!(ok("-7"), JsonValue::I64(-7));
        assert_eq!(ok("2.5"), JsonValue::F64(2.5));
        assert_eq!(ok("1e3"), JsonValue::F64(1000.0));
        assert_eq!(ok("\"hi\""), JsonValue::Str("hi".into()));
    }

    #[test]
    fn negative_zero_stays_a_float() {
        let JsonValue::F64(x) = ok("-0") else {
            panic!("-0 did not parse as float")
        };
        assert_eq!(x.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn parses_nested_documents() {
        let doc = ok(r#"{"a":[1,{"b":null}],"c":"d"}"#);
        assert_eq!(
            doc,
            JsonValue::Object(vec![
                (
                    "a".into(),
                    JsonValue::Array(vec![
                        JsonValue::U64(1),
                        JsonValue::Object(vec![("b".into(), JsonValue::Null)]),
                    ])
                ),
                ("c".into(), JsonValue::Str("d".into())),
            ])
        );
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(ok(r#""\u0041""#), JsonValue::Str("A".into()));
        assert_eq!(ok(r#""\u00e9""#), JsonValue::Str("é".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(ok(r#""\ud83d\ude00""#), JsonValue::Str("😀".into()));
        // Raw UTF-8 passes through untouched.
        assert_eq!(ok("\"héllo 世界\""), JsonValue::Str("héllo 世界".into()));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("{\"a\":\n  12,}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1);
        assert!(err.pos > 0);
        assert!(err.to_string().contains("line 2"));

        let err = parse("[1, 2").unwrap_err();
        assert_eq!(err.pos, 5);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "-",
            "1.",
            ".5",
            "+1",
            "1e",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "\"unterminated",
            "nul",
            "truee",
            "[1] x",
            "\"a\tb\"",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        // The cap is exactly MAX_DEPTH containers — even empty ones.
        let nested = |n: usize| format!("{}{}", "[".repeat(n), "]".repeat(n));
        assert!(parse(&nested(MAX_DEPTH)).is_ok());
        assert!(parse(&nested(MAX_DEPTH + 1)).is_err());
    }
}
