//! # firm-wire — the workspace's symmetric wire codec
//!
//! Everything that crosses a process boundary in the FIRM reproduction
//! — scenarios in, outcomes and experience out, policy checkpoints both
//! ways — moves through this crate. It replaces the old one-way
//! `to_json` string formatting with a symmetric, trait-based API:
//!
//! * [`JsonValue`] — a small owned document model with deterministic
//!   rendering (insertion-ordered objects, shortest round-trip floats,
//!   exact full-range `u64` integers);
//! * [`mod@parse`] — a hand-rolled recursive-descent JSON parser with
//!   spanned errors ([`ParseError`] carries byte offset, line, and
//!   column) and a nesting-depth cap so malformed or hostile input
//!   returns `Err` instead of panicking;
//! * [`WireEncode`] / [`WireDecode`] — the codec traits, with the
//!   round-trip contract `decode(encode(x)) == x` checked by
//!   [`assert_round_trip`] in every owning crate;
//! * [`encode_line`] / [`decode_line`] — newline-delimited frames for
//!   the fleet's subprocess worker protocol (the escaper guarantees a
//!   rendered document never contains a raw newline).
//!
//! No external dependencies, consistent with the workspace's
//! offline-build rule.
//!
//! Everything public here is documented and `#![warn(missing_docs)]`
//! keeps it that way — this crate and `firm-fleet` are the two whose
//! public surface *is* the deployment contract (frames on real
//! sockets), so an undocumented item is an operator-facing hole.
//!
//! # Example
//!
//! ```
//! use firm_wire::{decode_string, encode_string, JsonValue, Obj, WireDecode, WireEncode};
//!
//! #[derive(Debug, PartialEq)]
//! struct Sample {
//!     seed: u64,
//!     rate: f64,
//! }
//!
//! impl WireEncode for Sample {
//!     fn encode(&self) -> JsonValue {
//!         Obj::new().field("seed", self.seed).field("rate", self.rate).build()
//!     }
//! }
//!
//! impl WireDecode for Sample {
//!     fn decode(v: &JsonValue) -> Result<Self, firm_wire::DecodeError> {
//!         Ok(Sample { seed: v.field("seed")?, rate: v.field("rate")? })
//!     }
//! }
//!
//! let x = Sample { seed: u64::MAX, rate: 2.5 };
//! let bytes = encode_string(&x);
//! assert_eq!(bytes, r#"{"seed":18446744073709551615,"rate":2.5}"#);
//! assert_eq!(decode_string::<Sample>(&bytes).unwrap(), x);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod parse;
pub mod value;

pub use codec::{
    assert_round_trip, decode_line, decode_string, encode_line, encode_string, Context,
    DecodeError, Obj, WireDecode, WireEncode, WireError,
};
pub use parse::{parse, ParseError, MAX_DEPTH};
pub use value::{escape_into, JsonValue};

/// FNV-1a 64 offset basis — shared by [`fnv64`] and the streaming
/// digest sink behind [`JsonValue::render_fnv64`], so the two can
/// never drift apart.
pub(crate) const FNV64_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime (see [`FNV64_OFFSET_BASIS`]).
pub(crate) const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64 state.
pub(crate) fn fnv64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(FNV64_PRIME);
    }
    hash
}

/// FNV-1a 64 over a byte string — the workspace's cheap fingerprint for
/// bit-identity checks on rendered wire documents.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_update(FNV64_OFFSET_BASIS, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn render_parse_render_is_a_fixed_point() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::Str("tab\there \u{1f600}".into())),
            ("seed".into(), JsonValue::U64(u64::MAX)),
            ("rate".into(), JsonValue::F64(0.1)),
            (
                "nested".into(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::F64(-0.0)]),
            ),
        ]);
        let once = doc.render();
        let twice = parse(&once).unwrap().render();
        assert_eq!(once, twice);
    }
}
