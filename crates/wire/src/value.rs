//! The wire document model: a small, owned JSON tree.
//!
//! [`JsonValue`] is the meeting point of the codec's two halves: typed
//! values encode *into* it ([`crate::WireEncode`]) and decode back *out*
//! of it ([`crate::WireDecode`]), while [`JsonValue::render`] and
//! [`crate::parse`] move it across the text boundary. Rendering is
//! deterministic — object fields keep insertion order, floats use
//! Rust's shortest round-trip `Display` — so two equal values always
//! produce equal bytes, which is what lets fleet reports keep their
//! bit-identity contract after crossing a process boundary.
//!
//! Integers and floats are separate variants: per-scenario seeds are
//! full-range `u64`s (they routinely exceed 2^53), so squeezing every
//! number through `f64` would corrupt them.

use std::fmt::Write as _;

/// One JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (seeds, counters, ids).
    U64(u64),
    /// A negative integer. Non-negative integers always parse to
    /// [`JsonValue::U64`], so this variant's value is `< 0`.
    I64(i64),
    /// A finite float. `-0.0` stays a float across the text boundary
    /// (it renders as `-0`, which parses back here, not to an integer),
    /// so IEEE bit patterns survive the round trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; fields keep insertion order (rendering is stable).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the document as compact JSON.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite float: NaN and the infinities have no
    /// JSON representation, and every measurement in the workspace is
    /// finite by construction — a non-finite value here is a bug worth
    /// surfacing loudly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders into an existing buffer (see [`JsonValue::render`]).
    pub fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::F64(x) => {
                assert!(x.is_finite(), "cannot render non-finite float {x}");
                let _ = write!(out, "{x}");
            }
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, key);
                    out.push('"');
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a field by name (`None` when `self` is not an object or
    /// the key is absent).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::U64(_) | JsonValue::I64(_) => "integer",
            JsonValue::F64(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// The workspace's one JSON string escaper: quotes, backslashes, the
/// named control escapes, and a `\u00XX` fallback for the rest of the
/// control range. Everything else — including non-ASCII — passes
/// through as UTF-8; [`crate::parse`] is its exact inverse.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_compact_and_ordered() {
        let doc = JsonValue::Object(vec![
            ("b".into(), JsonValue::U64(2)),
            (
                "a".into(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
        ]);
        assert_eq!(doc.render(), r#"{"b":2,"a":[null,true]}"#);
    }

    #[test]
    fn floats_render_shortest_and_negative_zero_keeps_its_sign() {
        assert_eq!(JsonValue::F64(2.5).render(), "2.5");
        assert_eq!(JsonValue::F64(-0.0).render(), "-0");
        assert_eq!(JsonValue::I64(-3).render(), "-3");
        assert_eq!(JsonValue::U64(u64::MAX).render(), "18446744073709551615");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_are_rejected() {
        JsonValue::F64(f64::NAN).render();
    }

    #[test]
    fn escaper_handles_the_full_control_range() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001e");
        // No raw control characters survive.
        for code in 0u32..0x20 {
            let mut out = String::new();
            escape_into(&mut out, &char::from_u32(code).unwrap().to_string());
            assert!(out.chars().all(|c| (c as u32) >= 0x20), "{code:#x} leaked");
        }
    }

    #[test]
    fn get_finds_fields_in_order() {
        let doc = JsonValue::Object(vec![
            ("x".into(), JsonValue::U64(1)),
            ("y".into(), JsonValue::Str("s".into())),
        ]);
        assert_eq!(doc.get("y"), Some(&JsonValue::Str("s".into())));
        assert_eq!(doc.get("z"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }
}
