//! The wire document model: a small, owned JSON tree.
//!
//! [`JsonValue`] is the meeting point of the codec's two halves: typed
//! values encode *into* it ([`crate::WireEncode`]) and decode back *out*
//! of it ([`crate::WireDecode`]), while [`JsonValue::render`] and
//! [`fn@crate::parse`] move it across the text boundary. Rendering is
//! deterministic — object fields keep insertion order, floats use
//! Rust's shortest round-trip `Display` — so two equal values always
//! produce equal bytes, which is what lets fleet reports keep their
//! bit-identity contract after crossing a process boundary.
//!
//! Integers and floats are separate variants: per-scenario seeds are
//! full-range `u64`s (they routinely exceed 2^53), so squeezing every
//! number through `f64` would corrupt them.

/// One JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (seeds, counters, ids).
    U64(u64),
    /// A negative integer. Non-negative integers always parse to
    /// [`JsonValue::U64`], so this variant's value is `< 0`.
    I64(i64),
    /// A finite float. `-0.0` stays a float across the text boundary
    /// (it renders as `-0`, which parses back here, not to an integer),
    /// so IEEE bit patterns survive the round trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; fields keep insertion order (rendering is stable).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the document as compact JSON.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite float: NaN and the infinities have no
    /// JSON representation, and every measurement in the workspace is
    /// finite by construction — a non-finite value here is a bug worth
    /// surfacing loudly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders into an existing buffer (see [`JsonValue::render`]).
    pub fn render_into(&self, out: &mut String) {
        // Writing to a `String` is infallible.
        let _ = self.render_to(out);
    }

    /// Streams the rendered bytes through an FNV-1a 64 hasher without
    /// materializing the JSON text: `doc.render_fnv64()` equals
    /// `fnv64(doc.render().as_bytes())` by construction (both walks
    /// share [`JsonValue::render_to`]). This is how report digests are
    /// computed without rendering the document a second time.
    pub fn render_fnv64(&self) -> u64 {
        let mut sink = Fnv64Writer::new();
        // The hashing sink is infallible.
        let _ = self.render_to(&mut sink);
        sink.finish()
    }

    /// Renders into any [`std::fmt::Write`] sink — the one rendering
    /// walk behind both the string and the streaming-digest forms.
    /// Stops at the first sink error (infallible sinks like `String`
    /// never produce one).
    pub fn render_to<W: std::fmt::Write>(&self, out: &mut W) -> std::fmt::Result {
        match self {
            JsonValue::Null => out.write_str("null"),
            JsonValue::Bool(true) => out.write_str("true"),
            JsonValue::Bool(false) => out.write_str("false"),
            JsonValue::U64(n) => write!(out, "{n}"),
            JsonValue::I64(n) => write!(out, "{n}"),
            JsonValue::F64(x) => {
                assert!(x.is_finite(), "cannot render non-finite float {x}");
                write!(out, "{x}")
            }
            JsonValue::Str(s) => {
                out.write_char('"')?;
                escape_to(out, s)?;
                out.write_char('"')
            }
            JsonValue::Array(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.render_to(out)?;
                }
                out.write_char(']')
            }
            JsonValue::Object(fields) => {
                out.write_char('{')?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    out.write_char('"')?;
                    escape_to(out, key)?;
                    out.write_char('"')?;
                    out.write_char(':')?;
                    value.render_to(out)?;
                }
                out.write_char('}')
            }
        }
    }

    /// Looks up a field by name (`None` when `self` is not an object or
    /// the key is absent).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::U64(_) | JsonValue::I64(_) => "integer",
            JsonValue::F64(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// The workspace's one JSON string escaper: quotes, backslashes, the
/// named control escapes, and a `\u00XX` fallback for the rest of the
/// control range. Everything else — including non-ASCII — passes
/// through as UTF-8; [`fn@crate::parse`] is its exact inverse.
pub fn escape_into(out: &mut String, s: &str) {
    // Writing to a `String` is infallible.
    let _ = escape_to(out, s);
}

/// [`escape_into`] over any [`std::fmt::Write`] sink; stops at the
/// first sink error.
pub fn escape_to<W: std::fmt::Write>(out: &mut W, s: &str) -> std::fmt::Result {
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    Ok(())
}

/// A [`std::fmt::Write`] sink that folds every byte through FNV-1a 64
/// instead of storing it (same constants as [`crate::fnv64`]).
struct Fnv64Writer(u64);

impl Fnv64Writer {
    fn new() -> Self {
        Fnv64Writer(crate::FNV64_OFFSET_BASIS)
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Write for Fnv64Writer {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0 = crate::fnv64_update(self.0, s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_compact_and_ordered() {
        let doc = JsonValue::Object(vec![
            ("b".into(), JsonValue::U64(2)),
            (
                "a".into(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
        ]);
        assert_eq!(doc.render(), r#"{"b":2,"a":[null,true]}"#);
    }

    #[test]
    fn floats_render_shortest_and_negative_zero_keeps_its_sign() {
        assert_eq!(JsonValue::F64(2.5).render(), "2.5");
        assert_eq!(JsonValue::F64(-0.0).render(), "-0");
        assert_eq!(JsonValue::I64(-3).render(), "-3");
        assert_eq!(JsonValue::U64(u64::MAX).render(), "18446744073709551615");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_are_rejected() {
        JsonValue::F64(f64::NAN).render();
    }

    #[test]
    fn escaper_handles_the_full_control_range() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001e");
        // No raw control characters survive.
        for code in 0u32..0x20 {
            let mut out = String::new();
            escape_into(&mut out, &char::from_u32(code).unwrap().to_string());
            assert!(out.chars().all(|c| (c as u32) >= 0x20), "{code:#x} leaked");
        }
    }

    #[test]
    fn streaming_digest_equals_digest_of_rendered_bytes() {
        let doc = JsonValue::Object(vec![
            ("seed".into(), JsonValue::U64(u64::MAX)),
            ("neg".into(), JsonValue::I64(-42)),
            ("rate".into(), JsonValue::F64(-0.0)),
            (
                "name\twith\"escapes\\".into(),
                JsonValue::Str("line\nbreak \u{1} unicode \u{65e5}\u{1f600}".into()),
            ),
            (
                "arr".into(),
                JsonValue::Array(vec![
                    JsonValue::Null,
                    JsonValue::Bool(false),
                    JsonValue::F64(2.5),
                    JsonValue::Object(vec![("k".into(), JsonValue::Str(String::new()))]),
                ]),
            ),
        ]);
        assert_eq!(doc.render_fnv64(), crate::fnv64(doc.render().as_bytes()));
        // And on the empty-ish corners.
        for v in [
            JsonValue::Null,
            JsonValue::Array(vec![]),
            JsonValue::Object(vec![]),
            JsonValue::Str(String::new()),
        ] {
            assert_eq!(v.render_fnv64(), crate::fnv64(v.render().as_bytes()));
        }
    }

    #[test]
    fn get_finds_fields_in_order() {
        let doc = JsonValue::Object(vec![
            ("x".into(), JsonValue::U64(1)),
            ("y".into(), JsonValue::Str("s".into())),
        ]);
        assert_eq!(doc.get("y"), Some(&JsonValue::Str("s".into())));
        assert_eq!(doc.get("z"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }
}
