//! The unified escaper's round-trip guarantee: every control character,
//! every `\uXXXX` escape, and non-ASCII text must survive
//! `parse(render(x))` byte for byte.

use firm_wire::{parse, JsonValue};

fn round_trip(s: &str) -> String {
    let rendered = JsonValue::Str(s.to_string()).render();
    assert!(
        rendered.bytes().all(|b| b >= 0x20 || !b.is_ascii()),
        "raw control byte leaked into {rendered:?}"
    );
    match parse(&rendered).expect("rendered string must parse") {
        JsonValue::Str(back) => back,
        other => panic!("string rendered to {other:?}"),
    }
}

#[test]
fn full_u8_control_range_round_trips() {
    // Every byte value 0..=255 as a char, one string per char and one
    // string holding them all: named escapes, \u00XX fallbacks, and
    // Latin-1 non-ASCII all come back identical.
    let mut all = String::new();
    for code in 0u32..=255 {
        let c = char::from_u32(code).expect("u8 range is valid chars");
        let s = format!("a{c}b");
        assert_eq!(round_trip(&s), s, "char {code:#04x} did not round-trip");
        all.push(c);
    }
    assert_eq!(round_trip(&all), all);
}

#[test]
fn named_escapes_render_compactly() {
    assert_eq!(
        JsonValue::Str("\" \\ \n \r \t".into()).render(),
        "\"\\\" \\\\ \\n \\r \\t\""
    );
    // Other controls take the \u00XX form.
    assert_eq!(JsonValue::Str("\u{0}".into()).render(), "\"\\u0000\"");
    assert_eq!(JsonValue::Str("\u{1b}".into()).render(), "\"\\u001b\"");
}

#[test]
fn uxxxx_escapes_decode_to_the_same_text_as_raw_utf8() {
    // The decoder accepts both spellings of the same character.
    let escaped = parse("\"caf\\u00e9\"").unwrap();
    let raw = parse("\"caf\u{e9}\"").unwrap();
    assert_eq!(escaped, raw);

    // Astral plane via surrogate pair vs raw UTF-8 (U+1F680).
    let pair = parse("\"\\ud83d\\ude80\"").unwrap();
    let raw = parse("\"\u{1f680}\"").unwrap();
    assert_eq!(pair, raw);
    assert_eq!(pair, JsonValue::Str("\u{1f680}".into()));
}

#[test]
fn non_ascii_strings_round_trip_unescaped() {
    for s in [
        "h\u{e9}llo w\u{f6}rld",
        "\u{65e5}\u{672c}\u{8a9e}",
        "emoji \u{1f600}\u{1f680}",
        "mixed \u{2}\u{65e5}\t\u{1f600}",
    ] {
        assert_eq!(round_trip(s), s);
    }
}

#[test]
fn keys_are_escaped_like_values() {
    let doc = JsonValue::Object(vec![("k\ne\u{3}y".into(), JsonValue::U64(1))]);
    let rendered = doc.render();
    assert_eq!(rendered, "{\"k\\ne\\u0003y\":1}");
    assert_eq!(parse(&rendered).unwrap(), doc);
}
