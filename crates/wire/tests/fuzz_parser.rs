//! Seeded-sweep fuzzing of the JSON parser: truncations, byte flips,
//! random garbage, and pathological nesting. The invariant under test
//! is *total safety*, not acceptance — every input either parses or
//! returns a [`firm_wire::ParseError`] with a position inside the
//! input; nothing panics, loops, or overflows the stack.
//!
//! Deterministic by construction (xoshiro256++ from fixed seeds), so a
//! failure reproduces byte-for-byte.

use firm_rng::Xoshiro256;
use firm_wire::{parse, JsonValue};

/// Feeds an input through the parser and checks the error contract.
fn probe(input: &str) {
    match parse(input) {
        Ok(_) => {}
        Err(e) => {
            assert!(
                e.pos <= input.len(),
                "error position {} outside input of {} bytes",
                e.pos,
                input.len()
            );
            assert!(e.line >= 1 && e.col >= 1, "unpinned error {e}");
            assert!(!e.msg.is_empty());
        }
    }
}

/// Generates a random valid-ish document for mutation fodder.
fn gen_doc(rng: &mut Xoshiro256, depth: usize) -> JsonValue {
    match if depth >= 4 {
        rng.next_below(6)
    } else {
        rng.next_below(8)
    } {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.next_u64().is_multiple_of(2)),
        2 => JsonValue::U64(rng.next_u64()),
        3 => JsonValue::I64(-((rng.next_u64() >> 1) as i64)),
        4 => JsonValue::F64((rng.next_f64() - 0.5) * 1e6),
        5 => {
            let mut s = String::new();
            for _ in 0..rng.next_below(12) {
                // Bias toward hostile characters.
                let c = match rng.next_below(6) {
                    0 => '"',
                    1 => '\\',
                    2 => char::from_u32(rng.next_below(0x20) as u32).unwrap(),
                    3 => '\u{1f600}',
                    _ => char::from_u32(0x20 + rng.next_below(0x5e) as u32).unwrap(),
                };
                s.push(c);
            }
            JsonValue::Str(s)
        }
        6 => JsonValue::Array(
            (0..rng.next_below(4))
                .map(|_| gen_doc(rng, depth + 1))
                .collect(),
        ),
        _ => JsonValue::Object(
            (0..rng.next_below(4))
                .map(|i| (format!("k{i}"), gen_doc(rng, depth + 1)))
                .collect(),
        ),
    }
}

#[test]
fn truncations_of_valid_documents_never_panic() {
    let mut rng = Xoshiro256::new(0xF022_7256);
    for _ in 0..64 {
        let doc = gen_doc(&mut rng, 0).render();
        for end in 0..doc.len() {
            if doc.is_char_boundary(end) {
                probe(&doc[..end]);
            }
        }
    }
}

#[test]
fn byte_flips_of_valid_documents_never_panic() {
    let mut rng = Xoshiro256::new(0xB17F_11B5);
    for _ in 0..64 {
        let doc = gen_doc(&mut rng, 0).render();
        let bytes = doc.as_bytes().to_vec();
        for _ in 0..200 {
            let mut mutated = bytes.clone();
            let i = rng.next_below(mutated.len() as u64) as usize;
            mutated[i] ^= (1 << rng.next_below(8)) as u8;
            // Mutation may break UTF-8; the parser only takes &str, so
            // lossy-decode first (the process boundary does the same).
            let text = String::from_utf8_lossy(&mutated);
            probe(&text);
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Xoshiro256::new(0x6A5B_A6E5);
    let alphabet: Vec<char> = "{}[]\",:.\\u0123456789eE+-truefalsn \t\n\u{1f600}"
        .chars()
        .collect();
    for _ in 0..2_000 {
        let len = rng.next_below(64) as usize;
        let garbage: String = (0..len)
            .map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize])
            .collect();
        probe(&garbage);
    }
}

#[test]
fn deep_nesting_is_rejected_with_a_position() {
    for pattern in ["[", "{\"k\":", "[[{\"a\":["] {
        let deep = pattern.repeat(200_000 / pattern.len());
        let err = parse(&deep).expect_err("unbounded nesting accepted");
        assert!(err.pos <= deep.len());
        assert!(err.msg.contains("nesting"), "{err}");
    }
}

#[test]
fn valid_generated_documents_always_reparse() {
    let mut rng = Xoshiro256::new(0x5EED_CAFE);
    for _ in 0..256 {
        let doc = gen_doc(&mut rng, 0);
        let rendered = doc.render();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("generated doc failed to reparse: {e}\n{rendered}"));
        // Fixed point: rendering the reparse gives identical bytes.
        assert_eq!(reparsed.render(), rendered);
    }
}
