//! Worker-pool supervision: liveness, restart-and-replay, and
//! idle-queue dispatch over any [`Transport`] — packaged two ways: the
//! batch [`supervise`] call and the resident [`WorkerPool`].
//!
//! The pool owns the part of a distributed fleet that the happy path
//! never sees:
//!
//! * **Idle-queue dispatch** — jobs live in one work queue and go to
//!   whichever worker is idle (distributed-JIQ style), one outstanding
//!   job per worker, instead of a static round-robin partition. A slow
//!   tenant therefore delays only itself; the rest of the pool drains
//!   the queue around it.
//! * **Liveness** — a per-request timeout catches wedged workers, an
//!   EOF/error on a worker's stream catches crashed ones immediately,
//!   and prolonged heartbeat silence catches the silent kind (peer
//!   alive at the TCP level but frozen).
//! * **Restart-and-replay** — a failed worker's in-flight job goes back
//!   to the *front* of the queue and is re-dispatched to a healthy
//!   worker, excluding every worker that already failed it (so a
//!   poisonous scenario cannot ping-pong onto the same machine). The
//!   slot itself is reconnected through its transport — a respawned
//!   subprocess or a fresh TCP session — and rejoins the pool; if the
//!   reconnect fails the slot is retired and the survivors absorb its
//!   share.
//!
//! # Batch vs resident
//!
//! [`supervise`] is the batch shape: run one catalog, return results in
//! catalog order, panic on anything unrecoverable (a batch report
//! missing a scenario would silently break the determinism contract).
//! It is a thin wrapper over [`WorkerPool`], the resident shape that
//! `firm-fleet serve` runs for days: jobs are [`PoolJob`]s submitted at
//! any time from any thread, each completion (or unrecoverable failure)
//! is delivered as a [`JobDone`] on the job's own reply channel, and a
//! failure fails *that job*, never the pool — the fleet keeps serving
//! every other submission.
//!
//! # Why failures cannot move the report
//!
//! A re-dispatched request is byte-identical to the original: the job
//! carries its seed from submission time (derived once from
//! `(fleet seed, catalog index)` by the caller), and
//! [`crate::exec::run_one_with`] is a pure function of `(scenario,
//! seed, policy)`. Which worker runs a job, how many times it was
//! attempted, and when its response arrives are all invisible to
//! aggregation, which consumes results keyed by index. Supervision is
//! timing-dependent; the results are not.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use firm_core::controller::PolicyCheckpoint;
use firm_core::manager::ExperienceLog;
use firm_obs::{Counter, Gauge, Histogram, Level, MetricsSnapshot};

use crate::ops::WorkerOps;
use crate::protocol::{WorkerHello, WorkerMessage, WorkerRequest, PROTOCOL_VERSION};
use crate::report::ScenarioOutcome;
use crate::runner::scenario_seed;
use crate::scenario::Scenario;
use crate::transport::Transport;

/// Event target for everything the coordinator side emits.
const TARGET: &str = "fleet supervisor";

/// Supervision knobs, derived from [`crate::runner::FleetConfig`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget for one job on one worker; a worker that
    /// holds a job longer is presumed wedged, killed, and replaced.
    /// `None` disables the timeout (crash detection still applies).
    pub request_timeout: Option<Duration>,
    /// How many workers may fail one job before the pool gives up on
    /// it. A batch [`supervise`] then panics (a report missing a
    /// scenario would silently break the determinism contract); a
    /// resident pool delivers the failure on the job's reply channel
    /// and keeps serving everything else.
    pub max_attempts: usize,
    /// Intra-scenario stage fan-out shipped on every request frame
    /// ([`WorkerRequest::intra_shards`]); 1 keeps workers sequential.
    /// A latency knob only — responses are bit-identical at any value.
    pub intra_shards: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            request_timeout: Some(Duration::from_secs(300)),
            max_attempts: 3,
            intra_shards: 1,
        }
    }
}

/// One unit of work submitted to a [`WorkerPool`].
pub struct PoolJob {
    /// The job's index as the submitter knows it — echoed through the
    /// wire protocol ([`WorkerRequest::index`]) and back in
    /// [`JobDone::index`]. For a batch run this is the catalog index;
    /// a resident service uses submission-global indices so seeds stay
    /// continuous across submissions.
    pub index: u64,
    /// The derived per-scenario seed (the submitter owns derivation —
    /// typically [`scenario_seed`]`(fleet_seed, index)`).
    pub seed: u64,
    /// The scenario to run, as plain data.
    pub scenario: Scenario,
    /// A frozen policy to deploy (inference mode); `None` trains fresh.
    /// Shared so a catalog-wide deployment clones an `Arc`, not the
    /// weights; the pool ships the actual bytes to each worker
    /// connection at most once (see the per-connection policy cache).
    pub policy: Option<Arc<PolicyCheckpoint>>,
    /// Where the result goes. Every submitted job gets exactly one
    /// [`JobDone`] delivery — completion or unrecoverable failure — and
    /// a closed receiver just discards the delivery (the pool never
    /// fails because a submitter went away).
    pub reply: mpsc::Sender<JobDone>,
}

/// The terminal delivery for one [`PoolJob`].
pub struct JobDone {
    /// Echo of [`PoolJob::index`].
    pub index: u64,
    /// The scenario's deterministic results, or why the pool gave up on
    /// this job (attempts exhausted, every worker gone). Failures are
    /// per-job: the pool itself stays alive and keeps serving.
    pub result: Result<(ScenarioOutcome, ExperienceLog), String>,
}

/// Runs `scenarios` over a pool of transport-backed workers and returns
/// `(outcome, experience)` in catalog order — the supervised equivalent
/// of the in-process thread path, bit-identical to it — plus each
/// worker's session-end metrics snapshot (labeled `slot<N>:<transport>`,
/// missing for workers that died before a graceful session end). The
/// snapshots are pure diagnostics: they ride a separate frame and never
/// touch the results.
///
/// # Panics
///
/// Panics when the fleet cannot finish exactly: an initial connection
/// fails, a scenario exhausts [`SupervisorConfig::max_attempts`], or
/// every worker dies. (The resident [`WorkerPool`] underneath reports
/// these as per-job [`JobDone`] failures; the batch shape has no
/// partial result worth salvaging, so it panics.)
pub fn supervise(
    transports: Vec<Box<dyn Transport>>,
    scenarios: &[Scenario],
    fleet_seed: u64,
    policy: Option<&PolicyCheckpoint>,
    config: &SupervisorConfig,
) -> (Vec<(ScenarioOutcome, ExperienceLog)>, Vec<WorkerOps>) {
    assert!(
        !transports.is_empty(),
        "supervisor needs at least one worker"
    );
    let pool = WorkerPool::start(transports, config.clone()).unwrap_or_else(|e| panic!("{e}"));
    let policy = policy.map(|p| Arc::new(p.clone()));
    let (reply_tx, reply_rx) = mpsc::channel();
    for (i, scenario) in scenarios.iter().enumerate() {
        pool.submit(PoolJob {
            index: i as u64,
            seed: scenario_seed(fleet_seed, i),
            scenario: scenario.clone(),
            policy: policy.clone(),
            reply: reply_tx.clone(),
        });
    }
    drop(reply_tx);

    let mut results: Vec<Option<(ScenarioOutcome, ExperienceLog)>> =
        (0..scenarios.len()).map(|_| None).collect();
    for _ in 0..scenarios.len() {
        let done = reply_rx
            .recv()
            .expect("the pool delivers every submitted job");
        match done.result {
            Ok(r) => {
                let cell = &mut results[done.index as usize];
                assert!(cell.is_none(), "job {} completed twice", done.index);
                *cell = Some(r);
            }
            Err(e) => panic!("{e}"),
        }
    }
    let worker_ops = pool.shutdown();
    let results = results
        .into_iter()
        .map(|slot| slot.expect("every scenario ran"))
        .collect();
    (results, worker_ops)
}

/// A resident, supervised worker pool: submit [`PoolJob`]s from any
/// thread at any time, get [`JobDone`] deliveries on each job's reply
/// channel as workers finish. Dispatch, liveness, and
/// restart-and-replay behave exactly as in the batch [`supervise`]
/// shape (it *is* this pool underneath) — the difference is lifecycle:
/// the pool outlives any one catalog, failures are delivered instead of
/// thrown, and [`WorkerPool::shutdown`] ends it gracefully, collecting
/// the workers' session-end metrics.
pub struct WorkerPool {
    msgs: mpsc::Sender<PoolMsg>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Connects every transport and starts the pool's coordinator
    /// thread. Initial connections fail loudly — a pool that silently
    /// starts with fewer workers than configured hides deployment
    /// typos — so the first connect error aborts the start.
    pub fn start(
        transports: Vec<Box<dyn Transport>>,
        config: SupervisorConfig,
    ) -> Result<WorkerPool, String> {
        if transports.is_empty() {
            return Err("worker pool needs at least one worker".to_string());
        }
        let (msgs_tx, msgs_rx) = mpsc::channel();
        let (ready_tx, ready_rx) = mpsc::channel();
        let runtime_tx = msgs_tx.clone();
        let thread = std::thread::Builder::new()
            .name("firm-fleet-pool".to_string())
            .spawn(move || {
                let mut runtime = PoolRuntime::new(transports, config, runtime_tx, msgs_rx);
                let connected = runtime.connect_all();
                let ok = connected.is_ok();
                let _ = ready_tx.send(connected);
                if ok {
                    runtime.run();
                }
            })
            .map_err(|e| format!("spawn pool thread: {e}"))?;
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(WorkerPool {
                msgs: msgs_tx,
                thread: Mutex::new(Some(thread)),
            }),
            Ok(Err(e)) => {
                let _ = thread.join();
                Err(e)
            }
            Err(_) => Err("worker pool thread died during startup".to_string()),
        }
    }

    /// Enqueues one job. The pool delivers exactly one [`JobDone`] for
    /// it — immediately, as a failure, if the pool has already lost
    /// every worker.
    pub fn submit(&self, job: PoolJob) {
        if let Err(mpsc::SendError(PoolMsg::Cmd(Command::Submit(job)))) =
            self.msgs.send(PoolMsg::Cmd(Command::Submit(Box::new(job))))
        {
            // The pool thread is gone (shutdown raced or it panicked);
            // honor the one-delivery contract from here.
            let _ = job.reply.send(JobDone {
                index: job.index,
                result: Err("worker pool is shut down".to_string()),
            });
        }
    }

    /// Gracefully shuts the pool down: waits for every in-flight and
    /// queued job to be delivered, tears each worker session down (EOF,
    /// then a clean exit check), and returns the workers' session-end
    /// metrics snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the pool thread itself panicked (a worker that
    /// completed all its work and then failed its exit check, or a
    /// coordinator bug) — resumed so the original message surfaces.
    pub fn shutdown(&self) -> Vec<WorkerOps> {
        let (done_tx, done_rx) = mpsc::channel();
        if self
            .msgs
            .send(PoolMsg::Cmd(Command::Shutdown { done: done_tx }))
            .is_err()
        {
            // Already down (double shutdown): nothing to collect.
            return Vec::new();
        }
        let ops = done_rx.recv();
        let thread = self.thread.lock().expect("pool thread lock").take();
        match ops {
            Ok(ops) => {
                if let Some(t) = thread {
                    let _ = t.join();
                }
                ops
            }
            Err(_) => {
                // The thread died before answering; surface its panic.
                if let Some(t) = thread {
                    if let Err(payload) = t.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
                panic!("worker pool thread exited without completing shutdown");
            }
        }
    }
}

/// Everything the coordinator thread can receive, multiplexed onto one
/// channel so worker events and caller commands share a single blocking
/// wait with the liveness deadlines.
enum PoolMsg {
    Worker(Event),
    Cmd(Command),
}

enum Command {
    /// Boxed: a job carries a whole [`Scenario`] and would otherwise
    /// dominate the channel message size.
    Submit(Box<PoolJob>),
    Shutdown {
        done: mpsc::Sender<Vec<WorkerOps>>,
    },
}

/// The coordinator's own runtime metrics, resolved once per pool (the
/// reader threads clone the `Arc` handles they touch per frame).
struct CoordMetrics {
    dispatch_total: Arc<Counter>,
    dispatch_latency: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    heartbeat_gap: Arc<Histogram>,
    frames_tx: Arc<Counter>,
    bytes_tx: Arc<Counter>,
    frames_rx: Arc<Counter>,
    bytes_rx: Arc<Counter>,
    bad_frames: Arc<Counter>,
    retries: Arc<Counter>,
    recycled: Arc<Counter>,
    restarts: Arc<Counter>,
    retired: Arc<Counter>,
}

impl CoordMetrics {
    fn new() -> Self {
        let m = firm_obs::metrics();
        CoordMetrics {
            dispatch_total: m.counter("fleet.dispatch.total"),
            dispatch_latency: m.histogram("fleet.dispatch.latency_us"),
            queue_depth: m.gauge("fleet.queue.depth"),
            heartbeat_gap: m.histogram("fleet.heartbeat.gap_us"),
            frames_tx: m.counter("fleet.frames.tx"),
            bytes_tx: m.counter("fleet.bytes.tx"),
            frames_rx: m.counter("fleet.frames.rx"),
            bytes_rx: m.counter("fleet.bytes.rx"),
            bad_frames: m.counter("fleet.bad_frames"),
            retries: m.counter("fleet.retry.attempts"),
            recycled: m.counter("fleet.worker.recycled"),
            restarts: m.counter("fleet.worker.restarts"),
            retired: m.counter("fleet.worker.retired"),
        }
    }
}

/// One worker→coordinator notification, tagged with the connection
/// generation so frames from a connection the pool already killed are
/// recognizably stale.
struct Event {
    slot: usize,
    generation: u64,
    kind: EventKind,
}

enum EventKind {
    Frame(WorkerMessage),
    /// The frame did not parse/decode — worker bug or version skew.
    BadFrame(String),
    /// The stream ended (EOF or read error).
    Closed,
}

/// The live half of a slot: one open connection plus its pump threads.
struct Live {
    /// Frames queued here are written by a dedicated thread, so a
    /// worker that stops reading can never block the coordinator loop.
    frames: mpsc::Sender<String>,
    writer: JoinHandle<()>,
    reader: JoinHandle<()>,
    control: Box<dyn crate::transport::ConnectionControl>,
    generation: u64,
    hello: Option<WorkerHello>,
    /// When the last frame (of any kind) arrived — heartbeat silence is
    /// measured from here.
    last_frame: Instant,
}

enum SlotState {
    Idle,
    Busy {
        /// Pool-internal job id (key into `PoolRuntime::jobs`).
        job: u64,
        dispatched: Instant,
    },
    /// Reconnect failed; the slot is out of the pool for good.
    Retired,
}

struct Slot {
    transport: Box<dyn Transport>,
    live: Option<Live>,
    state: SlotState,
    /// Digest of the policy checkpoint this connection has cached
    /// (shipped by an earlier frame), or `None` if the connection holds
    /// no policy. Lets a deployment pass ship the weights once per
    /// connection and `reuse_policy` afterwards — and lets a resident
    /// pool interleave jobs carrying *different* policies correctly.
    wire_policy: Option<u64>,
    /// Next connection generation for this slot.
    next_generation: u64,
}

struct JobEntry {
    job: PoolJob,
    attempts: usize,
    /// Slots that already failed this job — never hand it back to them.
    excluded: HashSet<usize>,
}

struct PoolRuntime {
    config: SupervisorConfig,
    slots: Vec<Slot>,
    msgs_tx: mpsc::Sender<PoolMsg>,
    msgs_rx: mpsc::Receiver<PoolMsg>,
    /// Queued job ids, oldest first (replays go to the *front*).
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobEntry>,
    next_job: u64,
    obs: CoordMetrics,
    /// Each slot's session-end metrics frame, when one arrived.
    worker_metrics: Vec<Option<MetricsSnapshot>>,
    /// The generation of each slot's most recently torn-down
    /// connection — metrics frames that surface during teardown (after
    /// the main loop stopped reading) are accepted only from it.
    final_generation: Vec<Option<u64>>,
    /// Set once a shutdown command arrives; the pool drains all work,
    /// then tears down and answers on this channel.
    shutdown: Option<mpsc::Sender<Vec<WorkerOps>>>,
}

impl PoolRuntime {
    fn new(
        transports: Vec<Box<dyn Transport>>,
        config: SupervisorConfig,
        msgs_tx: mpsc::Sender<PoolMsg>,
        msgs_rx: mpsc::Receiver<PoolMsg>,
    ) -> Self {
        let slots: Vec<Slot> = transports
            .into_iter()
            .map(|transport| Slot {
                transport,
                live: None,
                state: SlotState::Idle,
                wire_policy: None,
                next_generation: 0,
            })
            .collect();
        let worker_metrics = (0..slots.len()).map(|_| None).collect();
        let final_generation = vec![None; slots.len()];
        PoolRuntime {
            config,
            slots,
            msgs_tx,
            msgs_rx,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            next_job: 0,
            obs: CoordMetrics::new(),
            worker_metrics,
            final_generation,
            shutdown: None,
        }
    }

    /// Initial connections, all-or-nothing.
    fn connect_all(&mut self) -> Result<(), String> {
        for i in 0..self.slots.len() {
            self.connect_slot(i)
                .map_err(|e| format!("connect {}: {e}", self.slots[i].transport.label()))?;
        }
        Ok(())
    }

    /// The resident loop: dispatch, watch liveness, handle events and
    /// commands, until a shutdown command arrives and the last job is
    /// delivered.
    fn run(mut self) {
        loop {
            self.dispatch();
            self.fail_unrunnable();
            if self.shutdown.is_some() && self.jobs.is_empty() {
                break;
            }
            match self.wait_for_msg() {
                Some(PoolMsg::Worker(event)) => self.handle_event(event),
                Some(PoolMsg::Cmd(Command::Submit(job))) => self.enqueue(*job),
                Some(PoolMsg::Cmd(Command::Shutdown { done })) => {
                    firm_obs::event(Level::Info, TARGET)
                        .msg("pool shutdown requested")
                        .field("queued", self.queue.len())
                        .field("in_flight", self.jobs.len() - self.queue.len())
                        .emit();
                    self.shutdown = Some(done);
                }
                None => self.reap_expired(),
            }
        }
        self.finish_shutdown();
    }

    fn enqueue(&mut self, job: PoolJob) {
        if self.all_retired() {
            let _ = job.reply.send(JobDone {
                index: job.index,
                result: Err(format!(
                    "job {} has no eligible worker: every worker in the pool \
                     died and could not be restarted",
                    job.index
                )),
            });
            return;
        }
        let id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(
            id,
            JobEntry {
                job,
                attempts: 0,
                excluded: HashSet::new(),
            },
        );
        self.queue.push_back(id);
    }

    fn all_retired(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Retired))
    }

    /// Fails every queued job once no worker can ever run it. With the
    /// dispatch eligibility rule (a job excluded from every live slot
    /// may still go to any of them), the only unrunnable state is a
    /// fully retired pool.
    fn fail_unrunnable(&mut self) {
        if !self.all_retired() {
            return;
        }
        let retired = self.slots.len();
        while let Some(id) = self.queue.pop_front() {
            let Some(entry) = self.jobs.remove(&id) else {
                continue;
            };
            let _ = entry.job.reply.send(JobDone {
                index: entry.job.index,
                result: Err(format!(
                    "fleet cannot make progress: job {} has no eligible worker \
                     ({retired} of {retired} slots retired) — every worker died \
                     or already failed it",
                    entry.job.index
                )),
            });
        }
        self.obs.queue_depth.set(0);
    }

    /// Hands queued jobs to idle workers — the idle queue is consulted
    /// per job, so whichever worker freed up first takes the next one
    /// (no static partition to go stale when a worker dies).
    fn dispatch(&mut self) {
        let live: HashSet<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live.is_some() && !matches!(s.state, SlotState::Retired))
            .map(|(i, _)| i)
            .collect();
        for slot_id in 0..self.slots.len() {
            if !matches!(self.slots[slot_id].state, SlotState::Idle)
                || self.slots[slot_id].live.is_none()
            {
                continue;
            }
            // First queued job this slot is allowed to run: one it has
            // not failed — or, when every live slot has failed it (a
            // one-worker pool restarting, say), any job at all; the
            // attempts cap still bounds a genuinely poisonous scenario.
            let Some(pos) = self.queue.iter().position(|id| {
                let excluded = &self.jobs[id].excluded;
                !excluded.contains(&slot_id) || live.iter().all(|s| excluded.contains(s))
            }) else {
                continue;
            };
            let id = self.queue.remove(pos).expect("position came from iter");
            if self.send_job(slot_id, id).is_err() {
                // The writer was already gone; put the job back and
                // recycle the slot (the job is not charged an attempt —
                // it never reached a worker).
                self.queue.push_front(id);
                self.recycle(slot_id, "write channel closed");
            } else {
                self.obs.dispatch_total.inc();
                let entry = &self.jobs[&id];
                firm_obs::event(Level::Debug, TARGET)
                    .msg("dispatched scenario")
                    .field("index", entry.job.index)
                    .field("scenario", entry.job.scenario.name.as_str())
                    .field("slot", slot_id)
                    .field("transport", self.slots[slot_id].transport.label())
                    .field("attempt", entry.attempts + 1)
                    .emit();
            }
        }
        self.obs.queue_depth.set(self.queue.len() as i64);
    }

    /// Ships one request frame; the per-connection policy bookkeeping
    /// (full weights the first time a connection sees a given
    /// checkpoint, `reuse_policy` afterwards) lives here.
    fn send_job(&mut self, slot_id: usize, id: u64) -> Result<(), ()> {
        let entry = &self.jobs[&id];
        let slot_cached = self.slots[slot_id].wire_policy;
        let (policy, reuse_policy, new_cache) = match &entry.job.policy {
            None => (None, false, None),
            Some(p) => {
                let digest = p.digest();
                if slot_cached == Some(digest) {
                    (None, true, Some(digest))
                } else {
                    (Some((**p).clone()), false, Some(digest))
                }
            }
        };
        let frame = firm_wire::encode_line(&WorkerRequest {
            index: entry.job.index,
            seed: entry.job.seed,
            scenario: entry.job.scenario.clone(),
            policy,
            reuse_policy,
            intra_shards: self.config.intra_shards.max(1) as u64,
        });
        let slot = &mut self.slots[slot_id];
        let live = slot.live.as_ref().expect("dispatch checked live");
        let frame_len = frame.len() as u64;
        if live.frames.send(frame).is_err() {
            return Err(());
        }
        self.obs.frames_tx.inc();
        self.obs.bytes_tx.add(frame_len);
        // The worker mirrors this bookkeeping: a no-policy frame clears
        // its cache, a policy-carrying frame replaces it.
        slot.wire_policy = new_cache;
        slot.state = SlotState::Busy {
            job: id,
            dispatched: Instant::now(),
        };
        Ok(())
    }

    /// Blocks until the next message or the earliest liveness deadline.
    /// `None` means a deadline may have expired.
    fn wait_for_msg(&self) -> Option<PoolMsg> {
        let now = Instant::now();
        let deadline = self.nearest_deadline();
        let wait = match deadline {
            Some(d) if d <= now => return self.msgs_rx.try_recv().ok(),
            Some(d) => d - now,
            // No deadline pending; wake periodically anyway so a logic
            // bug degrades to latency, not a hang.
            None => Duration::from_secs(5),
        };
        self.msgs_rx.recv_timeout(wait).ok()
    }

    /// The earliest instant at which some busy worker must be presumed
    /// dead: its per-request deadline, or prolonged silence on the
    /// stream. Before the hello arrives the silence window uses the
    /// default heartbeat interval — a connected-but-frozen peer that
    /// never handshakes must not hang the fleet, even with the request
    /// timeout disabled. After the hello, a worker that advertised
    /// `heartbeat_ms: 0` opted out of silence detection.
    fn nearest_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .filter_map(|slot| {
                let SlotState::Busy { dispatched, .. } = slot.state else {
                    return None;
                };
                let live = slot.live.as_ref()?;
                let request = self.config.request_timeout.map(|t| dispatched + t);
                let quiet = quiet_deadline(live);
                match (request, quiet) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .min()
    }

    /// Kills and recycles every busy worker whose deadline has passed.
    fn reap_expired(&mut self) {
        let now = Instant::now();
        for slot_id in 0..self.slots.len() {
            let slot = &self.slots[slot_id];
            let SlotState::Busy { job, dispatched } = slot.state else {
                continue;
            };
            let Some(live) = slot.live.as_ref() else {
                continue;
            };
            let index = self.jobs.get(&job).map(|e| e.job.index).unwrap_or(job);
            let timed_out = self
                .config
                .request_timeout
                .is_some_and(|t| now >= dispatched + t);
            let silent = quiet_deadline(live).is_some_and(|d| now >= d);
            if timed_out {
                self.recycle(
                    slot_id,
                    &format!(
                        "job {index} exceeded the per-request timeout \
                         ({:?}) — presumed wedged",
                        self.config.request_timeout.expect("checked")
                    ),
                );
            } else if silent {
                self.recycle(
                    slot_id,
                    &format!("no frames while running job {index} — presumed dead"),
                );
            }
        }
    }

    fn handle_event(&mut self, event: Event) {
        let slot = &mut self.slots[event.slot];
        // Stale: from a connection this pool already killed.
        let current = slot
            .live
            .as_ref()
            .is_some_and(|l| l.generation == event.generation);
        if !current {
            return;
        }
        if let Some(live) = slot.live.as_mut() {
            // The inter-frame gap on a live connection — heartbeats
            // dominate, so this is the heartbeat-gap distribution the
            // silence detector's assumptions can be checked against.
            self.obs
                .heartbeat_gap
                .record(live.last_frame.elapsed().as_micros() as u64);
            live.last_frame = Instant::now();
        }
        match event.kind {
            EventKind::Frame(WorkerMessage::Hello(hello)) => {
                assert_eq!(
                    hello.protocol,
                    PROTOCOL_VERSION,
                    "{} speaks fleet protocol v{}, this coordinator speaks v{} \
                     — upgrade the older side",
                    slot.transport.label(),
                    hello.protocol,
                    PROTOCOL_VERSION,
                );
                firm_obs::event(Level::Debug, TARGET)
                    .msg("worker handshake")
                    .field("slot", event.slot)
                    .field("transport", slot.transport.label())
                    .field("generation", event.generation)
                    .field("pid", hello.pid)
                    .field("heartbeat_ms", hello.heartbeat_ms)
                    .emit();
                if let Some(live) = slot.live.as_mut() {
                    live.hello = Some(hello);
                }
            }
            EventKind::Frame(WorkerMessage::Heartbeat(_)) => {
                // last_frame already refreshed above; nothing else to do.
            }
            EventKind::Frame(WorkerMessage::Response(resp)) => {
                let SlotState::Busy { job, dispatched } = slot.state else {
                    // A worker inventing results is a worker bug; in a
                    // resident pool it costs that worker its session,
                    // never the fleet.
                    let reason =
                        format!("sent a response (index {}) while it had no job", resp.index);
                    self.recycle(event.slot, &reason);
                    return;
                };
                let expected = self.jobs.get(&job).map(|e| e.job.index);
                if expected != Some(resp.index) {
                    let reason = format!(
                        "answered index {} for a dispatch of job index {:?}",
                        resp.index, expected
                    );
                    self.recycle(event.slot, &reason);
                    return;
                }
                let latency_us = dispatched.elapsed().as_micros() as u64;
                self.obs.dispatch_latency.record(latency_us);
                firm_obs::event(Level::Debug, TARGET)
                    .msg("scenario completed")
                    .field("index", resp.index)
                    .field("slot", event.slot)
                    .field("latency_us", latency_us)
                    .emit();
                slot.state = SlotState::Idle;
                let entry = self.jobs.remove(&job).expect("checked above");
                let _ = entry.job.reply.send(JobDone {
                    index: resp.index,
                    result: Ok((resp.outcome, resp.experience)),
                });
            }
            EventKind::Frame(WorkerMessage::Metrics(m)) => {
                // Normally the session-end frame (collected in the
                // post-shutdown drain), but a worker is free to ship a
                // snapshot mid-session too; latest wins.
                self.worker_metrics[event.slot] = Some(m);
            }
            EventKind::BadFrame(msg) => {
                self.obs.bad_frames.inc();
                self.recycle(event.slot, &format!("sent an undecodable frame: {msg}"));
            }
            EventKind::Closed => {
                self.recycle(event.slot, "connection closed unexpectedly");
            }
        }
    }

    /// The restart-and-replay path: tear down a failed worker's
    /// connection, requeue its in-flight job (excluding this slot from
    /// re-running it), and reconnect the slot — or retire it if the
    /// reconnect fails. A job that has exhausted its attempts budget is
    /// delivered as a failure instead of requeued; the pool lives on.
    fn recycle(&mut self, slot_id: usize, reason: &str) {
        let label = self.slots[slot_id].transport.label();
        let generation = self.slots[slot_id]
            .live
            .as_ref()
            .map(|l| l.generation)
            .unwrap_or(0);
        // The attempt count *including* this failure, so a stale-frame
        // drop or give-up that follows is attributable from the event
        // stream alone.
        let attempts = match self.slots[slot_id].state {
            SlotState::Busy { job, .. } => self.jobs.get(&job).map(|e| e.attempts + 1).unwrap_or(0),
            _ => 0,
        };
        self.obs.recycled.inc();
        firm_obs::event(Level::Warn, TARGET)
            .msg("recycling worker")
            .field("transport", label.as_str())
            .field("generation", generation)
            .field("attempts", attempts)
            .field("reason", reason)
            .emit();
        self.teardown_live(slot_id, false);

        if let SlotState::Busy { job, .. } = self.slots[slot_id].state {
            if let Some(entry) = self.jobs.get_mut(&job) {
                entry.attempts += 1;
                entry.excluded.insert(slot_id);
                self.obs.retries.inc();
                if entry.attempts >= self.config.max_attempts {
                    let entry = self.jobs.remove(&job).expect("present above");
                    let _ = entry.job.reply.send(JobDone {
                        index: entry.job.index,
                        result: Err(format!(
                            "scenario {} ({}) failed on {} different workers — giving up \
                             rather than emit a partial fleet report",
                            entry.job.index, entry.job.scenario.name, entry.attempts,
                        )),
                    });
                } else {
                    // Front of the queue: a replayed job is the oldest
                    // outstanding work, so it goes next.
                    self.queue.push_front(job);
                }
            }
        }
        self.slots[slot_id].state = SlotState::Idle;

        match self.connect_slot(slot_id) {
            Ok(()) => {
                self.obs.restarts.inc();
                firm_obs::event(Level::Info, TARGET)
                    .msg("worker restarted")
                    .field("transport", label.as_str())
                    .field(
                        "generation",
                        self.slots[slot_id]
                            .live
                            .as_ref()
                            .map(|l| l.generation)
                            .unwrap_or(0),
                    )
                    .field("attempts", attempts)
                    .emit();
            }
            Err(e) => {
                self.obs.retired.inc();
                firm_obs::event(Level::Error, TARGET)
                    .msg("reconnect failed; retiring worker, survivors absorb its share")
                    .field("transport", label.as_str())
                    .field("generation", generation)
                    .field("error", e.to_string())
                    .emit();
                self.slots[slot_id].state = SlotState::Retired;
            }
        }
    }

    /// Opens a connection for a slot and starts its pump threads.
    fn connect_slot(&mut self, slot_id: usize) -> std::io::Result<()> {
        let slot = &mut self.slots[slot_id];
        let conn = slot.transport.connect()?;
        let generation = slot.next_generation;
        slot.next_generation += 1;

        let (frames_tx, frames_rx) = mpsc::channel::<String>();
        let mut writer_half = conn.writer;
        let writer = std::thread::spawn(move || {
            // Exits when the channel closes (graceful: dropping the
            // sender also drops/EOFs the stream) or a write fails
            // (the reader thread will surface the death as Closed).
            for frame in frames_rx {
                if writer_half
                    .write_all(frame.as_bytes())
                    .and_then(|_| writer_half.flush())
                    .is_err()
                {
                    break;
                }
            }
        });

        let mut reader_half = conn.reader;
        let events = self.msgs_tx.clone();
        let frames_rx_ctr = Arc::clone(&self.obs.frames_rx);
        let bytes_rx_ctr = Arc::clone(&self.obs.bytes_rx);
        let reader = std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                let kind = match reader_half.read_line(&mut line) {
                    Ok(0) | Err(_) => EventKind::Closed,
                    Ok(_) if line.trim().is_empty() => continue,
                    Ok(n) => {
                        frames_rx_ctr.inc();
                        bytes_rx_ctr.add(n as u64);
                        match firm_wire::decode_line::<WorkerMessage>(&line) {
                            Ok(msg) => EventKind::Frame(msg),
                            Err(e) => EventKind::BadFrame(e.to_string()),
                        }
                    }
                };
                let closed = matches!(kind, EventKind::Closed);
                // The pool hanging up just means the fleet is done.
                let _ = events.send(PoolMsg::Worker(Event {
                    slot: slot_id,
                    generation,
                    kind,
                }));
                if closed {
                    break;
                }
            }
        });

        slot.live = Some(Live {
            frames: frames_tx,
            writer,
            reader,
            control: conn.control,
            generation,
            hello: None,
            last_frame: Instant::now(),
        });
        slot.wire_policy = None;
        Ok(())
    }

    /// Tears down a slot's live connection. `graceful` distinguishes
    /// end-of-fleet (let the worker exit on EOF, check its status) from
    /// failure handling (kill it now).
    fn teardown_live(&mut self, slot_id: usize, graceful: bool) {
        let Some(mut live) = self.slots[slot_id].live.take() else {
            return;
        };
        self.final_generation[slot_id] = Some(live.generation);
        // Closing the frame channel stops the writer thread, which
        // drops the write half — EOF for a healthy worker.
        drop(live.frames);
        if !graceful {
            live.control.kill();
        }
        let _ = live.writer.join();
        let _ = live.reader.join();
        if graceful {
            if let Err(e) = live.control.finish() {
                panic!(
                    "{} failed after completing its work: {e}",
                    self.slots[slot_id].transport.label()
                );
            }
        }
    }

    /// Graceful end-of-pool teardown: EOF every still-live worker,
    /// collect the session-end metrics frames their readers delivered
    /// during teardown, and answer the shutdown command.
    fn finish_shutdown(mut self) {
        for slot_id in 0..self.slots.len() {
            self.teardown_live(slot_id, true);
        }

        // A worker's metrics frame is the last thing it writes, after
        // the graceful teardown EOF'd its input — so it lands in the
        // message queue *after* the main loop stopped reading. Drain
        // now, accepting only frames from each slot's final connection.
        while let Ok(msg) = self.msgs_rx.try_recv() {
            if let PoolMsg::Worker(event) = msg {
                if let EventKind::Frame(WorkerMessage::Metrics(m)) = event.kind {
                    if self.final_generation[event.slot] == Some(event.generation) {
                        self.worker_metrics[event.slot] = Some(m);
                    }
                }
            }
        }
        let worker_ops: Vec<WorkerOps> = self
            .worker_metrics
            .into_iter()
            .enumerate()
            .filter_map(|(i, metrics)| {
                Some(WorkerOps {
                    label: format!("slot{i}:{}", self.slots[i].transport.label()),
                    metrics: metrics?,
                })
            })
            .collect();
        if let Some(done) = self.shutdown.take() {
            let _ = done.send(worker_ops);
        }
    }
}

/// How long heartbeat silence must last before a worker is presumed
/// dead. Generous (20 intervals, floor 10s) because a busy host
/// legitimately starves ticker threads — this path exists for silent
/// network death, not as the primary timeout.
fn quiet_window(heartbeat_ms: u64) -> Duration {
    Duration::from_millis((heartbeat_ms * 20).max(10_000))
}

/// The instant at which this connection's silence becomes fatal, if
/// silence detection applies: before the hello, always (at the default
/// interval — an unresponsive peer that never handshakes must not hang
/// the fleet); after it, only if the worker advertised heartbeats.
fn quiet_deadline(live: &Live) -> Option<Instant> {
    let interval = match &live.hello {
        None => crate::worker::ServeOptions::default().heartbeat_ms,
        Some(h) => h.heartbeat_ms,
    };
    (interval > 0).then(|| live.last_frame + quiet_window(interval))
}
