//! Worker-pool supervision: liveness, restart-and-replay, and
//! idle-queue dispatch over any [`Transport`].
//!
//! The supervisor owns the part of a distributed fleet that the happy
//! path never sees:
//!
//! * **Idle-queue dispatch** — scenarios live in one work queue and go
//!   to whichever worker is idle (distributed-JIQ style), one
//!   outstanding job per worker, instead of a static round-robin
//!   partition. A slow tenant therefore delays only itself; the rest of
//!   the pool drains the queue around it.
//! * **Liveness** — a per-request timeout catches wedged workers, an
//!   EOF/error on a worker's stream catches crashed ones immediately,
//!   and prolonged heartbeat silence catches the silent kind (peer
//!   alive at the TCP level but frozen).
//! * **Restart-and-replay** — a failed worker's in-flight scenario goes
//!   back to the *front* of the queue and is re-dispatched to a healthy
//!   worker, excluding every worker that already failed it (so a
//!   poisonous scenario cannot ping-pong onto the same machine). The
//!   slot itself is reconnected through its transport — a respawned
//!   subprocess or a fresh TCP session — and rejoins the pool; if the
//!   reconnect fails the slot is retired and the survivors absorb its
//!   share.
//!
//! # Why failures cannot move the report
//!
//! A re-dispatched request is byte-identical to the original: the
//! coordinator derives the seed from `(fleet seed, catalog index)`
//! once, at dispatch, and [`crate::exec::run_one_with`] is a pure
//! function of `(scenario, seed, policy)`. Which worker runs a
//! scenario, how many times it was attempted, and when its response
//! arrives are all invisible to aggregation, which consumes results in
//! catalog order from an index-addressed table. Supervision is
//! timing-dependent; the report is not.

use std::collections::{HashSet, VecDeque};
use std::io::Write;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use firm_core::controller::PolicyCheckpoint;
use firm_core::manager::ExperienceLog;
use firm_obs::{Counter, Gauge, Histogram, Level, MetricsSnapshot};

use crate::ops::WorkerOps;
use crate::protocol::{WorkerHello, WorkerMessage, WorkerRequest, PROTOCOL_VERSION};
use crate::report::ScenarioOutcome;
use crate::runner::scenario_seed;
use crate::scenario::Scenario;
use crate::transport::Transport;

/// Event target for everything the coordinator side emits.
const TARGET: &str = "fleet supervisor";

/// Supervision knobs, derived from [`crate::runner::FleetConfig`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget for one scenario on one worker; a worker that
    /// holds a job longer is presumed wedged, killed, and replaced.
    /// `None` disables the timeout (crash detection still applies).
    pub request_timeout: Option<Duration>,
    /// How many workers may fail one scenario before the fleet gives
    /// up. The supervisor never completes with partial results — when
    /// the budget is exhausted it panics, because a report missing a
    /// scenario would silently break the determinism contract.
    pub max_attempts: usize,
    /// Intra-scenario stage fan-out shipped on every request frame
    /// ([`WorkerRequest::intra_shards`]); 1 keeps workers sequential.
    /// A latency knob only — responses are bit-identical at any value.
    pub intra_shards: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            request_timeout: Some(Duration::from_secs(300)),
            max_attempts: 3,
            intra_shards: 1,
        }
    }
}

/// Runs `scenarios` over a pool of transport-backed workers and returns
/// `(outcome, experience)` in catalog order — the supervised equivalent
/// of the in-process thread path, bit-identical to it — plus each
/// worker's session-end metrics snapshot (labeled `slot<N>:<transport>`,
/// missing for workers that died before a graceful session end). The
/// snapshots are pure diagnostics: they ride a separate frame and never
/// touch the results.
///
/// # Panics
///
/// Panics when the fleet cannot finish exactly: an initial connection
/// fails, a scenario exhausts [`SupervisorConfig::max_attempts`], every
/// worker dies, or a worker answers with an index it was never given.
pub fn supervise(
    transports: Vec<Box<dyn Transport>>,
    scenarios: &[Scenario],
    fleet_seed: u64,
    policy: Option<&PolicyCheckpoint>,
    config: &SupervisorConfig,
) -> (Vec<(ScenarioOutcome, ExperienceLog)>, Vec<WorkerOps>) {
    assert!(
        !transports.is_empty(),
        "supervisor needs at least one worker"
    );
    Supervisor::new(transports, scenarios, fleet_seed, policy, config.clone()).run()
}

/// The coordinator's own runtime metrics, resolved once per supervisor
/// (the reader threads clone the `Arc` handles they touch per frame).
struct CoordMetrics {
    dispatch_total: Arc<Counter>,
    dispatch_latency: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    heartbeat_gap: Arc<Histogram>,
    frames_tx: Arc<Counter>,
    bytes_tx: Arc<Counter>,
    frames_rx: Arc<Counter>,
    bytes_rx: Arc<Counter>,
    bad_frames: Arc<Counter>,
    retries: Arc<Counter>,
    recycled: Arc<Counter>,
    restarts: Arc<Counter>,
    retired: Arc<Counter>,
}

impl CoordMetrics {
    fn new() -> Self {
        let m = firm_obs::metrics();
        CoordMetrics {
            dispatch_total: m.counter("fleet.dispatch.total"),
            dispatch_latency: m.histogram("fleet.dispatch.latency_us"),
            queue_depth: m.gauge("fleet.queue.depth"),
            heartbeat_gap: m.histogram("fleet.heartbeat.gap_us"),
            frames_tx: m.counter("fleet.frames.tx"),
            bytes_tx: m.counter("fleet.bytes.tx"),
            frames_rx: m.counter("fleet.frames.rx"),
            bytes_rx: m.counter("fleet.bytes.rx"),
            bad_frames: m.counter("fleet.bad_frames"),
            retries: m.counter("fleet.retry.attempts"),
            recycled: m.counter("fleet.worker.recycled"),
            restarts: m.counter("fleet.worker.restarts"),
            retired: m.counter("fleet.worker.retired"),
        }
    }
}

/// One worker→coordinator notification, tagged with the connection
/// generation so frames from a connection the supervisor already killed
/// are recognizably stale.
struct Event {
    slot: usize,
    generation: u64,
    kind: EventKind,
}

enum EventKind {
    Frame(WorkerMessage),
    /// The frame did not parse/decode — worker bug or version skew.
    BadFrame(String),
    /// The stream ended (EOF or read error).
    Closed,
}

/// The live half of a slot: one open connection plus its pump threads.
struct Live {
    /// Frames queued here are written by a dedicated thread, so a
    /// worker that stops reading can never block the supervisor loop.
    frames: mpsc::Sender<String>,
    writer: JoinHandle<()>,
    reader: JoinHandle<()>,
    control: Box<dyn crate::transport::ConnectionControl>,
    generation: u64,
    hello: Option<WorkerHello>,
    /// When the last frame (of any kind) arrived — heartbeat silence is
    /// measured from here.
    last_frame: Instant,
}

enum SlotState {
    Idle,
    Busy {
        job: usize,
        dispatched: Instant,
    },
    /// Reconnect failed; the slot is out of the pool for good.
    Retired,
}

struct Slot {
    transport: Box<dyn Transport>,
    live: Option<Live>,
    state: SlotState,
    /// Whether this connection has already been shipped the frozen
    /// policy (deployment passes send the weights once per connection,
    /// then `reuse_policy` frames).
    sent_policy: bool,
    /// Next connection generation for this slot.
    next_generation: u64,
}

struct JobState {
    attempts: usize,
    /// Slots that already failed this job — never hand it back to them.
    excluded: HashSet<usize>,
}

struct Supervisor<'a> {
    scenarios: &'a [Scenario],
    fleet_seed: u64,
    policy: Option<&'a PolicyCheckpoint>,
    config: SupervisorConfig,
    slots: Vec<Slot>,
    events_tx: mpsc::Sender<Event>,
    events_rx: mpsc::Receiver<Event>,
    queue: VecDeque<usize>,
    jobs: Vec<JobState>,
    results: Vec<Option<(ScenarioOutcome, ExperienceLog)>>,
    completed: usize,
    obs: CoordMetrics,
    /// Each slot's session-end metrics frame, when one arrived.
    worker_metrics: Vec<Option<MetricsSnapshot>>,
    /// The generation of each slot's most recently torn-down
    /// connection — metrics frames that surface during teardown (after
    /// the main loop stopped reading) are accepted only from it.
    final_generation: Vec<Option<u64>>,
}

impl<'a> Supervisor<'a> {
    fn new(
        transports: Vec<Box<dyn Transport>>,
        scenarios: &'a [Scenario],
        fleet_seed: u64,
        policy: Option<&'a PolicyCheckpoint>,
        config: SupervisorConfig,
    ) -> Self {
        let (events_tx, events_rx) = mpsc::channel();
        let slots: Vec<Slot> = transports
            .into_iter()
            .map(|transport| Slot {
                transport,
                live: None,
                state: SlotState::Idle,
                sent_policy: false,
                next_generation: 0,
            })
            .collect();
        let worker_metrics = (0..slots.len()).map(|_| None).collect();
        let final_generation = vec![None; slots.len()];
        Supervisor {
            scenarios,
            fleet_seed,
            policy,
            config,
            slots,
            events_tx,
            events_rx,
            queue: (0..scenarios.len()).collect(),
            jobs: (0..scenarios.len())
                .map(|_| JobState {
                    attempts: 0,
                    excluded: HashSet::new(),
                })
                .collect(),
            results: (0..scenarios.len()).map(|_| None).collect(),
            completed: 0,
            obs: CoordMetrics::new(),
            worker_metrics,
            final_generation,
        }
    }

    fn run(mut self) -> (Vec<(ScenarioOutcome, ExperienceLog)>, Vec<WorkerOps>) {
        // Initial connections fail loudly: a fleet that silently starts
        // with fewer workers than configured hides deployment typos.
        for i in 0..self.slots.len() {
            self.connect_slot(i)
                .unwrap_or_else(|e| panic!("connect {}: {e}", self.slots[i].transport.label()));
        }

        while self.completed < self.scenarios.len() {
            self.dispatch();
            self.ensure_progress_possible();
            match self.wait_for_event() {
                Some(event) => self.handle_event(event),
                None => self.reap_expired(),
            }
        }
        self.shutdown();

        // A worker's metrics frame is the last thing it writes, after
        // the graceful teardown EOF'd its input — so it lands in the
        // event queue *after* the main loop stopped reading. Drain now,
        // accepting only frames from each slot's final connection.
        while let Ok(event) = self.events_rx.try_recv() {
            if let EventKind::Frame(WorkerMessage::Metrics(m)) = event.kind {
                if self.final_generation[event.slot] == Some(event.generation) {
                    self.worker_metrics[event.slot] = Some(m);
                }
            }
        }
        let worker_ops = self
            .worker_metrics
            .into_iter()
            .enumerate()
            .filter_map(|(i, metrics)| {
                Some(WorkerOps {
                    label: format!("slot{i}:{}", self.slots[i].transport.label()),
                    metrics: metrics?,
                })
            })
            .collect();

        let results = self
            .results
            .into_iter()
            .map(|slot| slot.expect("every scenario ran"))
            .collect();
        (results, worker_ops)
    }

    /// Hands queued jobs to idle workers — the idle queue is consulted
    /// per job, so whichever worker freed up first takes the next
    /// scenario (no static partition to go stale when a worker dies).
    fn dispatch(&mut self) {
        let live: HashSet<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live.is_some() && !matches!(s.state, SlotState::Retired))
            .map(|(i, _)| i)
            .collect();
        for slot_id in 0..self.slots.len() {
            if !matches!(self.slots[slot_id].state, SlotState::Idle)
                || self.slots[slot_id].live.is_none()
            {
                continue;
            }
            // First queued job this slot is allowed to run: one it has
            // not failed — or, when every live slot has failed it (a
            // one-worker pool restarting, say), any job at all; the
            // attempts cap still bounds a genuinely poisonous scenario.
            let Some(pos) = self.queue.iter().position(|&job| {
                let excluded = &self.jobs[job].excluded;
                !excluded.contains(&slot_id) || live.iter().all(|s| excluded.contains(s))
            }) else {
                continue;
            };
            let job = self.queue.remove(pos).expect("position came from iter");
            if self.send_job(slot_id, job).is_err() {
                // The writer was already gone; put the job back and
                // recycle the slot (the job is not charged an attempt —
                // it never reached a worker).
                self.queue.push_front(job);
                self.recycle(slot_id, "write channel closed");
            } else {
                self.obs.dispatch_total.inc();
                firm_obs::event(Level::Debug, TARGET)
                    .msg("dispatched scenario")
                    .field("index", job)
                    .field("scenario", self.scenarios[job].name.as_str())
                    .field("slot", slot_id)
                    .field("transport", self.slots[slot_id].transport.label())
                    .field("attempt", self.jobs[job].attempts + 1)
                    .emit();
            }
        }
        self.obs.queue_depth.set(self.queue.len() as i64);
    }

    /// Ships one request frame; the per-connection policy bookkeeping
    /// (full weights on the first deployment frame, `reuse_policy`
    /// afterwards) lives here.
    fn send_job(&mut self, slot_id: usize, job: usize) -> Result<(), ()> {
        let first_policy_frame = self.policy.is_some() && !self.slots[slot_id].sent_policy;
        let frame = firm_wire::encode_line(&WorkerRequest {
            index: job as u64,
            seed: scenario_seed(self.fleet_seed, job),
            scenario: self.scenarios[job].clone(),
            policy: first_policy_frame.then(|| self.policy.expect("checked").clone()),
            reuse_policy: self.policy.is_some() && !first_policy_frame,
            intra_shards: self.config.intra_shards.max(1) as u64,
        });
        let slot = &mut self.slots[slot_id];
        let live = slot.live.as_ref().expect("dispatch checked live");
        let frame_len = frame.len() as u64;
        if live.frames.send(frame).is_err() {
            return Err(());
        }
        self.obs.frames_tx.inc();
        self.obs.bytes_tx.add(frame_len);
        if self.policy.is_some() {
            slot.sent_policy = true;
        }
        slot.state = SlotState::Busy {
            job,
            dispatched: Instant::now(),
        };
        Ok(())
    }

    /// Panics if the remaining work can never finish: no job in flight
    /// and nothing dispatchable (every worker retired, or every live
    /// worker excluded from every queued job).
    fn ensure_progress_possible(&self) {
        if self.completed == self.scenarios.len() {
            return;
        }
        let any_busy = self
            .slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Busy { .. }));
        if !any_busy {
            let queued: Vec<usize> = self.queue.iter().copied().collect();
            panic!(
                "fleet cannot make progress: scenarios {queued:?} have no eligible worker \
                 ({} of {} slots retired) — every worker died or already failed them",
                self.slots
                    .iter()
                    .filter(|s| matches!(s.state, SlotState::Retired))
                    .count(),
                self.slots.len(),
            );
        }
    }

    /// Blocks until the next event or the earliest liveness deadline.
    /// `None` means a deadline may have expired.
    fn wait_for_event(&self) -> Option<Event> {
        let now = Instant::now();
        let deadline = self.nearest_deadline();
        let wait = match deadline {
            Some(d) if d <= now => return self.events_rx.try_recv().ok(),
            Some(d) => d - now,
            // No deadline pending; wake periodically anyway so a logic
            // bug degrades to latency, not a hang.
            None => Duration::from_secs(5),
        };
        self.events_rx.recv_timeout(wait).ok()
    }

    /// The earliest instant at which some busy worker must be presumed
    /// dead: its per-request deadline, or prolonged silence on the
    /// stream. Before the hello arrives the silence window uses the
    /// default heartbeat interval — a connected-but-frozen peer that
    /// never handshakes must not hang the fleet, even with the request
    /// timeout disabled. After the hello, a worker that advertised
    /// `heartbeat_ms: 0` opted out of silence detection.
    fn nearest_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .filter_map(|slot| {
                let SlotState::Busy { dispatched, .. } = slot.state else {
                    return None;
                };
                let live = slot.live.as_ref()?;
                let request = self.config.request_timeout.map(|t| dispatched + t);
                let quiet = quiet_deadline(live);
                match (request, quiet) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .min()
    }

    /// Kills and recycles every busy worker whose deadline has passed.
    fn reap_expired(&mut self) {
        let now = Instant::now();
        for slot_id in 0..self.slots.len() {
            let slot = &self.slots[slot_id];
            let SlotState::Busy { job, dispatched } = slot.state else {
                continue;
            };
            let Some(live) = slot.live.as_ref() else {
                continue;
            };
            let timed_out = self
                .config
                .request_timeout
                .is_some_and(|t| now >= dispatched + t);
            let silent = quiet_deadline(live).is_some_and(|d| now >= d);
            if timed_out {
                self.recycle(
                    slot_id,
                    &format!(
                        "scenario {job} exceeded the per-request timeout \
                         ({:?}) — presumed wedged",
                        self.config.request_timeout.expect("checked")
                    ),
                );
            } else if silent {
                self.recycle(
                    slot_id,
                    &format!("no frames while running scenario {job} — presumed dead"),
                );
            }
        }
    }

    fn handle_event(&mut self, event: Event) {
        let slot = &mut self.slots[event.slot];
        // Stale: from a connection this supervisor already killed.
        let current = slot
            .live
            .as_ref()
            .is_some_and(|l| l.generation == event.generation);
        if !current {
            return;
        }
        if let Some(live) = slot.live.as_mut() {
            // The inter-frame gap on a live connection — heartbeats
            // dominate, so this is the heartbeat-gap distribution the
            // silence detector's assumptions can be checked against.
            self.obs
                .heartbeat_gap
                .record(live.last_frame.elapsed().as_micros() as u64);
            live.last_frame = Instant::now();
        }
        match event.kind {
            EventKind::Frame(WorkerMessage::Hello(hello)) => {
                assert_eq!(
                    hello.protocol,
                    PROTOCOL_VERSION,
                    "{} speaks fleet protocol v{}, this coordinator speaks v{} \
                     — upgrade the older side",
                    slot.transport.label(),
                    hello.protocol,
                    PROTOCOL_VERSION,
                );
                firm_obs::event(Level::Debug, TARGET)
                    .msg("worker handshake")
                    .field("slot", event.slot)
                    .field("transport", slot.transport.label())
                    .field("generation", event.generation)
                    .field("pid", hello.pid)
                    .field("heartbeat_ms", hello.heartbeat_ms)
                    .emit();
                if let Some(live) = slot.live.as_mut() {
                    live.hello = Some(hello);
                }
            }
            EventKind::Frame(WorkerMessage::Heartbeat(_)) => {
                // last_frame already refreshed above; nothing else to do.
            }
            EventKind::Frame(WorkerMessage::Response(resp)) => {
                let SlotState::Busy { job, dispatched } = slot.state else {
                    panic!(
                        "{} sent a response (index {}) while it had no job",
                        slot.transport.label(),
                        resp.index,
                    );
                };
                assert_eq!(
                    resp.index as usize,
                    job,
                    "{} answered index {} for a dispatch of scenario {job}",
                    slot.transport.label(),
                    resp.index,
                );
                let latency_us = dispatched.elapsed().as_micros() as u64;
                self.obs.dispatch_latency.record(latency_us);
                firm_obs::event(Level::Debug, TARGET)
                    .msg("scenario completed")
                    .field("index", job)
                    .field("slot", event.slot)
                    .field("latency_us", latency_us)
                    .emit();
                slot.state = SlotState::Idle;
                let cell = &mut self.results[job];
                assert!(cell.is_none(), "scenario {job} completed twice");
                *cell = Some((resp.outcome, resp.experience));
                self.completed += 1;
            }
            EventKind::Frame(WorkerMessage::Metrics(m)) => {
                // Normally the session-end frame (collected in the
                // post-shutdown drain), but a worker is free to ship a
                // snapshot mid-session too; latest wins.
                self.worker_metrics[event.slot] = Some(m);
            }
            EventKind::BadFrame(msg) => {
                self.obs.bad_frames.inc();
                self.recycle(event.slot, &format!("sent an undecodable frame: {msg}"));
            }
            EventKind::Closed => {
                self.recycle(event.slot, "connection closed unexpectedly");
            }
        }
    }

    /// The restart-and-replay path: tear down a failed worker's
    /// connection, requeue its in-flight scenario (excluding this slot
    /// from re-running it), and reconnect the slot — or retire it if
    /// the reconnect fails.
    fn recycle(&mut self, slot_id: usize, reason: &str) {
        let label = self.slots[slot_id].transport.label();
        let generation = self.slots[slot_id]
            .live
            .as_ref()
            .map(|l| l.generation)
            .unwrap_or(0);
        // The attempt count *including* this failure, so a stale-frame
        // drop or give-up that follows is attributable from the event
        // stream alone.
        let attempts = match self.slots[slot_id].state {
            SlotState::Busy { job, .. } => self.jobs[job].attempts + 1,
            _ => 0,
        };
        self.obs.recycled.inc();
        firm_obs::event(Level::Warn, TARGET)
            .msg("recycling worker")
            .field("transport", label.as_str())
            .field("generation", generation)
            .field("attempts", attempts)
            .field("reason", reason)
            .emit();
        self.teardown_live(slot_id, false);

        if let SlotState::Busy { job, .. } = self.slots[slot_id].state {
            let state = &mut self.jobs[job];
            state.attempts += 1;
            state.excluded.insert(slot_id);
            self.obs.retries.inc();
            assert!(
                state.attempts < self.config.max_attempts,
                "scenario {job} ({}) failed on {} different workers — giving up \
                 rather than emit a partial fleet report",
                self.scenarios[job].name,
                state.attempts,
            );
            // Front of the queue: a replayed scenario is the oldest
            // outstanding work, so it goes next.
            self.queue.push_front(job);
        }
        self.slots[slot_id].state = SlotState::Idle;

        match self.connect_slot(slot_id) {
            Ok(()) => {
                self.obs.restarts.inc();
                firm_obs::event(Level::Info, TARGET)
                    .msg("worker restarted")
                    .field("transport", label.as_str())
                    .field(
                        "generation",
                        self.slots[slot_id]
                            .live
                            .as_ref()
                            .map(|l| l.generation)
                            .unwrap_or(0),
                    )
                    .field("attempts", attempts)
                    .emit();
            }
            Err(e) => {
                self.obs.retired.inc();
                firm_obs::event(Level::Error, TARGET)
                    .msg("reconnect failed; retiring worker, survivors absorb its share")
                    .field("transport", label.as_str())
                    .field("generation", generation)
                    .field("error", e.to_string())
                    .emit();
                self.slots[slot_id].state = SlotState::Retired;
            }
        }
    }

    /// Opens a connection for a slot and starts its pump threads.
    fn connect_slot(&mut self, slot_id: usize) -> std::io::Result<()> {
        let slot = &mut self.slots[slot_id];
        let conn = slot.transport.connect()?;
        let generation = slot.next_generation;
        slot.next_generation += 1;

        let (frames_tx, frames_rx) = mpsc::channel::<String>();
        let mut writer_half = conn.writer;
        let writer = std::thread::spawn(move || {
            // Exits when the channel closes (graceful: dropping the
            // sender also drops/EOFs the stream) or a write fails
            // (the reader thread will surface the death as Closed).
            for frame in frames_rx {
                if writer_half
                    .write_all(frame.as_bytes())
                    .and_then(|_| writer_half.flush())
                    .is_err()
                {
                    break;
                }
            }
        });

        let mut reader_half = conn.reader;
        let events = self.events_tx.clone();
        let frames_rx_ctr = Arc::clone(&self.obs.frames_rx);
        let bytes_rx_ctr = Arc::clone(&self.obs.bytes_rx);
        let reader = std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                let kind = match reader_half.read_line(&mut line) {
                    Ok(0) | Err(_) => EventKind::Closed,
                    Ok(_) if line.trim().is_empty() => continue,
                    Ok(n) => {
                        frames_rx_ctr.inc();
                        bytes_rx_ctr.add(n as u64);
                        match firm_wire::decode_line::<WorkerMessage>(&line) {
                            Ok(msg) => EventKind::Frame(msg),
                            Err(e) => EventKind::BadFrame(e.to_string()),
                        }
                    }
                };
                let closed = matches!(kind, EventKind::Closed);
                // The supervisor hanging up just means the fleet is done.
                let _ = events.send(Event {
                    slot: slot_id,
                    generation,
                    kind,
                });
                if closed {
                    break;
                }
            }
        });

        slot.live = Some(Live {
            frames: frames_tx,
            writer,
            reader,
            control: conn.control,
            generation,
            hello: None,
            last_frame: Instant::now(),
        });
        slot.sent_policy = false;
        Ok(())
    }

    /// Tears down a slot's live connection. `graceful` distinguishes
    /// end-of-fleet (let the worker exit on EOF, check its status) from
    /// failure handling (kill it now).
    fn teardown_live(&mut self, slot_id: usize, graceful: bool) {
        let Some(mut live) = self.slots[slot_id].live.take() else {
            return;
        };
        self.final_generation[slot_id] = Some(live.generation);
        // Closing the frame channel stops the writer thread, which
        // drops the write half — EOF for a healthy worker.
        drop(live.frames);
        if !graceful {
            live.control.kill();
        }
        let _ = live.writer.join();
        let _ = live.reader.join();
        if graceful {
            if let Err(e) = live.control.finish() {
                panic!(
                    "{} failed after completing its work: {e}",
                    self.slots[slot_id].transport.label()
                );
            }
        }
    }

    /// Graceful end-of-fleet teardown for every still-live worker.
    fn shutdown(&mut self) {
        for slot_id in 0..self.slots.len() {
            self.teardown_live(slot_id, true);
        }
    }
}

/// How long heartbeat silence must last before a worker is presumed
/// dead. Generous (20 intervals, floor 10s) because a busy host
/// legitimately starves ticker threads — this path exists for silent
/// network death, not as the primary timeout.
fn quiet_window(heartbeat_ms: u64) -> Duration {
    Duration::from_millis((heartbeat_ms * 20).max(10_000))
}

/// The instant at which this connection's silence becomes fatal, if
/// silence detection applies: before the hello, always (at the default
/// interval — an unresponsive peer that never handshakes must not hang
/// the fleet); after it, only if the worker advertised heartbeats.
fn quiet_deadline(live: &Live) -> Option<Instant> {
    let interval = match &live.hello {
        None => crate::worker::ServeOptions::default().heartbeat_ms,
        Some(h) => h.heartbeat_ms,
    };
    (interval > 0).then(|| live.last_frame + quiet_window(interval))
}
