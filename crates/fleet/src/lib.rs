//! Parallel multi-tenant fleet runtime for the FIRM reproduction.
//!
//! FIRM's headline claim (§4.3 of the paper) is that one *shared*
//! SVM + DDPG pipeline generalizes across microservice applications and
//! anomaly types. A single simulation can only ever show that pipeline
//! one tenant at a time; this crate makes scenario *diversity* and
//! scale-out *throughput* first-class instead:
//!
//! * [`scenario`] — a declarative [`Scenario`] type (benchmark, cluster
//!   size, arrival shape, anomaly campaign, controller) plus
//!   [`builtin_catalog`], twelve named scenarios spanning all four §4.1
//!   benchmarks, steady/diurnal/flash-crowd load, a recorded
//!   flash-crowd incident replayed under three controllers
//!   (`LoadShape::Replay`), the seven anomaly kinds, and all four
//!   controllers;
//! * [`catalog`] — scale-factor catalog generation: [`CatalogSpec`] +
//!   [`generate_catalog`], a seeded sampler over the same cross
//!   product whose single `scale_factor` knob jointly scales arrival
//!   rates, replica fan-out, cluster sizes, and tenant count, as a
//!   pure function of `(seed, scale_factor)`;
//! * [`exec`] — deterministic execution of one scenario from plain data
//!   and a derived seed, through the workspace's single
//!   [`firm_core::controller::run_episode`] driver;
//! * [`runner`] — [`FleetRunner`] shards the catalog across N OS
//!   worker threads (`std::thread::scope` + channels; no extra
//!   dependencies). Workers stream completed RL transitions and SVM
//!   ground-truth labels back to a central trainer that fits one shared
//!   agent on the pooled, heterogeneous experience — the paper's
//!   one-for-all regime fed by many apps at once.
//!   [`FleetRunner::run_round_trip`] then freezes that agent and
//!   re-runs the catalog in inference mode, reporting per-scenario
//!   train-vs-deploy deltas (Fig. 11b at fleet scale);
//! * [`report`] — the aggregated [`FleetReport`] and the round-trip
//!   [`RoundTripReport`]: per-scenario SLO violation rates, p99
//!   latencies, mitigation times, train-vs-deploy deltas, and total
//!   requests served, with stable JSON rendering and an FNV digest;
//! * [`protocol`] — the transport-agnostic coordinator↔worker frame
//!   vocabulary: [`WorkerRequest`] down, and the [`WorkerMessage`]
//!   tagged union ([`WorkerHello`] handshake, [`WorkerHeartbeat`]
//!   liveness pulses, responses) back up;
//! * [`transport`] — how frames reach a worker: [`PipeTransport`]
//!   (spawned `firm-fleet-worker` subprocesses on this host) and
//!   [`TcpTransport`] (`firm-fleet-worker --listen addr` on any host),
//!   byte-identical frame streams either way;
//! * [`supervisor`] — worker-pool supervision over any transport:
//!   idle-queue (JIQ-style) dispatch, per-request timeouts, dead-worker
//!   detection, and restart-and-replay that cannot move a report byte —
//!   available as the batch [`supervise`] call or the resident
//!   [`WorkerPool`] that `firm-serve` keeps running across submissions;
//! * [`worker`] — the worker-side serve loop behind both modes of the
//!   `firm-fleet-worker` binary;
//! * [`ops`] — the [`OpsReport`]: runtime self-metrics (dispatch
//!   latency, heartbeat gaps, retries, bytes on the wire, per-stage
//!   timings) assembled from `firm_obs` registries and per-worker
//!   session-end snapshots, emitted *alongside* — never inside — the
//!   digest-covered [`FleetReport`].
//!
//! # Determinism
//!
//! Per-scenario seeds derive from `(fleet seed, catalog index)`,
//! workers share no mutable state, and all aggregation happens in
//! catalog order — so a fleet run's report bytes *and* its trained
//! shared-agent weights are bit-identical at any thread count, at any
//! subprocess or TCP worker count, and across worker crashes, timeouts,
//! and restarts (a re-dispatched request is byte-identical to the
//! original; see [`supervisor`]).
//!
//! # Examples
//!
//! ```
//! use firm_fleet::{builtin_catalog, FleetConfig, FleetRunner};
//! use firm_sim::SimDuration;
//!
//! // Two scenarios, shortened for doctest speed.
//! let scenarios: Vec<_> = builtin_catalog()
//!     .into_iter()
//!     .take(2)
//!     .map(|s| s.with_duration(SimDuration::from_secs(6)))
//!     .collect();
//! let result = FleetRunner::new(FleetConfig {
//!     threads: 2,
//!     seed: 7,
//!     train_steps: 16,
//!     ..FleetConfig::default()
//! })
//! .run(&scenarios);
//! assert_eq!(result.report.scenarios.len(), 2);
//! assert!(result.report.totals.completions > 0);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod exec;
pub mod ops;
pub mod protocol;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod supervisor;
pub mod transport;
pub mod wire;
pub mod worker;

pub use catalog::{generate_catalog, CatalogSpec};
pub use exec::{run_one, run_one_sharded, run_one_with};
pub use ops::{OpsReport, WorkerOps};
pub use protocol::{
    WorkerHeartbeat, WorkerHello, WorkerMessage, WorkerRequest, WorkerResponse, PROTOCOL_VERSION,
};
pub use report::{FleetReport, FleetTotals, RoundTripReport, ScenarioDelta, ScenarioOutcome};
pub use runner::{scenario_seed, FleetConfig, FleetResult, FleetRunner, RoundTripResult};
pub use scenario::{builtin_catalog, FleetController, Scenario};
pub use supervisor::{supervise, JobDone, PoolJob, SupervisorConfig, WorkerPool};
pub use transport::{Connection, ConnectionControl, PipeTransport, TcpTransport, Transport};
