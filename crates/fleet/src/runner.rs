//! The fleet runtime: shard scenarios across OS threads *or* subprocess
//! workers, stream experience home, train the shared agent.
//!
//! # Determinism
//!
//! Each scenario's seed is derived from the fleet seed and the
//! scenario's *catalog index* (never from thread identity, process
//! identity, or timing), and [`crate::exec::run_one`] touches no shared
//! state. In-process workers claim indices from an atomic counter and
//! stream `(index, outcome, log)` messages over a channel; the
//! collector slots them back into catalog order. Aggregation,
//! experience pooling, and shared-agent training all consume that
//! ordered view — so the [`FleetReport`] bytes and the trained weights
//! are identical whether the fleet ran on 1 thread or 64. Thread count
//! changes wall-clock time, nothing else.
//!
//! [`FleetConfig::intra_shards`] adds a second, *intra*-scenario axis:
//! each FIRM control loop fans its trace-ingest and feature-extraction
//! stages over that many threads between deterministic barriers. Like
//! the thread count, it is a pure latency knob — every sharded stage is
//! bit-identical to its sequential form — so the two axes compose
//! freely against one core budget (the thread path divides its worker
//! count by the shard count).
//!
//! # Multi-process and multi-node sharding
//!
//! With [`FleetConfig::workers`] set, the runner spawns that many
//! `firm-fleet-worker` subprocesses; with
//! [`FleetConfig::remote_workers`] it connects to
//! `firm-fleet-worker --listen addr` processes on any host. Both paths
//! go through the same [`crate::supervisor`]: each scenario ships as a
//! [`crate::protocol::WorkerRequest`] wire frame (scenario + derived
//! seed, plus the frozen policy on a deployment pass) to whichever
//! worker is idle, workers answer with `(index, outcome, experience)`
//! frames, and the coordinator slots them into the same
//! catalog-ordered view the thread path uses. The wire codec
//! round-trips every field exactly (`firm-wire`), and a re-dispatched
//! frame after a crash or timeout is byte-identical to the original —
//! so the report bytes, the policy checkpoint, and the trained weights
//! are bit-identical to the in-process path at any worker count, over
//! any transport, under any failure the supervisor can recover from.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use firm_core::controller::PolicyCheckpoint;
use firm_core::estimator::{AgentRegime, ResourceEstimator};
use firm_core::extractor::CriticalComponentExtractor;
use firm_core::manager::ExperienceLog;
use firm_core::training::{replay_experience, replay_experience_prioritized};

use crate::exec::run_one_sharded;
use crate::ops::{OpsReport, WorkerOps};
use crate::report::{FleetReport, RoundTripReport, ScenarioOutcome};
use crate::scenario::Scenario;
use crate::supervisor::{supervise, SupervisorConfig};
use crate::transport::{PipeTransport, TcpTransport, Transport};

/// Fleet-runtime parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads; 0 means one per available core. Ignored when
    /// [`FleetConfig::workers`] or [`FleetConfig::remote_workers`] is
    /// set.
    pub threads: usize,
    /// Subprocess workers; 0 (the default) runs in-process on
    /// [`FleetConfig::threads`] unless [`FleetConfig::remote_workers`]
    /// is set. Results are bit-identical either way.
    pub workers: usize,
    /// Addresses of `firm-fleet-worker --listen` processes
    /// (`host:port`) to shard over, alongside any subprocess workers.
    /// Results are bit-identical to the in-process path.
    pub remote_workers: Vec<String>,
    /// Path to the `firm-fleet-worker` binary. `None` resolves via the
    /// `FIRM_FLEET_WORKER` environment variable, then next to the
    /// current executable.
    pub worker_bin: Option<PathBuf>,
    /// Per-scenario wall-clock budget on one worker, in milliseconds; a
    /// worker holding a job longer is presumed wedged and replaced.
    /// 0 disables the timeout (crash detection still applies).
    pub request_timeout_ms: u64,
    /// How many different workers may fail one scenario before the
    /// fleet panics rather than emit a partial report.
    pub max_attempts: usize,
    /// Fleet seed; per-scenario seeds derive from it.
    pub seed: u64,
    /// Minibatch updates to run on the shared agent after pooling
    /// (§4.3 one-for-all training from the fleet's experience).
    pub train_steps: usize,
    /// Intra-scenario parallelism: threads each FIRM control loop fans
    /// its ingest/extract stages over (1, the default, keeps scenarios
    /// single-threaded). A pure latency knob — results are bit-identical
    /// at any value — that trades scenario-level for stage-level
    /// parallelism: the thread path divides its worker budget by this,
    /// so `threads` stays the total core budget.
    pub intra_shards: usize,
    /// Prioritized one-for-all replay: weight the central trainer's
    /// minibatch sampling by seeded violation severity
    /// ([`firm_core::training::replay_priorities`]) instead of drawing
    /// uniformly. Changes the trained shared-agent weights (a different
    /// deterministic function of the same pooled experience), never a
    /// report byte — the digest covers scenario outcomes only, which are
    /// produced before central training begins.
    pub replay_priority: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            threads: 0,
            workers: 0,
            remote_workers: Vec::new(),
            worker_bin: None,
            request_timeout_ms: 300_000,
            max_attempts: 3,
            seed: 1,
            train_steps: 256,
            intra_shards: 1,
            replay_priority: false,
        }
    }
}

impl FleetConfig {
    /// Shards over `n` subprocess workers instead of in-process
    /// threads (0 reverts to the thread path).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Shards over `firm-fleet-worker --listen` processes at the given
    /// `host:port` addresses — the multi-node path. May be combined
    /// with [`FleetConfig::workers`] for a mixed local/remote pool.
    pub fn remote_workers<S: AsRef<str>>(mut self, addrs: &[S]) -> Self {
        self.remote_workers = addrs.iter().map(|a| a.as_ref().to_string()).collect();
        self
    }

    /// Sets the per-scenario request timeout (0 disables).
    pub fn request_timeout_ms(mut self, ms: u64) -> Self {
        self.request_timeout_ms = ms;
        self
    }

    /// Sets the intra-scenario shard count (0 and 1 both mean
    /// sequential). Results are bit-identical at any value.
    pub fn intra_shards(mut self, n: usize) -> Self {
        self.intra_shards = n.max(1);
        self
    }

    /// Enables seeded prioritized experience replay for the central
    /// shared-agent training (see [`FleetConfig::replay_priority`]).
    pub fn replay_priority(mut self, on: bool) -> Self {
        self.replay_priority = on;
        self
    }

    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Resolves the worker binary: explicit config, then the
    /// `FIRM_FLEET_WORKER` environment variable, then a binary named
    /// `firm-fleet-worker` next to the current executable (or one
    /// directory up, covering cargo's `deps/` test layout).
    ///
    /// # Panics
    ///
    /// Panics when no candidate exists — a subprocess fleet cannot run
    /// without its worker. Long-running callers (the resident
    /// `firm-fleet serve` coordinator) that want to refuse a bad
    /// configuration at startup instead of dying mid-submission use
    /// [`FleetConfig::try_resolve_worker_bin`].
    pub fn resolve_worker_bin(&self) -> PathBuf {
        self.try_resolve_worker_bin()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`FleetConfig::resolve_worker_bin`]: the same
    /// candidate search, returning a descriptive error instead of
    /// panicking when no worker binary exists.
    pub fn try_resolve_worker_bin(&self) -> Result<PathBuf, String> {
        if let Some(path) = &self.worker_bin {
            return Ok(path.clone());
        }
        if let Some(path) = std::env::var_os("FIRM_FLEET_WORKER") {
            return Ok(path.into());
        }
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the current executable: {e}"))?;
        let name = format!("firm-fleet-worker{}", std::env::consts::EXE_SUFFIX);
        let mut candidates = Vec::new();
        if let Some(dir) = exe.parent() {
            candidates.push(dir.join(&name));
            if let Some(up) = dir.parent() {
                candidates.push(up.join(&name));
            }
        }
        for candidate in &candidates {
            if candidate.exists() {
                return Ok(candidate.clone());
            }
        }
        Err(format!(
            "firm-fleet-worker binary not found (searched {:?}); build it with \
             `cargo build -p firm-fleet --bin firm-fleet-worker`, set \
             FleetConfig::worker_bin, or export FIRM_FLEET_WORKER",
            candidates
        ))
    }
}

/// The result of a round-trip fleet run: train the shared agent across
/// the catalog, freeze it, deploy it back onto the *same* catalog (same
/// seeds, same incidents) in inference mode, and report the
/// improvement — Fig. 11b's train-vs-deploy comparison at fleet scale.
pub struct RoundTripResult {
    /// The training pass (report + trained shared pipeline).
    pub train: FleetResult,
    /// The deployment (inference) pass over the same catalog.
    pub deploy: FleetReport,
    /// The frozen policy the deployment pass ran.
    pub policy: PolicyCheckpoint,
}

impl RoundTripResult {
    /// Builds the combined report: both passes plus per-scenario
    /// train-vs-deploy deltas, in catalog order.
    pub fn report(&self) -> RoundTripReport {
        RoundTripReport::new(self.train.report.clone(), self.deploy.clone())
    }
}

/// The result of one fleet run: the aggregated report plus the
/// centrally trained shared pipeline.
pub struct FleetResult {
    /// Per-scenario measurements and fleet totals.
    pub report: FleetReport,
    /// The shared (one-for-all) DDPG estimator trained on the pooled
    /// experience.
    pub estimator: ResourceEstimator,
    /// The SVM-backed extractor trained on the pooled ground truth.
    pub extractor: CriticalComponentExtractor,
    /// The pooled experience, in catalog order.
    pub pooled: ExperienceLog,
    /// Shared-agent updates that actually trained.
    pub trained_updates: usize,
    /// Runtime self-metrics for this run — out-of-band diagnostics that
    /// vary with timing and are never covered by the report digest.
    /// Snapshots are process-cumulative (see [`OpsReport`]).
    pub ops: OpsReport,
}

/// Mixes the fleet seed with a scenario's catalog index into its
/// decorrelated per-scenario seed, with no dependence on scheduling.
pub fn scenario_seed(fleet_seed: u64, index: usize) -> u64 {
    firm_rng::mix64(fleet_seed, index as u64)
}

/// Runs scenario fleets.
#[derive(Debug, Clone, Default)]
pub struct FleetRunner {
    config: FleetConfig,
}

impl FleetRunner {
    /// Creates a runner.
    pub fn new(config: FleetConfig) -> Self {
        FleetRunner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Executes every scenario across the worker pool and aggregates.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a scenario run itself panicked)
    /// or if `scenarios` is empty.
    pub fn run(&self, scenarios: &[Scenario]) -> FleetResult {
        let (slots, worker_ops) = self.execute(scenarios, None);
        self.aggregate(slots, worker_ops)
    }

    /// Runs the catalog over caller-supplied transports instead of the
    /// config's `workers`/`remote_workers` — the injection point for
    /// fault harnesses (`firm-chaos` wraps the stock transports) and
    /// custom deployments. Dispatch, liveness, and restart-and-replay
    /// behave exactly as in the supervised path of [`FleetRunner::run`];
    /// aggregation is shared, so a run over wrapped transports is held
    /// to the same bit-identity contract as any other.
    ///
    /// # Panics
    ///
    /// Panics if `scenarios` or `transports` is empty, an initial
    /// connection fails, or a scenario exhausts
    /// [`FleetConfig::max_attempts`].
    pub fn run_with_transports(
        &self,
        scenarios: &[Scenario],
        transports: Vec<Box<dyn Transport>>,
    ) -> FleetResult {
        assert!(!scenarios.is_empty(), "fleet needs at least one scenario");
        assert!(!transports.is_empty(), "fleet needs at least one transport");
        let config = self.supervisor_config();
        let (slots, worker_ops) = supervise(transports, scenarios, self.config.seed, None, &config);
        self.aggregate(slots, worker_ops)
    }

    /// Folds per-scenario results into the final [`FleetResult`]: the
    /// aggregation tail shared by every execution path.
    fn aggregate(
        &self,
        slots: Vec<(ScenarioOutcome, ExperienceLog)>,
        worker_ops: Vec<WorkerOps>,
    ) -> FleetResult {
        let fleet_seed = self.config.seed;

        // Catalog-order aggregation: the only ordering the results ever
        // see, regardless of which worker finished first.
        let mut outcomes = Vec::with_capacity(slots.len());
        let mut pooled = ExperienceLog::default();
        for (outcome, log) in slots {
            outcomes.push(outcome);
            pooled.merge(log);
        }
        let report = FleetReport::new(fleet_seed, outcomes);

        // Central shared-agent training from the pooled, ordered
        // experience (the paper's one-for-all regime, fed by
        // heterogeneous tenants instead of one app).
        let mut estimator = ResourceEstimator::new(AgentRegime::Shared, fleet_seed ^ 0x0A11);
        let trained_updates = if self.config.replay_priority {
            replay_experience_prioritized(
                &mut estimator,
                &pooled,
                self.config.train_steps,
                fleet_seed,
            )
        } else {
            replay_experience(&mut estimator, &pooled, self.config.train_steps)
        };
        let mut extractor = CriticalComponentExtractor::new(fleet_seed ^ 0x51FE);
        for (features, label) in &pooled.svm_examples {
            extractor.train(features, *label);
        }

        // Assembled last so the coordinator snapshot includes the
        // aggregation and training it just did. Diagnostics only: the
        // report and weights above were already final.
        let ops = OpsReport::new(firm_obs::metrics().snapshot(), worker_ops);

        FleetResult {
            report,
            estimator,
            extractor,
            pooled,
            trained_updates,
            ops,
        }
    }

    /// Trains across the catalog, freezes the shared agent, and re-runs
    /// the *same* catalog (same derived seeds, hence the same arrival
    /// sequences and anomaly campaigns) with the frozen policy deployed
    /// in inference mode. [`RoundTripResult::report`] combines both
    /// passes with the per-scenario deltas.
    ///
    /// Like [`FleetRunner::run`], the whole round trip is bit-identical
    /// at any thread count: the deploy pass derives per-scenario seeds
    /// the same way and runs a frozen (deterministic) policy.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics or `scenarios` is empty.
    pub fn run_round_trip(&self, scenarios: &[Scenario]) -> RoundTripResult {
        let train = self.run(scenarios);
        let (actor, critic) = train.estimator.shared_agent().export_weights();
        let policy = PolicyCheckpoint { actor, critic };

        // The deploy pass's worker snapshots are folded into the same
        // process-cumulative registries; the train pass's OpsReport
        // already tells the operability story, so they are not kept
        // separately.
        let (slots, _deploy_ops) = self.execute(scenarios, Some(&policy));
        let outcomes = slots.into_iter().map(|(outcome, _)| outcome).collect();
        let deploy = FleetReport::new(self.config.seed, outcomes);

        RoundTripResult {
            train,
            deploy,
            policy,
        }
    }

    /// Runs every scenario across the worker pool (threads or
    /// subprocesses, per the config), returning results in catalog
    /// order. The shared skeleton of the training and deployment
    /// passes; `policy` deploys a frozen agent into FIRM scenarios.
    fn execute(
        &self,
        scenarios: &[Scenario],
        policy: Option<&PolicyCheckpoint>,
    ) -> (Vec<(ScenarioOutcome, ExperienceLog)>, Vec<WorkerOps>) {
        assert!(!scenarios.is_empty(), "fleet needs at least one scenario");
        if self.config.workers > 0 || !self.config.remote_workers.is_empty() {
            self.execute_supervised(scenarios, policy)
        } else {
            // The thread path has no worker processes; its scenario and
            // stage metrics land directly in this process's registry.
            (self.execute_threads(scenarios, policy), Vec::new())
        }
    }

    /// The in-process path: OS threads claiming catalog indices from an
    /// atomic counter.
    ///
    /// With [`FleetConfig::intra_shards`] above 1, scenario workers and
    /// intra-scenario shards are co-scheduled against one core budget:
    /// each scenario runner spawns `intra_shards` stage threads at its
    /// barriers, so the scenario-worker count is the thread budget
    /// divided by the shard count (floor 1). Total concurrency stays
    /// ≈ `effective_threads` whichever way the product is split, and
    /// because sharded results are bit-identical, the split is
    /// invisible in the report.
    fn execute_threads(
        &self,
        scenarios: &[Scenario],
        policy: Option<&PolicyCheckpoint>,
    ) -> Vec<(ScenarioOutcome, ExperienceLog)> {
        let intra_shards = self.config.intra_shards.max(1);
        let threads = (self.config.effective_threads() / intra_shards)
            .max(1)
            .min(scenarios.len());
        let fleet_seed = self.config.seed;

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ScenarioOutcome, ExperienceLog)>();
        let mut slots: Vec<Option<(ScenarioOutcome, ExperienceLog)>> =
            (0..scenarios.len()).map(|_| None).collect();

        thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(i) else {
                        break;
                    };
                    let seed = scenario_seed(fleet_seed, i);
                    let (outcome, log) = run_one_sharded(scenario, seed, policy, intra_shards);
                    // The collector hanging up is impossible while the
                    // scope lives; a send error would mean a collector
                    // bug, so surface it.
                    tx.send((i, outcome, log)).expect("collector alive");
                });
            }
            drop(tx);
            // Collect on the scope's owning thread while workers run.
            for (i, outcome, log) in rx {
                slots[i] = Some((outcome, log));
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("every scenario ran"))
            .collect()
    }

    /// The sharded path: build one [`Transport`] per worker —
    /// [`PipeTransport`]s for [`FleetConfig::workers`] subprocesses,
    /// [`TcpTransport`]s for every [`FleetConfig::remote_workers`]
    /// address — and hand the catalog to the [`crate::supervisor`],
    /// which owns dispatch (idle-queue, one outstanding scenario per
    /// worker), liveness (per-request timeout, heartbeat silence, EOF),
    /// and restart-and-replay. Results come back in catalog order, so
    /// aggregation is byte-identical to the thread path.
    ///
    /// # Panics
    ///
    /// Panics if the worker binary cannot be found or spawned, an
    /// initial connection fails, or a scenario exhausts
    /// [`FleetConfig::max_attempts`] — a fleet result built from
    /// partial data would silently break the determinism contract, so
    /// there is nothing sensible to salvage.
    fn execute_supervised(
        &self,
        scenarios: &[Scenario],
        policy: Option<&PolicyCheckpoint>,
    ) -> (Vec<(ScenarioOutcome, ExperienceLog)>, Vec<WorkerOps>) {
        // More subprocesses than scenarios would sit idle forever.
        let pipes = self.config.workers.min(scenarios.len());
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        if pipes > 0 {
            let bin = self.config.resolve_worker_bin();
            transports.extend(
                (0..pipes).map(|_| Box::new(PipeTransport::new(bin.clone())) as Box<dyn Transport>),
            );
        }
        transports.extend(
            self.config
                .remote_workers
                .iter()
                .map(|addr| Box::new(TcpTransport::new(addr.clone())) as Box<dyn Transport>),
        );

        let config = self.supervisor_config();
        supervise(transports, scenarios, self.config.seed, policy, &config)
    }

    /// The supervisor knobs derived from the fleet config, shared by
    /// the stock supervised path and [`FleetRunner::run_with_transports`].
    fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            request_timeout: (self.config.request_timeout_ms > 0)
                .then(|| Duration::from_millis(self.config.request_timeout_ms)),
            max_attempts: self.config.max_attempts.max(1),
            intra_shards: self.config.intra_shards.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin_catalog;
    use firm_sim::SimDuration;

    fn short_catalog(n: usize, secs: u64) -> Vec<Scenario> {
        builtin_catalog()
            .into_iter()
            .take(n)
            .map(|s| s.with_duration(SimDuration::from_secs(secs)))
            .collect()
    }

    /// Golden vectors for the `(fleet seed, catalog index) → seed`
    /// derivation. Subprocess (and, later, multi-host) workers receive
    /// seeds the coordinator derived with this exact function, so its
    /// output is a cross-process stability guarantee: a change here
    /// invalidates every recorded digest and remote worker alike. If
    /// this test fails, you have broken the wire contract — do not
    /// update the vectors without bumping the fleet protocol.
    #[test]
    fn scenario_seed_matches_golden_vectors() {
        let golden: [(u64, usize, u64); 10] = [
            (1, 0, 0x910a_2dec_8902_5cc1),
            (1, 1, 0xcf53_8298_0db3_6f89),
            (1, 2, 0xa52d_678c_8927_ec72),
            (1, 11, 0x9e4c_f921_b63f_fcfa),
            (7, 0, 0x63cb_e1e4_5932_0dd7),
            (7, 3, 0x3806_2e04_481f_df3c),
            (0, 0, 0xe220_a839_7b1d_cdaf),
            (u64::MAX, 4, 0xc7f9_2d30_8b7d_8159),
            (20_26, 5, 0x161f_ee19_263e_5b75),
            (4242, 7, 0x515d_473f_84c9_362f),
        ];
        for (fleet_seed, index, expected) in golden {
            assert_eq!(
                scenario_seed(fleet_seed, index),
                expected,
                "scenario_seed({fleet_seed}, {index}) drifted from its pinned value"
            );
        }
    }

    #[test]
    fn seeds_are_decorrelated() {
        let a = scenario_seed(1, 0);
        let b = scenario_seed(1, 1);
        let c = scenario_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls.
        assert_eq!(a, scenario_seed(1, 0));
    }

    #[test]
    fn fleet_runs_and_pools_experience() {
        let scenarios = short_catalog(3, 8);
        let runner = FleetRunner::new(FleetConfig {
            threads: 2,
            seed: 11,
            train_steps: 64,
            ..FleetConfig::default()
        });
        let result = runner.run(&scenarios);
        assert_eq!(result.report.scenarios.len(), 3);
        // Catalog order is preserved.
        for (s, o) in scenarios.iter().zip(&result.report.scenarios) {
            assert_eq!(s.name, o.name);
        }
        assert!(result.report.totals.completions > 500);
        // The two FIRM scenarios in the prefix contribute experience.
        assert!(!result.pooled.transitions.is_empty());
        assert!(!result.pooled.svm_examples.is_empty());
        assert!(result.extractor.trained_examples() > 0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let scenarios = short_catalog(4, 6);
        let run = |threads| {
            FleetRunner::new(FleetConfig {
                threads,
                seed: 5,
                train_steps: 32,
                ..FleetConfig::default()
            })
            .run(&scenarios)
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.report.to_json(), four.report.to_json());
        assert_eq!(one.report.digest(), four.report.digest());
        assert_eq!(
            one.estimator.shared_agent().export_weights(),
            four.estimator.shared_agent().export_weights(),
            "pooled training diverged across thread counts"
        );
    }

    #[test]
    fn intra_shards_do_not_change_results() {
        let scenarios = short_catalog(3, 6);
        let run = |intra_shards| {
            FleetRunner::new(FleetConfig {
                threads: 2,
                seed: 5,
                train_steps: 32,
                intra_shards,
                ..FleetConfig::default()
            })
            .run(&scenarios)
        };
        let sequential = run(1);
        let sharded = run(3);
        assert_eq!(sequential.report.to_json(), sharded.report.to_json());
        assert_eq!(sequential.report.digest(), sharded.report.digest());
        assert_eq!(
            sequential.estimator.shared_agent().export_weights(),
            sharded.estimator.shared_agent().export_weights(),
            "pooled training diverged across intra-shard counts"
        );
    }

    #[test]
    fn round_trip_deploys_the_frozen_policy_over_the_same_catalog() {
        let scenarios = short_catalog(5, 6);
        let rt = FleetRunner::new(FleetConfig {
            threads: 2,
            seed: 17,
            train_steps: 64,
            ..FleetConfig::default()
        })
        .run_round_trip(&scenarios);

        let report = rt.report();
        assert_eq!(report.deltas.len(), 5);
        for (s, d) in scenarios.iter().zip(&report.deltas) {
            assert_eq!(s.name, d.name);
        }
        // The frozen policy only changes FIRM rows: baseline scenarios
        // reproduce their training-pass outcome bit for bit.
        let mut baselines = 0;
        for (t, d) in rt.train.report.scenarios.iter().zip(&rt.deploy.scenarios) {
            if t.controller != "FIRM" {
                assert_eq!(t, d, "{}: baseline diverged across passes", t.name);
                baselines += 1;
            }
        }
        assert!(baselines > 0, "catalog prefix has no baseline scenario");
        // Inference mode harvests nothing.
        assert_eq!(
            rt.deploy.totals.transitions, 0,
            "deploy pass recorded experience"
        );
        assert_eq!(rt.deploy.totals.svm_examples, 0);
        // The frozen policy is the trained shared agent's weights.
        let (actor, critic) = rt.train.estimator.shared_agent().export_weights();
        assert_eq!(rt.policy.actor, actor);
        assert_eq!(rt.policy.critic, critic);
    }

    #[test]
    fn different_fleet_seeds_differ() {
        let scenarios = short_catalog(2, 6);
        let run = |seed| {
            FleetRunner::new(FleetConfig {
                threads: 2,
                seed,
                train_steps: 0,
                ..FleetConfig::default()
            })
            .run(&scenarios)
            .report
            .digest()
        };
        assert_ne!(run(1), run(2));
    }
}
