//! The scenario catalog: declarative descriptions of complete cluster
//! simulations.
//!
//! A [`Scenario`] pins down everything a worker needs to reproduce a
//! run bit-for-bit — benchmark topology, cluster size, arrival shape,
//! anomaly campaign, and controller — without holding any live state.
//! The [`builtin_catalog`] spans all four §4.1 benchmark applications,
//! the three load regimes (steady Poisson, diurnal, flash crowd), the
//! seed's anomaly kinds, and all four controllers, so a fleet run
//! exercises the shared pipeline against genuinely heterogeneous
//! tenants (the paper's §4.3 generalization claim).

use std::str::FromStr;

use firm_core::baselines::{AimdConfig, K8sConfig};
use firm_core::injector::CampaignConfig;
use firm_sim::{AnomalyKind, SimDuration};
use firm_workload::apps::Benchmark;
use firm_workload::{LoadShape, ReplayTrace};

/// Which resource manager drives a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetController {
    /// No management (static allocation) — the fleet's control group.
    Unmanaged,
    /// FIRM in training mode; contributes experience to the shared
    /// trainer.
    Firm,
    /// Kubernetes horizontal pod autoscaling.
    K8sHpa,
    /// AIMD limit control.
    Aimd,
}

impl FleetController {
    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            FleetController::Unmanaged => "none",
            FleetController::Firm => "FIRM",
            FleetController::K8sHpa => "K8S",
            FleetController::Aimd => "AIMD",
        }
    }
}

impl FromStr for FleetController {
    type Err = String;

    /// Parses a report label (or common alias) back into the
    /// controller, case-insensitively — the inverse of
    /// [`FleetController::label`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "unmanaged" => Ok(FleetController::Unmanaged),
            "firm" => Ok(FleetController::Firm),
            "k8s" | "k8s-hpa" | "k8shpa" | "hpa" => Ok(FleetController::K8sHpa),
            "aimd" => Ok(FleetController::Aimd),
            other => Err(format!(
                "unknown controller {other:?} (expected none|FIRM|K8S|AIMD)"
            )),
        }
    }
}

/// A declarative, fully reproducible cluster-simulation recipe.
///
/// Everything is plain data; a worker thread turns it into a live
/// [`firm_sim::Simulation`] with [`crate::exec::run_one`]. Two runs of
/// the same `(Scenario, seed)` produce identical results on any thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique name within a catalog (used in reports).
    pub name: String,
    /// The benchmark application.
    pub benchmark: Benchmark,
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Arrival shape.
    pub load: LoadShape,
    /// Anomaly campaign, if any.
    pub campaign: Option<CampaignConfig>,
    /// The resource manager under test.
    pub controller: FleetController,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Control-loop period.
    pub control_interval: SimDuration,
    /// Measurements start after this warmup.
    pub warmup: SimDuration,
    /// When set, calibrate each request type's SLO to `factor ×` its
    /// healthy p99 before the run (via [`firm_core::slo::calibrate_slos`]),
    /// so violation rates are comparable across benchmarks.
    pub slo_factor: Option<f64>,
    /// K8s HPA parameters (used when `controller` is `K8sHpa`).
    pub k8s: K8sConfig,
    /// AIMD parameters (used when `controller` is `Aimd`).
    pub aimd: AimdConfig,
    /// Multiplies every service's initial replica count — the
    /// replica-fan-out half of the catalog `scale_factor` knob.
    /// `1` (the default) leaves the benchmark topology untouched.
    pub replica_factor: u32,
    /// Use the SLO-penalized reward in FIRM scenarios (deep SLO
    /// violations earn negative rewards; see
    /// [`firm_core::estimator::reward_penalized`]). Defaults to
    /// `false`: the hand-written catalog keeps the legacy non-negative
    /// reward and its pinned digests.
    pub slo_penalty: bool,
}

impl Scenario {
    /// A scenario with catalog defaults: 30 simulated seconds, 1 s
    /// control interval, 5 s warmup, SLOs calibrated at 1.4× healthy
    /// p99.
    pub fn new(
        name: impl Into<String>,
        benchmark: Benchmark,
        nodes: usize,
        load: LoadShape,
        campaign: Option<CampaignConfig>,
        controller: FleetController,
    ) -> Self {
        Scenario {
            name: name.into(),
            benchmark,
            nodes,
            load,
            campaign,
            controller,
            duration: SimDuration::from_secs(30),
            control_interval: SimDuration::from_secs(1),
            warmup: SimDuration::from_secs(5),
            slo_factor: Some(1.4),
            k8s: K8sConfig::default(),
            aimd: AimdConfig::default(),
            replica_factor: 1,
            slo_penalty: false,
        }
    }

    /// Returns the scenario with a different simulated duration
    /// (warmup is clamped to stay shorter than the run).
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        if self.warmup >= duration {
            self.warmup = SimDuration::from_micros(duration.as_micros() / 4);
        }
        self
    }
}

/// A campaign over a restricted set of anomaly kinds at the default
/// rate/intensity.
fn campaign_of(kinds: &[AnomalyKind]) -> CampaignConfig {
    CampaignConfig {
        kinds: kinds.to_vec(),
        ..CampaignConfig::default()
    }
}

/// The built-in catalog: twelve scenarios spanning all four benchmark
/// topologies, the three synthetic load shapes, the seven anomaly
/// kinds, and all four controllers — plus a recorded flash-crowd
/// incident replayed under three different controllers (FIRM vs K8s
/// HPA vs unmanaged) so policies can be compared on *exactly* the same
/// load, arrival for arrival.
pub fn builtin_catalog() -> Vec<Scenario> {
    // The incident recording: a flash crowd captured once (synthesized
    // deterministically here; a production catalog would load it from a
    // fleet run's arrival log) and shared by all three replay tenants.
    let incident = ReplayTrace::synthesize(
        &LoadShape::FlashCrowd {
            base: 150.0,
            multiplier: 3.0,
            every_secs: 20,
            crest_secs: 5,
        },
        SimDuration::from_secs(30),
        0x14C1_DE47,
    );
    let replay = |name: &str, controller| {
        Scenario::new(
            name,
            Benchmark::SocialNetwork,
            3,
            LoadShape::Replay {
                trace: incident.clone(),
            },
            None,
            controller,
        )
    };
    vec![
        // Social Network: the paper's flagship app under steady load and
        // the full stressor set.
        Scenario::new(
            "social-steady-firm",
            Benchmark::SocialNetwork,
            4,
            LoadShape::Steady { rate: 250.0 },
            Some(CampaignConfig::stressors_only()),
            FleetController::Firm,
        ),
        // Diurnal swing with compute-side contention.
        Scenario::new(
            "social-diurnal-firm",
            Benchmark::SocialNetwork,
            4,
            LoadShape::Diurnal {
                base: 200.0,
                amplitude: 0.4,
                period_secs: 40,
            },
            Some(campaign_of(&[
                AnomalyKind::CpuStress,
                AnomalyKind::LlcStress,
            ])),
            FleetController::Firm,
        ),
        // Flash crowds without any injected contention: load itself is
        // the anomaly.
        Scenario::new(
            "social-flash-quiet",
            Benchmark::SocialNetwork,
            3,
            LoadShape::FlashCrowd {
                base: 180.0,
                multiplier: 3.0,
                every_secs: 25,
                crest_secs: 5,
            },
            None,
            FleetController::Firm,
        ),
        // Media Service under bursts and memory-path stress.
        Scenario::new(
            "media-flash-firm",
            Benchmark::MediaService,
            4,
            LoadShape::FlashCrowd {
                base: 150.0,
                multiplier: 3.0,
                every_secs: 20,
                crest_secs: 5,
            },
            Some(campaign_of(&[
                AnomalyKind::MemBwStress,
                AnomalyKind::LlcStress,
            ])),
            FleetController::Firm,
        ),
        // Unmanaged control group on the same app class.
        Scenario::new(
            "media-steady-none",
            Benchmark::MediaService,
            3,
            LoadShape::Steady { rate: 150.0 },
            Some(CampaignConfig::stressors_only()),
            FleetController::Unmanaged,
        ),
        // Hotel Reservation: storage-heavy tiers under IO/network stress.
        Scenario::new(
            "hotel-steady-firm",
            Benchmark::HotelReservation,
            3,
            LoadShape::Steady { rate: 300.0 },
            Some(campaign_of(&[
                AnomalyKind::IoStress,
                AnomalyKind::NetBwStress,
            ])),
            FleetController::Firm,
        ),
        // The K8s baseline against the full campaign, bursty load.
        Scenario::new(
            "hotel-flash-k8s",
            Benchmark::HotelReservation,
            3,
            LoadShape::FlashCrowd {
                base: 200.0,
                multiplier: 4.0,
                every_secs: 30,
                crest_secs: 6,
            },
            Some(CampaignConfig::default()),
            FleetController::K8sHpa,
        ),
        // Train-Ticket: the largest topology, diurnal load, network-side
        // anomalies.
        Scenario::new(
            "train-diurnal-firm",
            Benchmark::TrainTicket,
            4,
            LoadShape::Diurnal {
                base: 150.0,
                amplitude: 0.5,
                period_secs: 60,
            },
            Some(campaign_of(&[
                AnomalyKind::NetworkDelay,
                AnomalyKind::NetBwStress,
            ])),
            FleetController::Firm,
        ),
        // The AIMD baseline under workload-variation anomalies.
        Scenario::new(
            "train-steady-aimd",
            Benchmark::TrainTicket,
            4,
            LoadShape::Steady { rate: 120.0 },
            Some(campaign_of(&[AnomalyKind::WorkloadVariation])),
            FleetController::Aimd,
        ),
        // The recorded flash-crowd incident, re-run under three
        // controllers: many policies, one replayable load.
        replay("incident-replay-firm", FleetController::Firm),
        replay("incident-replay-k8s", FleetController::K8sHpa),
        replay("incident-replay-none", FleetController::Unmanaged),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_workload::apps::ALL_BENCHMARKS;

    #[test]
    fn catalog_spans_the_required_axes() {
        let catalog = builtin_catalog();
        assert!(
            catalog.len() >= 8,
            "catalog has {} scenarios",
            catalog.len()
        );

        // Unique names.
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "duplicate scenario names");

        // All four benchmarks.
        for bench in ALL_BENCHMARKS {
            assert!(
                catalog.iter().any(|s| s.benchmark == bench),
                "{} missing from catalog",
                bench.name()
            );
        }

        // All three synthetic load shapes, plus trace replay.
        assert!(catalog
            .iter()
            .any(|s| matches!(s.load, LoadShape::Steady { .. })));
        assert!(catalog
            .iter()
            .any(|s| matches!(s.load, LoadShape::Diurnal { .. })));
        assert!(catalog
            .iter()
            .any(|s| matches!(s.load, LoadShape::FlashCrowd { .. })));
        let replays: Vec<_> = catalog
            .iter()
            .filter(|s| matches!(s.load, LoadShape::Replay { .. }))
            .collect();
        assert!(
            replays.len() >= 3,
            "only {} replay scenarios",
            replays.len()
        );
        // The replay trio re-runs the *same* recording under different
        // controllers.
        assert!(replays.windows(2).all(|w| w[0].load == w[1].load));
        let mut replay_ctls: Vec<_> = replays.iter().map(|s| s.controller).collect();
        replay_ctls.dedup();
        assert!(replay_ctls.len() >= 3, "replay trio shares a controller");

        // Every anomaly kind appears in some campaign.
        for kind in firm_sim::anomaly::ANOMALY_KINDS {
            assert!(
                catalog
                    .iter()
                    .filter_map(|s| s.campaign.as_ref())
                    .any(|c| c.kinds.contains(&kind)),
                "{:?} never injected",
                kind
            );
        }

        // All four controllers appear.
        for ctl in [
            FleetController::Unmanaged,
            FleetController::Firm,
            FleetController::K8sHpa,
            FleetController::Aimd,
        ] {
            assert!(catalog.iter().any(|s| s.controller == ctl));
        }
    }

    #[test]
    fn controller_labels_round_trip_through_from_str() {
        for ctl in [
            FleetController::Unmanaged,
            FleetController::Firm,
            FleetController::K8sHpa,
            FleetController::Aimd,
        ] {
            let parsed: FleetController = ctl.label().parse().expect("label parses");
            assert_eq!(parsed, ctl, "label {:?} did not round-trip", ctl.label());
            // Case-insensitive.
            let parsed: FleetController = ctl.label().to_ascii_lowercase().parse().expect("parses");
            assert_eq!(parsed, ctl);
        }
        assert!("nonesuch".parse::<FleetController>().is_err());
        assert!("".parse::<FleetController>().is_err());
    }

    #[test]
    fn with_duration_clamps_warmup() {
        let s = builtin_catalog()
            .remove(0)
            .with_duration(SimDuration::from_secs(4));
        assert_eq!(s.duration, SimDuration::from_secs(4));
        assert!(s.warmup < s.duration);
    }
}
