//! Wire-codec impls for fleet data: the full coordinator↔worker
//! vocabulary.
//!
//! A [`Scenario`] is everything a remote worker needs to reproduce a
//! run bit-for-bit, so it encodes *all* of its plain data — benchmark,
//! load shape (replay traces included), campaign, controller params.
//! Outcomes and reports keep their derived fields (`violation_rate`,
//! totals) in the rendered document for human readers, but decoding
//! recomputes them from the underlying measurements, so a decoded
//! report is internally consistent by construction.
//!
//! `benchmark` / `controller` labels decode back to the same `&'static
//! str` instances the in-process path uses, via [`Benchmark`]'s wire
//! decode and [`FleetController`]'s label set.

use firm_wire::{DecodeError, JsonValue, Obj, WireDecode, WireEncode};
use firm_workload::apps::Benchmark;

use crate::report::{FleetReport, RoundTripReport, ScenarioDelta, ScenarioOutcome};
use crate::scenario::{FleetController, Scenario};

impl WireEncode for FleetController {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.label().to_string())
    }
}

impl WireDecode for FleetController {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        v.as_str()?.parse().map_err(DecodeError::new)
    }
}

impl WireEncode for Scenario {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("name", &self.name)
            .field("benchmark", self.benchmark)
            .field("nodes", self.nodes)
            .field("load", &self.load)
            .field("campaign", &self.campaign)
            .field("controller", self.controller)
            .field("duration_us", self.duration)
            .field("control_interval_us", self.control_interval)
            .field("warmup_us", self.warmup)
            .field("slo_factor", self.slo_factor)
            .field("k8s", &self.k8s)
            .field("aimd", &self.aimd)
            .field("replica_factor", self.replica_factor)
            .field("slo_penalty", self.slo_penalty)
            .build()
    }
}

impl WireDecode for Scenario {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(Scenario {
            name: v.field("name")?,
            benchmark: v.field("benchmark")?,
            nodes: v.field("nodes")?,
            load: v.field("load")?,
            campaign: v.field("campaign")?,
            controller: v.field("controller")?,
            duration: v.field("duration_us")?,
            control_interval: v.field("control_interval_us")?,
            warmup: v.field("warmup_us")?,
            slo_factor: v.field("slo_factor")?,
            k8s: v.field("k8s")?,
            aimd: v.field("aimd")?,
            replica_factor: v.field("replica_factor")?,
            slo_penalty: v.field("slo_penalty")?,
        })
    }
}

impl WireEncode for ScenarioOutcome {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("name", &self.name)
            .field("benchmark", self.benchmark)
            .field("controller", self.controller)
            .field("load", &self.load)
            .field("seed", self.seed)
            .field("ticks", self.ticks)
            .field("arrivals", self.arrivals)
            .field("completions", self.completions)
            .field("drops", self.drops)
            .field("slo_violations", self.slo_violations)
            .field("violation_rate", self.violation_rate())
            .field("p50_us", self.p50_us)
            .field("p99_us", self.p99_us)
            .field("mean_latency_us", self.mean_latency_us)
            .field("anomalies_injected", self.anomalies_injected)
            .field("mitigations", self.mitigations)
            .field("mean_mitigation_secs", self.mean_mitigation_secs)
            .field("transitions", self.transitions)
            .field("svm_examples", self.svm_examples)
            .build()
    }
}

impl WireDecode for ScenarioOutcome {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        // `violation_rate` is derived from completions and violations;
        // it is rendered for readers but deliberately not decoded.
        Ok(ScenarioOutcome {
            name: v.field("name")?,
            benchmark: v.field::<Benchmark>("benchmark")?.name(),
            controller: v.field::<FleetController>("controller")?.label(),
            load: v.field("load")?,
            seed: v.field("seed")?,
            ticks: v.field("ticks")?,
            arrivals: v.field("arrivals")?,
            completions: v.field("completions")?,
            drops: v.field("drops")?,
            slo_violations: v.field("slo_violations")?,
            p50_us: v.field("p50_us")?,
            p99_us: v.field("p99_us")?,
            mean_latency_us: v.field("mean_latency_us")?,
            anomalies_injected: v.field("anomalies_injected")?,
            mitigations: v.field("mitigations")?,
            mean_mitigation_secs: v.field("mean_mitigation_secs")?,
            transitions: v.field("transitions")?,
            svm_examples: v.field("svm_examples")?,
        })
    }
}

impl WireEncode for FleetReport {
    fn encode(&self) -> JsonValue {
        let t = &self.totals;
        let totals = Obj::new()
            .field("scenarios", t.scenarios)
            .field("arrivals", t.arrivals)
            .field("completions", t.completions)
            .field("drops", t.drops)
            .field("slo_violations", t.slo_violations)
            .field("violation_rate", t.violation_rate())
            .field("worst_p99_us", t.worst_p99_us)
            .field("anomalies_injected", t.anomalies_injected)
            .field("mitigations", t.mitigations)
            .field("transitions", t.transitions)
            .field("svm_examples", t.svm_examples)
            .build();
        Obj::new()
            .field("seed", self.seed)
            .field("totals", totals)
            .field("scenarios", &self.scenarios)
            .build()
    }
}

impl WireDecode for FleetReport {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        // Totals are re-aggregated from the per-scenario outcomes (the
        // same way the in-process collector builds them), so a decoded
        // report can never carry inconsistent aggregates.
        let seed: u64 = v.field("seed")?;
        let scenarios: Vec<ScenarioOutcome> = v.field("scenarios")?;
        Ok(FleetReport::new(seed, scenarios))
    }
}

impl WireEncode for ScenarioDelta {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("name", &self.name)
            .field("controller", self.controller)
            .field("train_violation_rate", self.train_violation_rate)
            .field("deploy_violation_rate", self.deploy_violation_rate)
            .field("train_p99_us", self.train_p99_us)
            .field("deploy_p99_us", self.deploy_p99_us)
            .field(
                "train_mean_mitigation_secs",
                self.train_mean_mitigation_secs,
            )
            .field(
                "deploy_mean_mitigation_secs",
                self.deploy_mean_mitigation_secs,
            )
            .build()
    }
}

impl WireDecode for ScenarioDelta {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(ScenarioDelta {
            name: v.field("name")?,
            controller: v.field::<FleetController>("controller")?.label(),
            train_violation_rate: v.field("train_violation_rate")?,
            deploy_violation_rate: v.field("deploy_violation_rate")?,
            train_p99_us: v.field("train_p99_us")?,
            deploy_p99_us: v.field("deploy_p99_us")?,
            train_mean_mitigation_secs: v.field("train_mean_mitigation_secs")?,
            deploy_mean_mitigation_secs: v.field("deploy_mean_mitigation_secs")?,
        })
    }
}

impl WireEncode for RoundTripReport {
    fn encode(&self) -> JsonValue {
        Obj::new()
            .field("train", &self.train)
            .field("deploy", &self.deploy)
            .field("deltas", &self.deltas)
            .build()
    }
}

impl WireDecode for RoundTripReport {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        // Deltas are derived by pairing the two passes; `new` recomputes
        // them (and re-checks the catalogs line up). Mismatched passes
        // surface as a decode error rather than the constructor panic.
        let train: FleetReport = v.field("train")?;
        let deploy: FleetReport = v.field("deploy")?;
        if train.scenarios.len() != deploy.scenarios.len()
            || train
                .scenarios
                .iter()
                .zip(&deploy.scenarios)
                .any(|(t, d)| t.name != d.name)
        {
            return Err(DecodeError::new(
                "train and deploy passes cover different catalogs",
            ));
        }
        Ok(RoundTripReport::new(train, deploy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin_catalog;
    use firm_wire::{assert_round_trip, decode_string, encode_string};

    fn outcome(name: &str) -> ScenarioOutcome {
        ScenarioOutcome {
            name: name.into(),
            benchmark: "Social Network",
            controller: "FIRM",
            load: "steady@250".into(),
            seed: 0xDEAD_BEEF_CAFE_F00D,
            ticks: 30,
            arrivals: 110,
            completions: 100,
            drops: 1,
            slo_violations: 10,
            p50_us: 1_500,
            p99_us: 5_000,
            mean_latency_us: 2_000.25,
            anomalies_injected: 4,
            mitigations: 3,
            mean_mitigation_secs: 2.5,
            transitions: 20,
            svm_examples: 200,
        }
    }

    #[test]
    fn controllers_round_trip() {
        for ctl in [
            FleetController::Unmanaged,
            FleetController::Firm,
            FleetController::K8sHpa,
            FleetController::Aimd,
        ] {
            assert_round_trip(&ctl);
        }
    }

    #[test]
    fn every_builtin_scenario_round_trips() {
        for scenario in builtin_catalog() {
            assert_round_trip(&scenario);
        }
    }

    #[test]
    fn outcomes_round_trip_with_full_range_seeds() {
        assert_round_trip(&outcome("a"));
        let mut hostile = outcome("has \"quotes\" \\ and\ncontrol\u{7}chars");
        hostile.seed = u64::MAX;
        assert_round_trip(&hostile);
    }

    #[test]
    fn reports_round_trip_and_recompute_totals() {
        let report = FleetReport::new(7, vec![outcome("a"), outcome("b")]);
        assert_round_trip(&report);
        let back: FleetReport = decode_string(&encode_string(&report)).unwrap();
        assert_eq!(back.totals, report.totals);
        assert_eq!(back.digest(), report.digest());
    }

    #[test]
    fn tampered_totals_cannot_survive_a_decode() {
        let report = FleetReport::new(7, vec![outcome("a")]);
        let tampered =
            encode_string(&report).replace("\"completions\":100", "\"completions\":100000");
        let back: FleetReport = decode_string(&tampered).unwrap();
        // The totals were recomputed from the (tampered) scenario rows,
        // not read from the stale aggregate block.
        assert_eq!(back.totals.completions, back.scenarios[0].completions);
    }

    #[test]
    fn round_trip_reports_round_trip() {
        let train = FleetReport::new(7, vec![outcome("a"), outcome("b")]);
        let mut improved = outcome("a");
        improved.slo_violations = 2;
        let deploy = FleetReport::new(7, vec![improved, outcome("b")]);
        let rt = RoundTripReport::new(train, deploy);
        assert_round_trip(&rt);
    }

    #[test]
    fn mismatched_round_trip_passes_decode_to_an_error() {
        let doc =
            r#"{"train":{"seed":1,"scenarios":[]},"deploy":{"seed":1,"scenarios":[]},"deltas":[]}"#;
        // Empty catalogs match; now a genuinely mismatched pair.
        assert!(decode_string::<RoundTripReport>(doc).is_ok());
        let train = FleetReport::new(1, vec![outcome("a")]);
        let deploy = FleetReport::new(1, vec![outcome("b")]);
        let forged = format!(
            r#"{{"train":{},"deploy":{},"deltas":[]}}"#,
            encode_string(&train),
            encode_string(&deploy)
        );
        assert!(decode_string::<RoundTripReport>(&forged).is_err());
    }

    #[test]
    fn unknown_labels_are_decode_errors() {
        let mut bytes = encode_string(&outcome("a"));
        bytes = bytes.replace(
            "\"benchmark\":\"Social Network\"",
            "\"benchmark\":\"Mystery\"",
        );
        assert!(decode_string::<ScenarioOutcome>(&bytes).is_err());
    }
}
