//! Deterministic execution of one [`Scenario`].
//!
//! [`run_one`] is the unit of work a fleet worker owns: it builds the
//! simulation from the scenario's plain data and a derived seed, drives
//! the chosen controller tick by tick, and returns the measurements
//! plus whatever experience the controller harvested. Nothing here
//! touches shared state, so the result depends only on
//! `(scenario, seed)` — the property the fleet's bit-identity guarantee
//! rests on.

use firm_core::baselines::{AimdController, K8sHpaController};
use firm_core::experiment::MitigationTracker;
use firm_core::injector::AnomalyInjector;
use firm_core::manager::{ExperienceLog, FirmConfig, FirmManager};
use firm_core::slo::{calibrate_slos, window_violates, SloMonitor};
use firm_sim::spec::ClusterSpec;
use firm_sim::{AnomalyId, Histogram, Simulation};
use firm_trace::TracingCoordinator;

use crate::report::ScenarioOutcome;
use crate::scenario::{FleetController, Scenario};

enum Ctl {
    None,
    Firm(Box<FirmManager>),
    K8s(K8sHpaController),
    Aimd(AimdController, TracingCoordinator),
}

/// Runs one scenario to completion; returns its measurements and the
/// experience log (empty for non-FIRM controllers).
pub fn run_one(scenario: &Scenario, seed: u64) -> (ScenarioOutcome, ExperienceLog) {
    let cluster = ClusterSpec::small(scenario.nodes.max(1));
    let mut app = scenario.benchmark.build();
    if let Some(factor) = scenario.slo_factor {
        calibrate_slos(
            &mut app,
            &cluster,
            scenario.load.mean_rate(),
            factor,
            seed ^ 0x510C_A11B,
        );
    }
    let mut sim = Simulation::builder(cluster, app, seed)
        .arrivals(scenario.load.build())
        .build();
    let app = sim.app().clone();

    let mut ctl = match scenario.controller {
        FleetController::Unmanaged => Ctl::None,
        FleetController::Firm => Ctl::Firm(Box::new(FirmManager::new(FirmConfig {
            control_interval: scenario.control_interval,
            training: true,
            record_experience: true,
            seed: seed ^ 0xF12A,
            ..FirmConfig::default()
        }))),
        FleetController::K8sHpa => Ctl::K8s(K8sHpaController::new(
            scenario.k8s.clone(),
            app.services.len(),
        )),
        FleetController::Aimd => Ctl::Aimd(
            AimdController::new(scenario.aimd.clone()),
            TracingCoordinator::new(100_000),
        ),
    };
    let mut injector = scenario
        .campaign
        .clone()
        .map(|c| AnomalyInjector::new(c, seed ^ 0xF00D));
    let monitor = SloMonitor::default();

    let mut latency = Histogram::new();
    let mut tracker = MitigationTracker::new();
    let mut ticks = 0u64;
    let mut completions = 0u64;
    let mut drops = 0u64;
    let mut slo_violations = 0u64;
    let mut latency_sum_us = 0u128;

    let end = sim.now() + scenario.duration;
    let warm_until = sim.now() + scenario.warmup;

    while sim.now() < end {
        let window_start = sim.now();
        if let Some(inj) = injector.as_mut() {
            inj.tick(&mut sim);
        }
        sim.run_for(scenario.control_interval);
        ticks += 1;
        let measuring = sim.now() > warm_until;

        // Each controller consumes the drains it needs; the window's
        // latencies are recovered from whichever side holds the traces.
        let violating = match &mut ctl {
            Ctl::Firm(mgr) => {
                let assessment = mgr.tick(&mut sim);
                // `traces_since` is inclusive of its bound: a trace that
                // finished exactly at the previous tick boundary was
                // already counted there, so keep only strictly-later
                // ones (nothing can finish at t=0, the first bound).
                for t in mgr
                    .coordinator()
                    .traces_since(window_start)
                    .into_iter()
                    .filter(|t| t.finished > window_start)
                {
                    if t.dropped {
                        if measuring {
                            drops += 1;
                            completions += 1;
                            // A dropped request failed its SLO by
                            // definition; counting it keeps shedding
                            // controllers comparable to slow ones.
                            slo_violations += 1;
                        }
                    } else if measuring {
                        completions += 1;
                        let us = t.latency.as_micros();
                        latency.record(us);
                        latency_sum_us += us as u128;
                        if us > app.request_types[t.request_type.index()].slo_latency_us {
                            slo_violations += 1;
                        }
                    }
                }
                assessment.any_violation()
            }
            other => {
                let completed = sim.drain_completed();
                let telemetry = sim.drain_telemetry();
                let violating = window_violates(&app, &completed, monitor.quantile);
                for r in &completed {
                    if r.dropped {
                        if measuring {
                            drops += 1;
                            completions += 1;
                            slo_violations += 1;
                        }
                    } else if measuring {
                        completions += 1;
                        let us = r.latency.as_micros();
                        latency.record(us);
                        latency_sum_us += us as u128;
                        if us > app.request_types[r.request_type.index()].slo_latency_us {
                            slo_violations += 1;
                        }
                    }
                }
                match other {
                    Ctl::K8s(hpa) => hpa.tick(&mut sim, &telemetry),
                    Ctl::Aimd(aimd, coord) => {
                        coord.ingest(completed);
                        aimd.tick(&mut sim, coord, &telemetry, window_start);
                        coord.evict_before(window_start);
                    }
                    _ => {}
                }
                violating
            }
        };

        let active: Vec<AnomalyId> = sim
            .active_anomalies()
            .iter()
            .filter(|(_, _, at)| *at <= sim.now())
            .map(|(id, _, _)| *id)
            .collect();
        tracker.observe(&active, violating, sim.now(), scenario.control_interval);
    }

    let experience = match &mut ctl {
        Ctl::Firm(mgr) => mgr.drain_experience(),
        _ => ExperienceLog::default(),
    };

    let mitigation_times = tracker.into_times();
    let ok = completions.saturating_sub(drops);
    let outcome = ScenarioOutcome {
        name: scenario.name.clone(),
        benchmark: scenario.benchmark.name(),
        controller: scenario.controller.label(),
        load: scenario.load.label(),
        seed,
        ticks,
        arrivals: sim.stats().arrivals,
        completions,
        drops,
        slo_violations,
        p50_us: latency.p50(),
        p99_us: latency.p99(),
        mean_latency_us: if ok == 0 {
            0.0
        } else {
            latency_sum_us as f64 / ok as f64
        },
        anomalies_injected: injector.map(|i| i.history().len() as u64).unwrap_or(0),
        mitigations: mitigation_times.len() as u64,
        mean_mitigation_secs: if mitigation_times.is_empty() {
            0.0
        } else {
            mitigation_times
                .iter()
                .map(|d| d.as_secs_f64())
                .sum::<f64>()
                / mitigation_times.len() as f64
        },
        transitions: experience.transitions.len() as u64,
        svm_examples: experience.svm_examples.len() as u64,
    };
    (outcome, experience)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin_catalog;
    use firm_sim::SimDuration;

    #[test]
    fn firm_scenario_serves_traffic_and_harvests_experience() {
        let scenario = builtin_catalog()
            .remove(0)
            .with_duration(SimDuration::from_secs(10));
        let (outcome, log) = run_one(&scenario, 42);
        assert!(
            outcome.completions > 200,
            "{} completed",
            outcome.completions
        );
        assert!(outcome.p99_us > 0);
        assert_eq!(outcome.ticks, 10);
        assert_eq!(outcome.transitions as usize, log.transitions.len());
        assert!(!log.svm_examples.is_empty(), "FIRM harvested no labels");
    }

    #[test]
    fn run_one_is_deterministic() {
        let scenario = builtin_catalog()
            .remove(4)
            .with_duration(SimDuration::from_secs(8));
        let (a, _) = run_one(&scenario, 7);
        let (b, _) = run_one(&scenario, 7);
        assert_eq!(a, b);
        let (c, _) = run_one(&scenario, 8);
        assert_ne!(a, c, "different seeds gave identical outcomes");
    }

    #[test]
    fn unmanaged_scenarios_harvest_nothing() {
        let mut scenario = builtin_catalog().remove(4);
        scenario = scenario.with_duration(SimDuration::from_secs(6));
        assert_eq!(scenario.controller, FleetController::Unmanaged);
        let (outcome, log) = run_one(&scenario, 3);
        assert!(log.is_empty());
        assert_eq!(outcome.transitions, 0);
    }
}
