//! Deterministic execution of one [`Scenario`].
//!
//! [`run_one`] is the unit of work a fleet worker owns: it builds the
//! simulation from the scenario's plain data and a derived seed, builds
//! the controller as a `Box<dyn Controller>`, and hands both to the
//! workspace-wide [`run_episode`] driver — there is no fleet-local tick
//! or measurement loop. Nothing here touches shared state, so the
//! result depends only on `(scenario, seed, policy)` — the property the
//! fleet's bit-identity guarantee rests on.
//!
//! [`run_one_with`] additionally accepts a frozen [`PolicyCheckpoint`]:
//! FIRM scenarios then run the shared agent in pure inference mode
//! (no training, no exploration, no experience tap) — the deployment
//! half of [`crate::runner::FleetRunner::run_round_trip`].
//!
//! [`run_one_sharded`] additionally accepts an intra-scenario shard
//! count, fanned into the FIRM manager's ingest/extract stages. It is
//! purely a latency knob: results stay bit-identical at any shard
//! count, so `(scenario, seed, policy)` remains the full determinism
//! domain.

use firm_core::baselines::{AimdController, K8sHpaController};
use firm_core::controller::{run_episode, Controller, EpisodeSpec, PolicyCheckpoint, Unmanaged};
use firm_core::injector::AnomalyInjector;
use firm_core::manager::{ExperienceLog, FirmConfig, FirmManager};
use firm_core::slo::calibrate_slos;
use firm_sim::spec::ClusterSpec;
use firm_sim::Simulation;

use crate::report::ScenarioOutcome;
use crate::scenario::{FleetController, Scenario};

/// Builds the live controller for a scenario. With `policy` set, a FIRM
/// scenario deploys the frozen shared agent (inference mode) instead of
/// training a fresh one. `intra_shards` sets the FIRM manager's
/// intra-scenario stage fan-out; it changes wall-clock time only, never
/// a result byte (the property `tests/fleet_determinism.rs` pins).
fn build_controller(
    scenario: &Scenario,
    seed: u64,
    services: usize,
    policy: Option<&PolicyCheckpoint>,
    intra_shards: usize,
) -> Box<dyn Controller> {
    match scenario.controller {
        FleetController::Unmanaged => Box::new(Unmanaged),
        FleetController::Firm => {
            let deployed = policy.is_some();
            let mut mgr = Box::new(FirmManager::new(FirmConfig {
                control_interval: scenario.control_interval,
                training: !deployed,
                explore: !deployed,
                record_experience: !deployed,
                slo_penalty: scenario.slo_penalty,
                seed: seed ^ 0xF12A,
                intra_shards,
                ..FirmConfig::default()
            }));
            if let Some(p) = policy {
                Controller::import_policy(mgr.as_mut(), p);
            }
            mgr
        }
        FleetController::K8sHpa => Box::new(K8sHpaController::new(scenario.k8s.clone(), services)),
        FleetController::Aimd => Box::new(AimdController::new(scenario.aimd.clone())),
    }
}

/// Runs one scenario to completion; returns its measurements and the
/// experience log (empty for non-FIRM controllers).
pub fn run_one(scenario: &Scenario, seed: u64) -> (ScenarioOutcome, ExperienceLog) {
    run_one_sharded(scenario, seed, None, 1)
}

/// Runs one scenario, optionally deploying a frozen policy into its
/// FIRM controller (the round-trip inference pass).
pub fn run_one_with(
    scenario: &Scenario,
    seed: u64,
    policy: Option<&PolicyCheckpoint>,
) -> (ScenarioOutcome, ExperienceLog) {
    run_one_sharded(scenario, seed, policy, 1)
}

/// [`run_one_with`] plus intra-scenario parallelism: the FIRM manager's
/// ingest and feature-extraction stages fan out over `intra_shards`
/// threads inside each control window. Sharding is a pure speed knob —
/// the outcome and experience are bit-identical at any shard count, so
/// the fleet's determinism contract is untouched.
pub fn run_one_sharded(
    scenario: &Scenario,
    seed: u64,
    policy: Option<&PolicyCheckpoint>,
    intra_shards: usize,
) -> (ScenarioOutcome, ExperienceLog) {
    let wall = std::time::Instant::now();
    let cluster = ClusterSpec::small(scenario.nodes.max(1));
    let mut app = scenario.benchmark.build();
    if scenario.replica_factor > 1 {
        // Scale fan-out before SLO calibration so calibrated targets
        // reflect the topology that actually serves the run.
        firm_workload::builder::scale_replicas(&mut app, scenario.replica_factor);
    }
    if let Some(factor) = scenario.slo_factor {
        calibrate_slos(
            &mut app,
            &cluster,
            scenario.load.mean_rate(),
            factor,
            seed ^ 0x510C_A11B,
        );
    }
    let mut sim = Simulation::builder(cluster, app, seed)
        .arrivals(scenario.load.build())
        .build();
    let services = sim.app().services.len();

    let mut controller = build_controller(scenario, seed, services, policy, intra_shards);
    let mut injector = scenario
        .campaign
        .clone()
        .map(|c| AnomalyInjector::new(c, seed ^ 0xF00D));

    let spec = EpisodeSpec {
        duration: scenario.duration,
        control_interval: scenario.control_interval,
        warmup: scenario.warmup,
    };
    let episode = run_episode(&mut sim, controller.as_mut(), injector.as_mut(), &spec);
    let experience = controller.drain_experience();

    let outcome = ScenarioOutcome {
        name: scenario.name.clone(),
        benchmark: scenario.benchmark.name(),
        controller: controller.name(),
        load: scenario.load.label(),
        seed,
        ticks: episode.ticks,
        arrivals: sim.stats().arrivals,
        completions: episode.completions,
        drops: episode.drops,
        slo_violations: episode.slo_violations,
        p50_us: episode.latency.p50(),
        p99_us: episode.latency.p99(),
        mean_latency_us: episode.mean_latency_us(),
        anomalies_injected: injector.map(|i| i.history().len() as u64).unwrap_or(0),
        mitigations: episode.mitigation_times.len() as u64,
        mean_mitigation_secs: episode.mean_mitigation_secs(),
        transitions: experience.transitions.len() as u64,
        svm_examples: experience.svm_examples.len() as u64,
    };
    // Out-of-band self-metrics only: nothing below reads back into the
    // outcome, so wall time can vary run to run without moving a byte.
    let wall_us = wall.elapsed().as_micros() as u64;
    firm_obs::metrics()
        .histogram("fleet.scenario.wall_us")
        .record(wall_us);
    firm_obs::event(firm_obs::Level::Trace, "fleet-exec")
        .msg("scenario finished")
        .field("scenario", scenario.name.as_str())
        .field("wall_us", wall_us)
        .field("completions", outcome.completions)
        .emit();
    (outcome, experience)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin_catalog;
    use firm_sim::SimDuration;

    #[test]
    fn firm_scenario_serves_traffic_and_harvests_experience() {
        let scenario = builtin_catalog()
            .remove(0)
            .with_duration(SimDuration::from_secs(10));
        let (outcome, log) = run_one(&scenario, 42);
        assert!(
            outcome.completions > 200,
            "{} completed",
            outcome.completions
        );
        assert!(outcome.p99_us > 0);
        assert_eq!(outcome.ticks, 10);
        assert_eq!(outcome.transitions as usize, log.transitions.len());
        assert!(!log.svm_examples.is_empty(), "FIRM harvested no labels");
    }

    #[test]
    fn run_one_is_deterministic() {
        let scenario = builtin_catalog()
            .remove(4)
            .with_duration(SimDuration::from_secs(8));
        let (a, _) = run_one(&scenario, 7);
        let (b, _) = run_one(&scenario, 7);
        assert_eq!(a, b);
        let (c, _) = run_one(&scenario, 8);
        assert_ne!(a, c, "different seeds gave identical outcomes");
    }

    #[test]
    fn unmanaged_scenarios_harvest_nothing() {
        let mut scenario = builtin_catalog().remove(4);
        scenario = scenario.with_duration(SimDuration::from_secs(6));
        assert_eq!(scenario.controller, FleetController::Unmanaged);
        let (outcome, log) = run_one(&scenario, 3);
        assert!(log.is_empty());
        assert_eq!(outcome.transitions, 0);
    }

    #[test]
    fn deployed_firm_runs_inference_without_experience() {
        let scenario = builtin_catalog()
            .remove(0)
            .with_duration(SimDuration::from_secs(8));
        assert_eq!(scenario.controller, FleetController::Firm);
        let (_, log) = run_one(&scenario, 9);
        assert!(!log.is_empty(), "training pass harvested nothing");
        // Deploy a correctly-shaped frozen policy.
        let mgr = FirmManager::new(FirmConfig::default());
        let frozen = Controller::export_policy(&mgr).expect("policy");
        let (deployed, deployed_log) = run_one_with(&scenario, 9, Some(&frozen));
        assert!(
            deployed_log.is_empty(),
            "inference mode recorded experience"
        );
        assert_eq!(deployed.transitions, 0);
        assert_eq!(deployed.svm_examples, 0);
        assert!(deployed.completions > 100);
        // The deploy pass itself is deterministic.
        let (again, _) = run_one_with(&scenario, 9, Some(&frozen));
        assert_eq!(deployed, again);
    }

    #[test]
    fn intra_shards_change_nothing_but_wall_clock() {
        let scenario = builtin_catalog()
            .remove(0)
            .with_duration(SimDuration::from_secs(8));
        assert_eq!(scenario.controller, FleetController::Firm);
        let (outcome_1, log_1) = run_one_sharded(&scenario, 7, None, 1);
        for shards in [2, 4] {
            let (outcome_n, log_n) = run_one_sharded(&scenario, 7, None, shards);
            assert_eq!(outcome_1, outcome_n, "outcome moved at {shards} shards");
            assert_eq!(
                format!("{log_1:?}"),
                format!("{log_n:?}"),
                "experience moved at {shards} shards"
            );
        }
    }

    #[test]
    fn replay_scenarios_run_and_are_deterministic() {
        let catalog = builtin_catalog();
        let replay = catalog
            .iter()
            .find(|s| s.name.contains("replay"))
            .expect("catalog has replay scenarios")
            .clone()
            .with_duration(SimDuration::from_secs(8));
        let (a, _) = run_one(&replay, 5);
        let (b, _) = run_one(&replay, 5);
        assert_eq!(a, b);
        assert!(a.completions > 100, "replay served {}", a.completions);
    }
}
