//! The fleet's runtime self-metrics report — alongside, never inside,
//! the digest-covered [`crate::report::FleetReport`].
//!
//! An [`OpsReport`] answers "how did the run go *operationally*":
//! dispatch latency percentiles, queue depth, heartbeat gaps, retries,
//! reconnects, bytes on the wire, per-scenario wall time. All of it is
//! timing-dependent and varies run to run, which is exactly why it
//! lives in its own structure: the [`crate::report::FleetReport`]
//! digest covers only deterministic measurements, and nothing in this
//! module feeds back into them. The out-of-band invariant is pinned by
//! `tests/obs_determinism.rs` at the workspace root.
//!
//! Worker snapshots arrive as session-end
//! [`crate::protocol::WorkerMessage::Metrics`] frames and are ordered
//! by slot label; metric keys inside each snapshot are sorted — so the
//! report renders in deterministic (worker, key) order no matter when
//! the frames landed.

use firm_obs::MetricsSnapshot;
use firm_wire::{Context, DecodeError, JsonValue, Obj, WireDecode, WireEncode};

/// One worker's session-end metrics, labeled by its slot and transport
/// (`"slot0:pipe:firm-fleet-worker"`, `"slot2:tcp:10.0.0.7:7401"`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerOps {
    /// `slot<N>:<transport label>` — stable across retries, unique per
    /// pool slot.
    pub label: String,
    /// The worker process's cumulative metrics registry at session end.
    pub metrics: MetricsSnapshot,
}

impl WireEncode for WorkerOps {
    fn encode(&self) -> JsonValue {
        Obj::tagged("worker_ops")
            .field("label", self.label.as_str())
            .field("metrics", &self.metrics)
            .build()
    }
}

impl WireDecode for WorkerOps {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        Ok(WorkerOps {
            label: v.field("label")?,
            metrics: v.field("metrics")?,
        })
    }
}

/// Runtime observability for one fleet run: the coordinator's own
/// metrics plus every worker's session-end snapshot, in deterministic
/// (worker, key) order.
///
/// Snapshots are process-cumulative: a process that runs several fleets
/// (tests, a resident server) reports its running totals, not per-run
/// deltas.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpsReport {
    /// The coordinator process's registry (dispatch, supervision, and —
    /// on the in-process thread path — scenario and stage metrics).
    pub coordinator: MetricsSnapshot,
    /// Per-worker snapshots, sorted by label. Empty on the thread path
    /// (no worker processes) and missing any worker that died before
    /// its graceful session end.
    pub workers: Vec<WorkerOps>,
}

impl OpsReport {
    /// Assembles a report, sorting workers into label order.
    pub fn new(coordinator: MetricsSnapshot, mut workers: Vec<WorkerOps>) -> Self {
        workers.sort_by(|a, b| a.label.cmp(&b.label));
        OpsReport {
            coordinator,
            workers,
        }
    }

    /// One fleet-wide view: every worker snapshot folded into the
    /// coordinator's (counters add, histograms merge bucket-wise).
    pub fn merged(&self) -> MetricsSnapshot {
        let mut all = self.coordinator.clone();
        for w in &self.workers {
            all.merge(&w.metrics);
        }
        all
    }

    /// The report as wire JSON (what `--obs-out` files carry).
    pub fn to_json(&self) -> String {
        firm_wire::encode_string(self)
    }
}

impl WireEncode for OpsReport {
    fn encode(&self) -> JsonValue {
        Obj::tagged("ops_report")
            .field("coordinator", &self.coordinator)
            .field(
                "workers",
                JsonValue::Array(self.workers.iter().map(|w| w.encode()).collect()),
            )
            .build()
    }
}

impl WireDecode for OpsReport {
    fn decode(v: &JsonValue) -> Result<Self, DecodeError> {
        if v.tag()? != "ops_report" {
            return Err(DecodeError::new(format!(
                "expected an ops_report frame, found type `{}`",
                v.tag()?
            )));
        }
        let workers_doc: JsonValue = v.field("workers")?;
        let workers = workers_doc
            .as_array()
            .context("workers")?
            .iter()
            .map(WorkerOps::decode)
            .collect::<Result<Vec<_>, _>>()
            .context("workers")?;
        Ok(OpsReport {
            coordinator: v.field("coordinator")?,
            workers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firm_obs::{MetricValue, Registry};

    fn snapshot(prefix: &str, count: u64) -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter(&format!("{prefix}.requests")).add(count);
        reg.histogram(&format!("{prefix}.latency_us"))
            .record(count * 10);
        reg.snapshot()
    }

    #[test]
    fn workers_sort_by_label_and_merge_folds_everything() {
        let report = OpsReport::new(
            snapshot("fleet", 3),
            vec![
                WorkerOps {
                    label: "slot1:pipe:firm-fleet-worker".into(),
                    metrics: snapshot("worker", 2),
                },
                WorkerOps {
                    label: "slot0:pipe:firm-fleet-worker".into(),
                    metrics: snapshot("worker", 5),
                },
            ],
        );
        assert!(report.workers[0].label < report.workers[1].label);
        let merged = report.merged();
        assert_eq!(merged.get("fleet.requests"), Some(&MetricValue::Counter(3)));
        assert_eq!(
            merged.get("worker.requests"),
            Some(&MetricValue::Counter(7)),
            "worker counters did not add"
        );
        let Some(MetricValue::Histogram(h)) = merged.get("worker.latency_us") else {
            panic!("merged histogram missing");
        };
        assert_eq!(h.count, 2);
    }

    #[test]
    fn ops_reports_round_trip_through_the_wire() {
        firm_wire::assert_round_trip(&OpsReport::default());
        firm_wire::assert_round_trip(&OpsReport::new(
            snapshot("fleet", 1),
            vec![WorkerOps {
                label: "slot0:tcp:127.0.0.1:7401".into(),
                metrics: snapshot("worker", 9),
            }],
        ));
    }
}
