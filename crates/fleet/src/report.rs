//! Fleet-level results: per-scenario outcomes and their aggregate.
//!
//! A [`FleetReport`] is plain data built only from deterministic
//! per-scenario measurements, aggregated in catalog order — so for a
//! fixed `(catalog, seed)` it is byte-identical no matter how many
//! worker threads produced it. [`FleetReport::to_json`] renders a
//! stable, hand-rolled JSON document (no external serializers in the
//! image), and [`FleetReport::digest`] folds those bytes through
//! FNV-1a for cheap equality checks in tests and CI.

/// Escapes a string for embedding in a JSON document: quotes,
/// backslashes, and control characters.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic measurements from one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name (unique in the catalog).
    pub name: String,
    /// Benchmark display name.
    pub benchmark: &'static str,
    /// Controller label.
    pub controller: &'static str,
    /// Load-shape label.
    pub load: String,
    /// The derived per-scenario seed.
    pub seed: u64,
    /// Control ticks executed.
    pub ticks: u64,
    /// Client requests generated over the whole run.
    pub arrivals: u64,
    /// Requests finished post-warmup — served *or* dropped (drops are
    /// also reported separately in [`ScenarioOutcome::drops`]).
    pub completions: u64,
    /// Requests dropped post-warmup.
    pub drops: u64,
    /// Requests violating their SLO post-warmup; a dropped request
    /// counts as a violation, so shedding load never flatters
    /// [`ScenarioOutcome::violation_rate`].
    pub slo_violations: u64,
    /// Median end-to-end latency, us (post-warmup, non-dropped).
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency, us.
    pub p99_us: u64,
    /// Mean end-to-end latency, us.
    pub mean_latency_us: f64,
    /// Anomalies injected by the campaign.
    pub anomalies_injected: u64,
    /// Anomalies whose violations the controller mitigated or outlasted.
    pub mitigations: u64,
    /// Mean SLO-mitigation time, seconds (0 when none fired).
    pub mean_mitigation_secs: f64,
    /// RL transitions contributed to the shared trainer.
    pub transitions: u64,
    /// SVM ground-truth examples contributed.
    pub svm_examples: u64,
}

impl ScenarioOutcome {
    /// SLO violation rate among completed requests.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"benchmark\":\"{}\",\"controller\":\"{}\",",
                "\"load\":\"{}\",\"seed\":{},\"ticks\":{},\"arrivals\":{},",
                "\"completions\":{},\"drops\":{},\"slo_violations\":{},",
                "\"violation_rate\":{},\"p50_us\":{},\"p99_us\":{},",
                "\"mean_latency_us\":{},\"anomalies_injected\":{},",
                "\"mitigations\":{},\"mean_mitigation_secs\":{},",
                "\"transitions\":{},\"svm_examples\":{}}}"
            ),
            escape_json(&self.name),
            escape_json(self.benchmark),
            escape_json(self.controller),
            escape_json(&self.load),
            self.seed,
            self.ticks,
            self.arrivals,
            self.completions,
            self.drops,
            self.slo_violations,
            self.violation_rate(),
            self.p50_us,
            self.p99_us,
            self.mean_latency_us,
            self.anomalies_injected,
            self.mitigations,
            self.mean_mitigation_secs,
            self.transitions,
            self.svm_examples,
        )
    }
}

/// Fleet-wide aggregates over the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetTotals {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Requests generated across all simulations.
    pub arrivals: u64,
    /// Requests finished post-warmup (served or dropped).
    pub completions: u64,
    /// Requests dropped post-warmup.
    pub drops: u64,
    /// SLO violations post-warmup (drops included).
    pub slo_violations: u64,
    /// The worst per-scenario p99, us.
    pub worst_p99_us: u64,
    /// Anomalies injected across the fleet.
    pub anomalies_injected: u64,
    /// Mitigation measurements across the fleet.
    pub mitigations: u64,
    /// RL transitions pooled into the shared trainer.
    pub transitions: u64,
    /// SVM examples pooled into the shared trainer.
    pub svm_examples: u64,
}

impl FleetTotals {
    /// Fleet-wide SLO violation rate.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }
}

/// The aggregated result of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The fleet seed the per-scenario seeds were derived from.
    pub seed: u64,
    /// Per-scenario outcomes, in catalog order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Fleet-wide aggregates.
    pub totals: FleetTotals,
}

impl FleetReport {
    /// Builds a report from outcomes already sorted in catalog order.
    pub fn new(seed: u64, scenarios: Vec<ScenarioOutcome>) -> Self {
        let mut totals = FleetTotals {
            scenarios: scenarios.len() as u64,
            ..FleetTotals::default()
        };
        for s in &scenarios {
            totals.arrivals += s.arrivals;
            totals.completions += s.completions;
            totals.drops += s.drops;
            totals.slo_violations += s.slo_violations;
            totals.worst_p99_us = totals.worst_p99_us.max(s.p99_us);
            totals.anomalies_injected += s.anomalies_injected;
            totals.mitigations += s.mitigations;
            totals.transitions += s.transitions;
            totals.svm_examples += s.svm_examples;
        }
        FleetReport {
            seed,
            scenarios,
            totals,
        }
    }

    /// Renders the report as a stable JSON document. Floats use Rust's
    /// shortest round-trip `Display`, so equal values always render to
    /// equal bytes.
    pub fn to_json(&self) -> String {
        let scenarios: Vec<String> = self.scenarios.iter().map(|s| s.to_json()).collect();
        let t = &self.totals;
        format!(
            concat!(
                "{{\"seed\":{},\"totals\":{{\"scenarios\":{},\"arrivals\":{},",
                "\"completions\":{},\"drops\":{},\"slo_violations\":{},",
                "\"violation_rate\":{},\"worst_p99_us\":{},",
                "\"anomalies_injected\":{},\"mitigations\":{},",
                "\"transitions\":{},\"svm_examples\":{}}},",
                "\"scenarios\":[{}]}}"
            ),
            self.seed,
            t.scenarios,
            t.arrivals,
            t.completions,
            t.drops,
            t.slo_violations,
            t.violation_rate(),
            t.worst_p99_us,
            t.anomalies_injected,
            t.mitigations,
            t.transitions,
            t.svm_examples,
            scenarios.join(","),
        )
    }

    /// FNV-1a 64 over the JSON bytes — a cheap fingerprint for the
    /// bit-identity guarantee.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.to_json().as_bytes() {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, completions: u64, p99: u64) -> ScenarioOutcome {
        ScenarioOutcome {
            name: name.into(),
            benchmark: "Social Network",
            controller: "FIRM",
            load: "steady@100".into(),
            seed: 7,
            ticks: 30,
            arrivals: completions + 10,
            completions,
            drops: 1,
            slo_violations: completions / 10,
            p50_us: p99 / 3,
            p99_us: p99,
            mean_latency_us: p99 as f64 / 2.5,
            anomalies_injected: 4,
            mitigations: 3,
            mean_mitigation_secs: 2.5,
            transitions: 20,
            svm_examples: 200,
        }
    }

    #[test]
    fn totals_aggregate_in_order() {
        let r = FleetReport::new(1, vec![outcome("a", 100, 5_000), outcome("b", 50, 9_000)]);
        assert_eq!(r.totals.scenarios, 2);
        assert_eq!(r.totals.completions, 150);
        assert_eq!(r.totals.worst_p99_us, 9_000);
        assert_eq!(r.totals.transitions, 40);
        assert!((r.totals.violation_rate() - 15.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut o = outcome("has \"quotes\" and \\slash\\", 10, 1_000);
        o.load = "tab\there".into();
        let r = FleetReport::new(1, vec![o]);
        let json = r.to_json();
        assert!(json.contains(r#"has \"quotes\" and \\slash\\"#));
        assert!(json.contains(r"tab\there"));
        // Still balanced after escaping.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_is_stable_and_digest_detects_change() {
        let a = FleetReport::new(1, vec![outcome("a", 100, 5_000)]);
        let b = FleetReport::new(1, vec![outcome("a", 100, 5_000)]);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
        let c = FleetReport::new(1, vec![outcome("a", 101, 5_000)]);
        assert_ne!(a.digest(), c.digest());
        // Sanity: the document parses as JSON-ish (balanced braces).
        let json = a.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
