//! Fleet-level results: per-scenario outcomes and their aggregate.
//!
//! A [`FleetReport`] is plain data built only from deterministic
//! per-scenario measurements, aggregated in catalog order — so for a
//! fixed `(catalog, seed)` it is byte-identical no matter how many
//! worker threads (or subprocess workers) produced it. Serialization
//! lives in [`crate::wire`]: every type here implements the symmetric
//! `WireEncode`/`WireDecode` pair, [`FleetReport::to_json`] is a thin
//! wrapper over the encoder, and [`FleetReport::digest`] folds the
//! rendered bytes through FNV-1a for cheap equality checks in tests
//! and CI.

use firm_wire::{encode_string, WireEncode};

/// Deterministic measurements from one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name (unique in the catalog).
    pub name: String,
    /// Benchmark display name.
    pub benchmark: &'static str,
    /// Controller label.
    pub controller: &'static str,
    /// Load-shape label.
    pub load: String,
    /// The derived per-scenario seed.
    pub seed: u64,
    /// Control ticks executed.
    pub ticks: u64,
    /// Client requests generated over the whole run.
    pub arrivals: u64,
    /// Requests finished post-warmup — served *or* dropped (drops are
    /// also reported separately in [`ScenarioOutcome::drops`]).
    pub completions: u64,
    /// Requests dropped post-warmup.
    pub drops: u64,
    /// Requests violating their SLO post-warmup; a dropped request
    /// counts as a violation, so shedding load never flatters
    /// [`ScenarioOutcome::violation_rate`].
    pub slo_violations: u64,
    /// Median end-to-end latency, us (post-warmup, non-dropped).
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency, us.
    pub p99_us: u64,
    /// Mean end-to-end latency, us.
    pub mean_latency_us: f64,
    /// Anomalies injected by the campaign.
    pub anomalies_injected: u64,
    /// Anomalies whose violations the controller mitigated or outlasted.
    pub mitigations: u64,
    /// Mean SLO-mitigation time, seconds (0 when none fired).
    pub mean_mitigation_secs: f64,
    /// RL transitions contributed to the shared trainer.
    pub transitions: u64,
    /// SVM ground-truth examples contributed.
    pub svm_examples: u64,
}

impl ScenarioOutcome {
    /// SLO violation rate among completed requests.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }

    /// Renders the outcome as a stable JSON document (see
    /// [`crate::wire`]).
    pub fn to_json(&self) -> String {
        encode_string(self)
    }
}

/// Fleet-wide aggregates over the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetTotals {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Requests generated across all simulations.
    pub arrivals: u64,
    /// Requests finished post-warmup (served or dropped).
    pub completions: u64,
    /// Requests dropped post-warmup.
    pub drops: u64,
    /// SLO violations post-warmup (drops included).
    pub slo_violations: u64,
    /// The worst per-scenario p99, us.
    pub worst_p99_us: u64,
    /// Anomalies injected across the fleet.
    pub anomalies_injected: u64,
    /// Mitigation measurements across the fleet.
    pub mitigations: u64,
    /// RL transitions pooled into the shared trainer.
    pub transitions: u64,
    /// SVM examples pooled into the shared trainer.
    pub svm_examples: u64,
}

impl FleetTotals {
    /// Fleet-wide SLO violation rate.
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completions as f64
        }
    }
}

/// The aggregated result of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The fleet seed the per-scenario seeds were derived from.
    pub seed: u64,
    /// Per-scenario outcomes, in catalog order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Fleet-wide aggregates.
    pub totals: FleetTotals,
}

impl FleetReport {
    /// Builds a report from outcomes already sorted in catalog order.
    pub fn new(seed: u64, scenarios: Vec<ScenarioOutcome>) -> Self {
        let mut totals = FleetTotals {
            scenarios: scenarios.len() as u64,
            ..FleetTotals::default()
        };
        for s in &scenarios {
            totals.arrivals += s.arrivals;
            totals.completions += s.completions;
            totals.drops += s.drops;
            totals.slo_violations += s.slo_violations;
            totals.worst_p99_us = totals.worst_p99_us.max(s.p99_us);
            totals.anomalies_injected += s.anomalies_injected;
            totals.mitigations += s.mitigations;
            totals.transitions += s.transitions;
            totals.svm_examples += s.svm_examples;
        }
        FleetReport {
            seed,
            scenarios,
            totals,
        }
    }

    /// Renders the report as a stable JSON document. Floats use Rust's
    /// shortest round-trip `Display`, so equal values always render to
    /// equal bytes — and `firm_wire::decode_string::<FleetReport>` is
    /// its exact inverse.
    pub fn to_json(&self) -> String {
        encode_string(self)
    }

    /// FNV-1a 64 over the JSON bytes, folded as the encoder renders —
    /// the digest never materializes the JSON text (equal to
    /// `fnv64(self.to_json().as_bytes())` by construction).
    pub fn digest(&self) -> u64 {
        self.encode().render_fnv64()
    }
}

/// One scenario's train-vs-deploy comparison: how the catalog entry
/// fared while the shared agent was still learning versus after the
/// frozen agent was deployed back onto it (Fig. 11b at fleet scale).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDelta {
    /// Scenario name (unique in the catalog).
    pub name: String,
    /// Controller label (deltas are most meaningful for "FIRM" rows;
    /// baseline rows double as a no-change control).
    pub controller: &'static str,
    /// SLO violation rate during the training pass.
    pub train_violation_rate: f64,
    /// SLO violation rate with the frozen policy deployed.
    pub deploy_violation_rate: f64,
    /// p99 end-to-end latency during training, us.
    pub train_p99_us: u64,
    /// p99 end-to-end latency deployed, us.
    pub deploy_p99_us: u64,
    /// Mean SLO-mitigation time during training, seconds.
    pub train_mean_mitigation_secs: f64,
    /// Mean SLO-mitigation time deployed, seconds.
    pub deploy_mean_mitigation_secs: f64,
}

impl ScenarioDelta {
    /// Positive when deployment lowered the violation rate.
    pub fn violation_rate_improvement(&self) -> f64 {
        self.train_violation_rate - self.deploy_violation_rate
    }

    /// Renders the delta as a stable JSON document (see
    /// [`crate::wire`]).
    pub fn to_json(&self) -> String {
        encode_string(self)
    }
}

/// The result of a round-trip fleet run: the training-pass report, the
/// deployment-pass report (same catalog, same seeds, frozen shared
/// agent), and the per-scenario deltas between them.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTripReport {
    /// The training pass.
    pub train: FleetReport,
    /// The deployment (inference) pass.
    pub deploy: FleetReport,
    /// Per-scenario train-vs-deploy deltas, in catalog order.
    pub deltas: Vec<ScenarioDelta>,
}

impl RoundTripReport {
    /// Pairs two passes over the same catalog.
    ///
    /// # Panics
    ///
    /// Panics if the reports cover different catalogs (length or
    /// scenario-name mismatch).
    pub fn new(train: FleetReport, deploy: FleetReport) -> Self {
        assert_eq!(
            train.scenarios.len(),
            deploy.scenarios.len(),
            "train and deploy passes covered different catalogs"
        );
        let deltas = train
            .scenarios
            .iter()
            .zip(&deploy.scenarios)
            .map(|(t, d)| {
                assert_eq!(t.name, d.name, "catalog order diverged");
                ScenarioDelta {
                    name: t.name.clone(),
                    controller: t.controller,
                    train_violation_rate: t.violation_rate(),
                    deploy_violation_rate: d.violation_rate(),
                    train_p99_us: t.p99_us,
                    deploy_p99_us: d.p99_us,
                    train_mean_mitigation_secs: t.mean_mitigation_secs,
                    deploy_mean_mitigation_secs: d.mean_mitigation_secs,
                }
            })
            .collect();
        RoundTripReport {
            train,
            deploy,
            deltas,
        }
    }

    /// Renders the full round trip as one stable JSON document, the
    /// exact inverse of `firm_wire::decode_string::<RoundTripReport>`.
    pub fn to_json(&self) -> String {
        encode_string(self)
    }

    /// FNV-1a 64 over the JSON bytes, streamed (see
    /// [`FleetReport::digest`]).
    pub fn digest(&self) -> u64 {
        self.encode().render_fnv64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, completions: u64, p99: u64) -> ScenarioOutcome {
        ScenarioOutcome {
            name: name.into(),
            benchmark: "Social Network",
            controller: "FIRM",
            load: "steady@100".into(),
            seed: 7,
            ticks: 30,
            arrivals: completions + 10,
            completions,
            drops: 1,
            slo_violations: completions / 10,
            p50_us: p99 / 3,
            p99_us: p99,
            mean_latency_us: p99 as f64 / 2.5,
            anomalies_injected: 4,
            mitigations: 3,
            mean_mitigation_secs: 2.5,
            transitions: 20,
            svm_examples: 200,
        }
    }

    #[test]
    fn totals_aggregate_in_order() {
        let r = FleetReport::new(1, vec![outcome("a", 100, 5_000), outcome("b", 50, 9_000)]);
        assert_eq!(r.totals.scenarios, 2);
        assert_eq!(r.totals.completions, 150);
        assert_eq!(r.totals.worst_p99_us, 9_000);
        assert_eq!(r.totals.transitions, 40);
        assert!((r.totals.violation_rate() - 15.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut o = outcome("has \"quotes\" and \\slash\\", 10, 1_000);
        o.load = "tab\there".into();
        let r = FleetReport::new(1, vec![o]);
        let json = r.to_json();
        assert!(json.contains(r#"has \"quotes\" and \\slash\\"#));
        assert!(json.contains(r"tab\there"));
        // Still balanced after escaping.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn hostile_scenario_names_survive_the_wire_round_trip() {
        // Quotes, backslashes, every class of control character, and
        // non-ASCII text: decode(encode(x)) == x via the wire codec.
        let hostile = "q\"uote \\slash\\ new\nline cr\r tab\t bell\u{7} nul\u{0} esc\u{1b} end";
        let mut o = outcome(hostile, 10, 1_000);
        o.load = "load\"with\\evil\u{2}chars \u{65e5}\u{1f600}".into();
        let r = FleetReport::new(1, vec![o]);
        let json = r.to_json();

        // The document stays structurally sound...
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains('\n'), "raw control character leaked");
        assert!(!json.contains('\u{7}'), "raw control character leaked");

        // ...and decodes back to the original report, field for field.
        let back: FleetReport = firm_wire::decode_string(&json).expect("report parses");
        assert_eq!(back, r);
        assert_eq!(back.scenarios[0].name, hostile);
    }

    #[test]
    fn round_trip_report_pairs_scenarios_and_renders() {
        let train = FleetReport::new(1, vec![outcome("a", 100, 9_000), outcome("b", 50, 5_000)]);
        let mut better = outcome("a", 100, 6_000);
        better.slo_violations = 2;
        let deploy = FleetReport::new(1, vec![better, outcome("b", 50, 5_000)]);
        let rt = RoundTripReport::new(train, deploy);
        assert_eq!(rt.deltas.len(), 2);
        let a = &rt.deltas[0];
        assert_eq!(a.name, "a");
        assert!(a.violation_rate_improvement() > 0.0);
        assert_eq!(a.train_p99_us, 9_000);
        assert_eq!(a.deploy_p99_us, 6_000);
        let json = rt.to_json();
        assert!(json.contains("\"deltas\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(rt.digest(), rt.clone().digest());
    }

    #[test]
    #[should_panic(expected = "different catalogs")]
    fn round_trip_report_rejects_mismatched_catalogs() {
        let train = FleetReport::new(1, vec![outcome("a", 100, 9_000)]);
        let deploy = FleetReport::new(1, vec![]);
        RoundTripReport::new(train, deploy);
    }

    /// The streamed digest must stay interchangeable with hashing the
    /// rendered document — this is what keeps historical pinned digests
    /// (e.g. the seed-7 catalog golden) valid across the change.
    #[test]
    fn streamed_digest_matches_hash_of_rendered_json() {
        let mut hostile = outcome("na\"me\\ with \n controls \u{3}", 10, 1_000);
        hostile.load = "l\u{1b}oad \u{65e5}".into();
        let r = FleetReport::new(9, vec![outcome("a", 100, 5_000), hostile]);
        assert_eq!(r.digest(), firm_wire::fnv64(r.to_json().as_bytes()));
        let rt = RoundTripReport::new(r.clone(), r.clone());
        assert_eq!(rt.digest(), firm_wire::fnv64(rt.to_json().as_bytes()));
    }

    #[test]
    fn json_is_stable_and_digest_detects_change() {
        let a = FleetReport::new(1, vec![outcome("a", 100, 5_000)]);
        let b = FleetReport::new(1, vec![outcome("a", 100, 5_000)]);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
        let c = FleetReport::new(1, vec![outcome("a", 101, 5_000)]);
        assert_ne!(a.digest(), c.digest());
        // Sanity: the document parses as JSON-ish (balanced braces).
        let json = a.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
