//! Scale-factor catalog generation: a seeded sampler over the
//! topology × load-shape × anomaly-campaign × controller cross product.
//!
//! The hand-written [`crate::builtin_catalog`] is 12 scenarios with
//! unit-test-sized replica counts. [`generate_catalog`] replaces
//! hand-enumeration with a sampler driven by two numbers: a catalog
//! seed and a `scale_factor` (`sf`) knob in the spirit of the
//! clickgraph benchmark tables (`users = sf × 1000`). One knob jointly
//! scales:
//!
//! - **tenant count** — `base_tenants + tenants_per_decade·⌊log₁₀ sf⌋`
//!   scenarios per catalog;
//! - **arrival rates** — every tenant's rate axis is multiplied by
//!   `√sf` (via [`firm_workload::LoadShape::scaled`]);
//! - **replica fan-out** — every service's initial replicas are
//!   multiplied by `√sf` (via [`firm_workload::scale_replicas`]), so
//!   offered load and serving capacity grow together;
//! - **cluster size** — each tenant's node count gets a `√sf − 1`
//!   bonus.
//!
//! # Determinism
//!
//! A generated catalog is a **pure function of `(seed, sf)`**: every
//! random draw for tenant `i` comes from a private
//! `Xoshiro256::new(mix64(seed, i))` stream, with a fixed draw order
//! and no ambient state (no clock, no environment, no global RNG).
//! Generated scenarios are plain data like hand-written ones, so they
//! inherit every standing fleet invariant — bit-identical reports,
//! pooled experience, and trained weights at any thread count, worker
//! count, transport, `intra_shards`, and under chaos
//! (`tests/scale_determinism.rs` pins this).
//!
//! Per-tenant draws deliberately never consult `sf`: only the tenant
//! *count* and the monotone multipliers (`√sf` rate/replica factors,
//! node bonus) depend on it. That makes population, rate, and tenant
//! totals structurally monotone nondecreasing in `sf` — tenant `i`
//! keeps its identity as the catalog grows around it.
//!
//! # Harsh tenants
//!
//! Every fifth tenant (including tenant 0, which is always FIRM) runs
//! a deliberately harsh configuration: a correlated all-stressor
//! campaign at near-maximal intensity, a tight 1.05× SLO, and the
//! SLO-penalized reward ([`firm_core::estimator::reward_penalized`]).
//! These produce genuinely negative rewards in pooled experience, so
//! severity-prioritized replay has real signal to weight — the legacy
//! catalog's reward is non-negative by construction.

use firm_rng::{mix64, Xoshiro256};
use firm_sim::{AnomalyKind, SimDuration};
use firm_workload::apps::{Benchmark, ALL_BENCHMARKS};
use firm_workload::LoadShape;

use firm_core::injector::CampaignConfig;

use crate::scenario::{FleetController, Scenario};

/// ⌊log₁₀ n⌋ for n ≥ 1 (0 for n ∈ 1..=9, 1 for 10..=99, …).
fn decade(n: u64) -> u64 {
    let mut n = n.max(1);
    let mut d = 0;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Integer square root: the largest `r` with `r·r ≤ n`.
fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    // Float sqrt as a guess, corrected with overflow-checked integer
    // steps (an overflowing square is by definition > n).
    let mut r = (n as f64).sqrt() as u64;
    while r.checked_mul(r).is_none_or(|sq| sq > n) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= n) {
        r += 1;
    }
    r
}

/// The recipe for a generated catalog: a seed, the `scale_factor`
/// knob, and the (rarely overridden) structural defaults.
///
/// Two specs with equal fields generate byte-identical catalogs; there
/// is no other input.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSpec {
    /// Catalog seed: the root of every per-tenant sampler stream.
    pub seed: u64,
    /// The scale knob (≥ 1). `users = scale_factor × 1000` in the
    /// clickgraph-table spirit: sf=1 is a dev-smoke catalog, sf=100 a
    /// hundred-fold-busier fleet.
    pub scale_factor: u64,
    /// Tenants at sf=1.
    pub base_tenants: usize,
    /// Extra tenants per decade of `scale_factor`.
    pub tenants_per_decade: usize,
    /// Mean per-tenant arrival rate at sf=1 before jitter, req/s.
    pub base_rate: f64,
    /// Simulated duration per scenario.
    pub duration: SimDuration,
    /// Control-loop period.
    pub control_interval: SimDuration,
    /// Measurement warmup.
    pub warmup: SimDuration,
}

impl CatalogSpec {
    /// A spec with the catalog defaults: 8 base tenants plus 4 per
    /// decade, ~30 req/s per tenant at sf=1, 8 s scenarios with a 1 s
    /// control interval and 2 s warmup.
    pub fn new(seed: u64, scale_factor: u64) -> Self {
        CatalogSpec {
            seed,
            scale_factor: scale_factor.max(1),
            base_tenants: 8,
            tenants_per_decade: 4,
            base_rate: 30.0,
            duration: SimDuration::from_secs(8),
            control_interval: SimDuration::from_secs(1),
            warmup: SimDuration::from_secs(2),
        }
    }

    /// The simulated user population this catalog stands for
    /// (`sf × 1000`, the clickgraph convention). Reporting metadata
    /// only — the load the simulator sees is the rate axis.
    pub fn users(&self) -> u64 {
        self.scale_factor.saturating_mul(1000)
    }

    /// Number of tenants (scenarios) in the generated catalog:
    /// monotone nondecreasing in `scale_factor`.
    pub fn tenants(&self) -> usize {
        self.base_tenants + self.tenants_per_decade * decade(self.scale_factor) as usize
    }

    /// The multiplier applied to every tenant's arrival-rate axis:
    /// `√sf`, so offered load tracks the replica fan-out below.
    pub fn rate_factor(&self) -> f64 {
        isqrt(self.scale_factor) as f64
    }

    /// The multiplier applied to every service's initial replica
    /// count: `√sf`.
    pub fn replica_factor(&self) -> u32 {
        isqrt(self.scale_factor).min(u32::MAX as u64) as u32
    }
}

/// The correlated multi-resource squeeze harsh tenants run: all five
/// stressors, near-maximal intensity, triple the default event rate,
/// long events.
fn harsh_campaign() -> CampaignConfig {
    CampaignConfig {
        lambda: 1.0,
        kinds: vec![
            AnomalyKind::CpuStress,
            AnomalyKind::LlcStress,
            AnomalyKind::MemBwStress,
            AnomalyKind::IoStress,
            AnomalyKind::NetBwStress,
        ],
        intensity: (0.85, 1.0),
        duration: (SimDuration::from_secs(4), SimDuration::from_secs(10)),
        ..CampaignConfig::default()
    }
}

/// Short report-name slug for a benchmark.
fn bench_slug(b: Benchmark) -> &'static str {
    match b {
        Benchmark::SocialNetwork => "social",
        Benchmark::MediaService => "media",
        Benchmark::HotelReservation => "hotel",
        Benchmark::TrainTicket => "train",
    }
}

/// Samples tenant `i` of the catalog. Every draw comes from the
/// tenant's private stream `mix64(spec.seed, i)` in a fixed order, and
/// none of the draws consults `scale_factor` — only the monotone
/// multipliers do (see the module docs for why).
fn sample_tenant(spec: &CatalogSpec, i: usize) -> Scenario {
    let mut rng = Xoshiro256::new(mix64(spec.seed, i as u64));

    // Draw 1: benchmark topology.
    let benchmark = ALL_BENCHMARKS[rng.next_below(ALL_BENCHMARKS.len() as u64) as usize];

    // Draw 2: controller. The first four tenants are pinned to the
    // four controllers (all-four coverage at any sf ≥ 1, since
    // base_tenants ≥ 4); later tenants draw FIRM-weighted so pooled
    // experience dominates the catalog.
    let controller = match i {
        0 => FleetController::Firm,
        1 => FleetController::K8sHpa,
        2 => FleetController::Aimd,
        3 => FleetController::Unmanaged,
        _ => match rng.next_below(8) {
            0..=4 => FleetController::Firm,
            5 => FleetController::K8sHpa,
            6 => FleetController::Aimd,
            _ => FleetController::Unmanaged,
        },
    };

    // Draws 3+: load shape. The base rate carries ±30% jitter; shape
    // parameters are relative, so `scaled` lifts the whole curve.
    let jitter = 0.7 + 0.6 * rng.next_f64();
    let base = spec.base_rate * jitter;
    let shape = match rng.next_below(3) {
        0 => LoadShape::Steady { rate: base },
        1 => LoadShape::Diurnal {
            base,
            amplitude: 0.25 + 0.35 * rng.next_f64(),
            period_secs: 30 + rng.next_below(31),
        },
        _ => LoadShape::FlashCrowd {
            base,
            multiplier: 2.0 + 2.0 * rng.next_f64(),
            every_secs: 15 + rng.next_below(16),
            crest_secs: 3 + rng.next_below(4),
        },
    };
    let load = shape.scaled(spec.rate_factor());

    // Draw: cluster size — 3..=5 nodes plus the scale bonus.
    let nodes = (3 + rng.next_below(3)) as usize + (spec.replica_factor() as usize - 1);

    // Draws: anomaly campaign. Every fifth tenant (tenant 0 included,
    // and tenant 0 is always FIRM) is harsh: correlated all-stressor
    // squeeze, tight SLO, penalized reward.
    let harsh = i.is_multiple_of(5);
    let (campaign, slo_factor) = if harsh {
        (Some(harsh_campaign()), Some(1.05))
    } else {
        let campaign = match rng.next_below(4) {
            0 => None,
            1 => Some(CampaignConfig::stressors_only()),
            2 => {
                // A correlated pair of anomaly kinds.
                let kinds = firm_sim::anomaly::ANOMALY_KINDS;
                let a = kinds[rng.next_below(kinds.len() as u64) as usize];
                let b = kinds[rng.next_below(kinds.len() as u64) as usize];
                let mut pair = vec![a];
                if b != a {
                    pair.push(b);
                }
                Some(CampaignConfig {
                    kinds: pair,
                    ..CampaignConfig::default()
                })
            }
            _ => Some(CampaignConfig::default()),
        };
        (campaign, Some(1.4))
    };

    let shape_slug = match &load {
        LoadShape::Steady { .. } => "steady",
        LoadShape::Diurnal { .. } => "diurnal",
        LoadShape::FlashCrowd { .. } => "flash",
        LoadShape::Replay { .. } => "replay",
    };
    let name = format!(
        "sf{}-t{:03}-{}-{}-{}{}",
        spec.scale_factor,
        i,
        bench_slug(benchmark),
        shape_slug,
        controller.label().to_ascii_lowercase(),
        if harsh { "-harsh" } else { "" },
    );

    let mut scenario = Scenario::new(name, benchmark, nodes, load, campaign, controller);
    scenario.duration = spec.duration;
    scenario.control_interval = spec.control_interval;
    scenario.warmup = spec.warmup;
    scenario.slo_factor = slo_factor;
    scenario.replica_factor = spec.replica_factor();
    // Generated catalogs uniformly use the penalized reward, so one
    // pooled log never mixes two reward scales.
    scenario.slo_penalty = true;
    scenario
}

/// Generates the catalog `spec` describes: [`CatalogSpec::tenants`]
/// scenarios, sampled as a pure function of `(spec.seed,
/// spec.scale_factor)` and the structural defaults.
pub fn generate_catalog(spec: &CatalogSpec) -> Vec<Scenario> {
    (0..spec.tenants())
        .map(|i| sample_tenant(spec, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decade_and_isqrt_are_exact() {
        assert_eq!(decade(1), 0);
        assert_eq!(decade(9), 0);
        assert_eq!(decade(10), 1);
        assert_eq!(decade(99), 1);
        assert_eq!(decade(100), 2);
        assert_eq!(decade(10_000), 4);
        for n in 0..1_000u64 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn generation_is_a_pure_function_of_seed_and_sf() {
        let a = generate_catalog(&CatalogSpec::new(7, 10));
        let b = generate_catalog(&CatalogSpec::new(7, 10));
        assert_eq!(a, b);
        let c = generate_catalog(&CatalogSpec::new(8, 10));
        assert_ne!(a, c, "different seeds generated identical catalogs");
    }

    #[test]
    fn scale_factor_drives_tenants_rates_and_replicas() {
        let sf1 = CatalogSpec::new(7, 1);
        let sf100 = CatalogSpec::new(7, 100);
        assert_eq!(sf1.tenants(), 8);
        assert_eq!(sf100.tenants(), 16);
        assert_eq!(sf1.replica_factor(), 1);
        assert_eq!(sf100.replica_factor(), 10);
        assert_eq!(sf1.users(), 1_000);
        assert_eq!(sf100.users(), 100_000);
        let rate = |spec: &CatalogSpec| -> f64 {
            generate_catalog(spec)
                .iter()
                .map(|s| s.load.mean_rate())
                .sum()
        };
        assert!(rate(&sf100) > 10.0 * rate(&sf1));
    }

    #[test]
    fn every_fifth_tenant_is_harsh_and_tenant_zero_is_firm() {
        let catalog = generate_catalog(&CatalogSpec::new(7, 1));
        assert_eq!(catalog[0].controller, FleetController::Firm);
        for (i, s) in catalog.iter().enumerate() {
            assert!(s.slo_penalty, "generated tenant {i} lacks slo_penalty");
            if i.is_multiple_of(5) {
                assert!(
                    s.name.ends_with("-harsh"),
                    "tenant {i} not harsh: {}",
                    s.name
                );
                assert_eq!(s.slo_factor, Some(1.05));
                let c = s.campaign.as_ref().expect("harsh tenant has a campaign");
                assert_eq!(c.kinds.len(), 5, "harsh campaign is not all-stressor");
                assert!(c.intensity.0 >= 0.85);
                assert!(c.lambda >= 1.0);
            }
        }
    }

    /// Golden vectors for the sampler, mirroring the `scenario_seed`
    /// golden test: pinned (seed, sf, index) → (name, nodes,
    /// controller, load label, campaign kinds) tuples. If any of these
    /// move, the sampler's draw order changed and every pinned
    /// generated-catalog digest moves with it — bump deliberately.
    #[test]
    fn sampler_matches_golden_vectors() {
        // (seed, sf, index, name, nodes, controller, load label, campaign kinds)
        type Golden = (
            u64,
            u64,
            usize,
            &'static str,
            usize,
            &'static str,
            &'static str,
            usize,
        );
        let golden: [Golden; 10] = [
            (
                7,
                1,
                0,
                "sf1-t000-train-diurnal-firm-harsh",
                4,
                "FIRM",
                "diurnal@33\u{b1}51%",
                5,
            ),
            (
                7,
                1,
                1,
                "sf1-t001-media-steady-k8s",
                5,
                "K8S",
                "steady@37",
                2,
            ),
            (
                7,
                1,
                2,
                "sf1-t002-hotel-diurnal-aimd",
                3,
                "AIMD",
                "diurnal@38\u{b1}33%",
                5,
            ),
            (
                7,
                1,
                3,
                "sf1-t003-hotel-diurnal-none",
                4,
                "none",
                "diurnal@26\u{b1}56%",
                0,
            ),
            (
                7,
                1,
                7,
                "sf1-t007-social-diurnal-aimd",
                3,
                "AIMD",
                "diurnal@26\u{b1}47%",
                0,
            ),
            (
                7,
                10,
                0,
                "sf10-t000-train-diurnal-firm-harsh",
                6,
                "FIRM",
                "diurnal@100\u{b1}51%",
                5,
            ),
            (
                7,
                10,
                10,
                "sf10-t010-hotel-flash-aimd-harsh",
                5,
                "AIMD",
                "flash@106x3",
                5,
            ),
            (
                7,
                100,
                15,
                "sf100-t015-train-diurnal-firm-harsh",
                14,
                "FIRM",
                "diurnal@375\u{b1}44%",
                5,
            ),
            (
                11,
                1,
                0,
                "sf1-t000-media-flash-firm-harsh",
                5,
                "FIRM",
                "flash@23x2",
                5,
            ),
            (
                11,
                100,
                15,
                "sf100-t015-social-flash-firm-harsh",
                13,
                "FIRM",
                "flash@235x2",
                5,
            ),
        ];
        for (seed, sf, idx, name, nodes, ctl, load, kinds) in golden {
            let catalog = generate_catalog(&CatalogSpec::new(seed, sf));
            let s = &catalog[idx];
            let got_kinds = s.campaign.as_ref().map_or(0, |c| c.kinds.len());
            assert_eq!(
                (
                    s.name.as_str(),
                    s.nodes,
                    s.controller.label(),
                    s.load.label().as_str(),
                    got_kinds
                ),
                (name, nodes, ctl, load, kinds),
                "sampler drifted at (seed {seed}, sf {sf}, index {idx})"
            );
        }
    }
}
