//! The worker side of the fleet protocol: one serve loop, two front
//! ends.
//!
//! [`serve_session`] is the entire worker: write a [`WorkerHello`],
//! start a heartbeat ticker, then `decode → run_one_sharded → encode`
//! each [`WorkerRequest`] until the input stream ends. The
//! `firm-fleet-worker` binary wraps it twice:
//!
//! * **stdio mode** (default) — one session over stdin/stdout, spawned
//!   and owned by a coordinator's [`crate::transport::PipeTransport`];
//! * **TCP mode** (`--listen addr`) — a [`listen`] accept loop serving
//!   one session per connection, each on its own thread, so a wedged or
//!   abandoned session never blocks the next coordinator from
//!   connecting.
//!
//! The worker is deliberately dumb: no seed derivation, no ordering, no
//! training, no retries. All of that stays at the coordinator, which is
//! what lets the multi-node fleet stay bit-identical to the in-process
//! one — a worker can only compute `run_one_sharded(scenario, seed,
//! policy, intra_shards)`, and that function's results are a pure
//! function of the frame's first three fields (the shard count moves
//! wall-clock time only).

use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use firm_obs::Level;

use crate::exec::run_one_sharded;
use crate::protocol::{
    WorkerHeartbeat, WorkerHello, WorkerMessage, WorkerRequest, WorkerResponse, PROTOCOL_VERSION,
};

/// Event target for everything the worker side emits.
const TARGET: &str = "firm-fleet-worker";

/// Knobs for one worker session.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Interval between heartbeat frames in milliseconds; 0 disables
    /// heartbeats (the supervisor then relies on the per-request
    /// timeout alone).
    pub heartbeat_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { heartbeat_ms: 200 }
    }
}

/// Why a session ended abnormally.
#[derive(Debug)]
pub enum ServeError {
    /// A frame failed to parse or decode — a coordinator bug or
    /// version skew; the session cannot safely continue.
    BadFrame(String),
    /// The byte stream itself failed (peer vanished mid-frame).
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadFrame(msg) => write!(f, "bad request frame: {msg}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serves one coordinator session: handshake, heartbeats, then one
/// [`WorkerResponse`] per [`WorkerRequest`] until EOF.
///
/// The writer is shared between the job loop and the heartbeat ticker
/// behind a mutex; both always write whole newline-terminated frames,
/// so the output stream is a valid frame sequence under any
/// interleaving. Control frames carry no results, so that interleaving
/// is invisible in the fleet report.
pub fn serve_session<R, W>(reader: R, writer: W, opts: &ServeOptions) -> Result<(), ServeError>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    firm_obs::metrics().counter("worker.sessions.total").inc();
    firm_obs::event(Level::Debug, TARGET)
        .msg("session started")
        .field("heartbeat_ms", opts.heartbeat_ms)
        .emit();
    let writer = Arc::new(Mutex::new(writer));
    write_frame(
        &writer,
        &WorkerMessage::Hello(WorkerHello {
            protocol: PROTOCOL_VERSION,
            pid: std::process::id() as u64,
            heartbeat_ms: opts.heartbeat_ms,
        }),
    )?;

    // The heartbeat ticker: runs for the whole session, reporting which
    // catalog index (if any) the job loop is currently inside. -1 in
    // the atomic means idle.
    let busy = Arc::new(AtomicI64::new(-1));
    let stop = Arc::new(AtomicBool::new(false));
    let ticker = (opts.heartbeat_ms > 0).then(|| {
        let writer = Arc::clone(&writer);
        let busy = Arc::clone(&busy);
        let stop = Arc::clone(&stop);
        let interval = Duration::from_millis(opts.heartbeat_ms);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let index = busy.load(Ordering::Relaxed);
            let frame = WorkerMessage::Heartbeat(WorkerHeartbeat {
                busy: (index >= 0).then_some(index as u64),
            });
            // A write failure means the coordinator hung up; the job
            // loop will hit the same wall and end the session.
            if write_frame(&writer, &frame).is_err() {
                break;
            }
            firm_obs::metrics().counter("worker.heartbeats.tx").inc();
        })
    });

    let result = serve_jobs(reader, &writer, &busy);

    stop.store(true, Ordering::Relaxed);
    if let Some(ticker) = ticker {
        let _ = ticker.join();
    }
    if result.is_ok() {
        // Session-end observability hand-off: ship this process's
        // cumulative metrics to the coordinator as the final frame.
        // Best-effort — a coordinator that already hung up after EOF
        // just misses diagnostics, it doesn't fail the session.
        let _ = write_frame(
            &writer,
            &WorkerMessage::Metrics(firm_obs::metrics().snapshot()),
        );
        firm_obs::event(Level::Debug, TARGET)
            .msg("session ended, metrics shipped")
            .emit();
    }
    result
}

/// The job loop proper: decode, run, respond.
fn serve_jobs<R: BufRead, W: Write>(
    reader: R,
    writer: &Mutex<W>,
    busy: &AtomicI64,
) -> Result<(), ServeError> {
    // The policy shipped by an earlier frame on this session; later
    // frames reference it with `reuse_policy` instead of re-sending
    // the weights.
    let mut cached_policy = None;
    let obs = firm_obs::metrics();
    let frames_rx = obs.counter("worker.frames.rx");
    let bytes_rx = obs.counter("worker.bytes.rx");
    let requests = obs.counter("worker.requests.total");
    for line in reader.lines() {
        let line = line.map_err(ServeError::Io)?;
        if line.trim().is_empty() {
            continue;
        }
        frames_rx.inc();
        bytes_rx.add(line.len() as u64 + 1);
        let req: WorkerRequest =
            firm_wire::decode_line(&line).map_err(|e| ServeError::BadFrame(e.to_string()))?;
        let policy = if req.reuse_policy {
            if cached_policy.is_none() {
                return Err(ServeError::BadFrame(format!(
                    "frame {} sets reuse_policy but no earlier frame carried a policy",
                    req.index
                )));
            }
            cached_policy.as_ref()
        } else {
            // Move, not clone: the checkpoint is a full weight set and
            // `req.policy` is never read again.
            cached_policy = req.policy;
            cached_policy.as_ref()
        };

        requests.inc();
        firm_obs::event(Level::Debug, TARGET)
            .msg("running scenario")
            .field("index", req.index)
            .field("scenario", req.scenario.name.as_str())
            .field("deploy", policy.is_some())
            .emit();
        busy.store(req.index as i64, Ordering::Relaxed);
        let (outcome, experience) =
            run_one_sharded(&req.scenario, req.seed, policy, req.intra_shards as usize);
        busy.store(-1, Ordering::Relaxed);

        write_frame(
            writer,
            &WorkerMessage::Response(Box::new(WorkerResponse {
                index: req.index,
                outcome,
                experience,
            })),
        )?;
    }
    Ok(())
}

/// Writes one whole frame under the lock and flushes, so heartbeat and
/// response frames never interleave mid-line.
fn write_frame<W: Write>(writer: &Mutex<W>, msg: &WorkerMessage) -> Result<(), ServeError> {
    let frame = firm_wire::encode_line(msg);
    let obs = firm_obs::metrics();
    obs.counter("worker.frames.tx").inc();
    obs.counter("worker.bytes.tx").add(frame.len() as u64);
    let mut w = writer.lock().expect("writer lock");
    w.write_all(frame.as_bytes()).map_err(ServeError::Io)?;
    w.flush().map_err(ServeError::Io)
}

/// Binds `addr` and serves one session per inbound connection, each on
/// its own thread, forever. This is the multi-node worker entry point
/// (`firm-fleet-worker --listen addr`).
///
/// A session that ends with an error (malformed frame, vanished peer)
/// is logged to stderr and dropped; the listener keeps accepting — a
/// supervisor reconnecting after it killed a wedged session must always
/// find the worker ready.
pub fn listen(addr: &str, opts: ServeOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    // The message keeps the exact `listening on <addr> ` shape: tooling
    // (and the TCP test harness) discovers an ephemeral port by parsing
    // this first stderr line.
    firm_obs::event(Level::Info, TARGET)
        .msg(format!("listening on {}", listener.local_addr()?))
        .field("protocol", PROTOCOL_VERSION)
        .field("heartbeat_ms", opts.heartbeat_ms)
        .emit();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                firm_obs::event(Level::Warn, TARGET)
                    .msg("accept failed")
                    .field("error", e.to_string())
                    .emit();
                continue;
            }
        };
        let opts = opts.clone();
        std::thread::spawn(move || serve_tcp_session(stream, &opts));
    }
    Ok(())
}

fn serve_tcp_session(stream: TcpStream, opts: &ServeOptions) {
    stream.set_nodelay(true).ok();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_string());
    let reader = match stream.try_clone() {
        Ok(read_half) => std::io::BufReader::new(read_half),
        Err(e) => {
            firm_obs::event(Level::Warn, TARGET)
                .msg("failed to clone session stream")
                .field("peer", peer)
                .field("error", e.to_string())
                .emit();
            return;
        }
    };
    match serve_session(reader, stream, opts) {
        Ok(()) => {}
        Err(e) => firm_obs::event(Level::Warn, TARGET)
            .msg("session failed")
            .field("peer", peer)
            .field("error", e.to_string())
            .emit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::scenario_seed;
    use crate::scenario::builtin_catalog;
    use firm_sim::SimDuration;

    /// Drives one in-memory session end to end: the handshake arrives
    /// first, every request gets a response, and heartbeats (if any)
    /// are valid frames interleaved at line granularity.
    #[test]
    fn a_session_handshakes_then_answers_every_request() {
        let scenario = builtin_catalog()
            .remove(4)
            .with_duration(SimDuration::from_secs(4));
        let frames: String = (0..2)
            .map(|i| {
                firm_wire::encode_line(&WorkerRequest {
                    index: i,
                    seed: scenario_seed(3, i as usize),
                    scenario: scenario.clone(),
                    policy: None,
                    reuse_policy: false,
                    intra_shards: 2,
                })
            })
            .collect();

        let out = SharedBuf::default();
        serve_session(
            frames.as_bytes(),
            out.clone(),
            &ServeOptions { heartbeat_ms: 1 },
        )
        .expect("session serves");

        let text = out.take();
        let mut hello = None;
        let mut responses = Vec::new();
        let mut heartbeats = 0;
        let mut metrics = Vec::new();
        for line in text.lines() {
            match firm_wire::decode_line::<WorkerMessage>(line).expect("valid frame") {
                WorkerMessage::Hello(h) => {
                    assert!(responses.is_empty(), "hello after a response");
                    hello = Some(h);
                }
                WorkerMessage::Heartbeat(_) => heartbeats += 1,
                WorkerMessage::Response(r) => responses.push(r.index),
                WorkerMessage::Metrics(m) => metrics.push(m),
            }
        }
        let hello = hello.expect("session sent a hello");
        assert_eq!(hello.protocol, PROTOCOL_VERSION);
        assert_eq!(hello.heartbeat_ms, 1);
        assert_eq!(responses, vec![0, 1]);
        assert!(heartbeats > 0, "1ms ticker never beat during two sims");

        // A clean session ends with exactly one metrics frame, as the
        // last frame, and it reflects the work this session did. The
        // snapshot is process-cumulative, so compare with >= — other
        // tests in this process may also serve sessions.
        assert_eq!(metrics.len(), 1, "expected one session-end metrics frame");
        assert!(
            text.lines()
                .last()
                .is_some_and(|l| l.contains("\"type\":\"metrics\"")),
            "metrics frame was not the session's final frame"
        );
        let snap = &metrics[0];
        let Some(firm_obs::MetricValue::Counter(n)) = snap.get("worker.requests.total") else {
            panic!("worker.requests.total missing from session metrics");
        };
        assert!(*n >= 2, "requests counter {n} < the 2 this session ran");
        assert!(snap.get("worker.frames.tx").is_some());
        assert!(snap.get("worker.bytes.rx").is_some());
    }

    #[test]
    fn reuse_policy_without_a_cached_policy_is_a_bad_frame() {
        let scenario = builtin_catalog()
            .remove(4)
            .with_duration(SimDuration::from_secs(4));
        let frame = firm_wire::encode_line(&WorkerRequest {
            index: 0,
            seed: 1,
            scenario,
            policy: None,
            reuse_policy: true,
            intra_shards: 1,
        });
        let err = serve_session(
            frame.as_bytes(),
            SharedBuf::default(),
            &ServeOptions { heartbeat_ms: 0 },
        )
        .expect_err("session must reject the frame");
        assert!(matches!(err, ServeError::BadFrame(_)), "{err}");
    }

    /// A cloneable in-memory sink (`serve_session` wants `W: Send +
    /// 'static`, which rules out `&mut Vec<u8>`).
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn take(&self) -> String {
            String::from_utf8(std::mem::take(&mut self.0.lock().unwrap())).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
