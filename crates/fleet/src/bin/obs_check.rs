//! `obs-check` — parse-or-fail validator for `--obs-out` JSONL files.
//!
//! Every line an observability export contains must be a firm-wire
//! frame this workspace can decode: a structured `event`, a `metrics`
//! snapshot, or a fleet `ops_report`. CI runs this over the smoke
//! fleet's export so a frame-format regression fails the build instead
//! of silently producing artifacts nothing can read.
//!
//! ```sh
//! obs-check obs.jsonl
//! ```
//!
//! Exits 0 and prints per-tag counts when every line decodes; exits 1
//! with the offending line number and decode error otherwise.

use std::io::Write;
use std::process::ExitCode;

use firm_fleet::OpsReport;
use firm_obs::{EventRecord, MetricsSnapshot};
use firm_wire::{decode_string, JsonValue, WireDecode};

fn check_line(line: &str) -> Result<&'static str, String> {
    let v: JsonValue = decode_string(line).map_err(|e| format!("not valid wire JSON: {e}"))?;
    let tag = v.tag().map_err(|e| format!("missing `type` tag: {e}"))?;
    match tag {
        "event" => EventRecord::decode(&v)
            .map(|_| "event")
            .map_err(|e| format!("bad event frame: {e}")),
        "metrics" => MetricsSnapshot::decode(&v)
            .map(|_| "metrics")
            .map_err(|e| format!("bad metrics frame: {e}")),
        "ops_report" => OpsReport::decode(&v)
            .map(|_| "ops_report")
            .map_err(|e| format!("bad ops_report frame: {e}")),
        other => Err(format!("unknown frame type `{other}`")),
    }
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.first().is_some_and(|a| a == "--help" || a == "-h") {
        println!("usage: obs-check FILE.jsonl [FILE.jsonl ...]");
        println!("validates that every line is a decodable firm-wire obs frame");
        return ExitCode::SUCCESS;
    }
    if paths.is_empty() {
        paths.push("obs.jsonl".to_string());
    }

    let mut failed = false;
    for path in &paths {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                let _ = writeln!(std::io::stderr(), "obs-check: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let mut events = 0u64;
        let mut metrics = 0u64;
        let mut ops_reports = 0u64;
        let mut bad = 0u64;
        for (i, line) in contents.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match check_line(line) {
                Ok("event") => events += 1,
                Ok("metrics") => metrics += 1,
                Ok(_) => ops_reports += 1,
                Err(e) => {
                    let _ = writeln!(std::io::stderr(), "obs-check: {path}:{}: {e}", i + 1);
                    bad += 1;
                }
            }
        }
        let total = events + metrics + ops_reports;
        if bad > 0 || total == 0 {
            let _ = writeln!(
                std::io::stderr(),
                "obs-check: {path}: FAIL ({bad} bad line(s), {total} valid frame(s))"
            );
            failed = true;
        } else {
            println!(
                "obs-check: {path}: ok — {events} event(s), {metrics} metrics \
                 snapshot(s), {ops_reports} ops report(s)"
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
