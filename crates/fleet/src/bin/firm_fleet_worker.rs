//! `firm-fleet-worker` — the fleet's subprocess work unit.
//!
//! Reads newline-delimited [`WorkerRequest`] wire frames on stdin, runs
//! each scenario to completion with `run_one_with`, and writes one
//! [`WorkerResponse`] frame per job on stdout (flushed per job, so the
//! coordinator can stream results). Exits 0 on EOF; exits 2 with a
//! spanned error on stderr if a frame is malformed — the coordinator
//! treats any nonzero exit as a failed fleet run.
//!
//! The worker is deliberately dumb: no seed derivation, no ordering, no
//! training. All of that stays at the coordinator; this binary is
//! `decode → simulate → encode`, which is exactly what makes the
//! multi-process fleet bit-identical to the in-process one.
//!
//! ```sh
//! printf '%s\n' "$REQUEST_FRAME" | firm-fleet-worker
//! ```

use std::io::{BufRead, BufWriter, Write};

use firm_fleet::exec::run_one_with;
use firm_fleet::protocol::{WorkerRequest, WorkerResponse};

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    // The policy shipped by an earlier frame on this connection; later
    // frames reference it with `reuse_policy` instead of re-sending the
    // weights.
    let mut cached_policy = None;

    for line in stdin.lock().lines() {
        let line = line.expect("read request frame from stdin");
        if line.trim().is_empty() {
            continue;
        }
        let req: WorkerRequest = match firm_wire::decode_line(&line) {
            Ok(req) => req,
            Err(e) => {
                eprintln!("firm-fleet-worker: bad request frame: {e}");
                std::process::exit(2);
            }
        };
        let policy = if req.reuse_policy {
            if cached_policy.is_none() {
                eprintln!(
                    "firm-fleet-worker: frame {} sets reuse_policy but no \
                     earlier frame carried a policy",
                    req.index
                );
                std::process::exit(2);
            }
            cached_policy.as_ref()
        } else {
            if let Some(p) = req.policy {
                cached_policy = Some(p);
            } else {
                cached_policy = None;
            }
            cached_policy.as_ref()
        };
        let (outcome, experience) = run_one_with(&req.scenario, req.seed, policy);
        let resp = WorkerResponse {
            index: req.index,
            outcome,
            experience,
        };
        out.write_all(firm_wire::encode_line(&resp).as_bytes())
            .expect("write response frame to stdout");
        out.flush().expect("flush stdout");
    }
}
