//! `firm-fleet-worker` — the fleet's worker process, for both
//! transports.
//!
//! **stdio mode** (default): serves one coordinator session over
//! stdin/stdout — the [`firm_fleet::transport::PipeTransport`] peer,
//! spawned and supervised by the runner itself. Exits 0 on EOF; exits 2
//! with a spanned error on stderr if a frame is malformed (the
//! supervisor treats that as a worker failure and re-dispatches).
//!
//! **TCP mode** (`--listen addr`): binds `addr` and serves one session
//! per inbound connection, each on its own thread, forever — the
//! [`firm_fleet::transport::TcpTransport`] peer, started once per host
//! by an operator:
//!
//! ```sh
//! firm-fleet-worker --listen 0.0.0.0:7401
//! ```
//!
//! Every session speaks the same protocol regardless of mode: a
//! `hello` handshake frame (protocol version, pid, heartbeat interval),
//! heartbeat frames every `--heartbeat-ms` (default 200, 0 disables),
//! and one response frame per request. The worker is deliberately dumb:
//! no seed derivation, no ordering, no training — `decode → simulate →
//! encode`, which is exactly what makes a distributed fleet
//! bit-identical to the in-process one.

use firm_fleet::worker::{listen, serve_session, ServeError, ServeOptions};

fn main() {
    let mut opts = ServeOptions::default();
    let mut listen_addr: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen_addr = Some(args.next().unwrap_or_else(|| usage("--listen needs addr")));
            }
            "--heartbeat-ms" => {
                opts.heartbeat_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--heartbeat-ms needs a number"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    match listen_addr {
        Some(addr) => {
            if let Err(e) = listen(&addr, opts) {
                eprintln!("firm-fleet-worker: listen on {addr}: {e}");
                std::process::exit(1);
            }
        }
        None => {
            let stdin = std::io::stdin();
            match serve_session(stdin.lock(), std::io::stdout(), &opts) {
                Ok(()) => {}
                Err(e @ ServeError::BadFrame(_)) => {
                    eprintln!("firm-fleet-worker: {e}");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("firm-fleet-worker: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("firm-fleet-worker: {problem}");
    }
    eprintln!(
        "usage: firm-fleet-worker [--listen host:port] [--heartbeat-ms N]\n\
         \n\
         stdio mode (default): serve one coordinator session on stdin/stdout.\n\
         --listen host:port    serve a session per TCP connection, forever.\n\
         --heartbeat-ms N      liveness pulse interval (default 200, 0 disables)."
    );
    std::process::exit(if problem.is_empty() { 0 } else { 64 });
}
