//! `firm-fleet-worker` — the fleet's worker process, for both
//! transports.
//!
//! **stdio mode** (default): serves one coordinator session over
//! stdin/stdout — the [`firm_fleet::transport::PipeTransport`] peer,
//! spawned and supervised by the runner itself. Exits 0 on EOF; exits 2
//! with a spanned error on stderr if a frame is malformed (the
//! supervisor treats that as a worker failure and re-dispatches).
//!
//! **TCP mode** (`--listen addr`): binds `addr` and serves one session
//! per inbound connection, each on its own thread, forever — the
//! [`firm_fleet::transport::TcpTransport`] peer, started once per host
//! by an operator:
//!
//! ```sh
//! FIRM_LOG=debug firm-fleet-worker --listen 0.0.0.0:7401 --obs-out obs.jsonl
//! ```
//!
//! Every session speaks the same protocol regardless of mode: a
//! `hello` handshake frame (protocol version, pid, heartbeat interval),
//! heartbeat frames every `--heartbeat-ms` (default 200, 0 disables),
//! one response frame per request, and a `metrics` frame at session
//! end. The worker is deliberately dumb: no seed derivation, no
//! ordering, no training — `decode → simulate → encode`, which is
//! exactly what makes a distributed fleet bit-identical to the
//! in-process one.
//!
//! Observability: `--log-level` (or the `FIRM_LOG` env var; the flag
//! wins) filters the structured event stream; events at `info` and
//! above render to stderr as human-readable lines. `--obs-out PATH`
//! writes the buffered events plus a final metrics snapshot as
//! firm-wire JSONL on exit (stdio mode) — all of it out-of-band, never
//! touching a result byte.

use std::io::Write;

use firm_fleet::worker::{listen, serve_session, ServeError, ServeOptions};
use firm_obs::Level;

const TARGET: &str = "firm-fleet-worker";

fn main() {
    let mut opts = ServeOptions::default();
    let mut listen_addr: Option<String> = None;
    let mut obs_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen_addr = Some(args.next().unwrap_or_else(|| usage("--listen needs addr")));
            }
            "--heartbeat-ms" => {
                opts.heartbeat_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--heartbeat-ms needs a number"));
            }
            "--log-level" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage("--log-level needs off|error|warn|info|debug|trace"));
                match firm_obs::parse_filter(&raw) {
                    Ok(level) => firm_obs::set_level(level),
                    Err(e) => usage(&e),
                }
            }
            "--obs-out" => {
                obs_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--obs-out needs a path")),
                );
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    match listen_addr {
        Some(addr) => {
            // TCP mode runs forever; an --obs-out file it could never
            // finish writing would always be empty, so refuse it up
            // front instead of surprising the operator at teardown.
            if obs_out.is_some() {
                usage("--obs-out applies to stdio mode (TCP mode never exits)");
            }
            if let Err(e) = listen(&addr, opts) {
                firm_obs::event(Level::Error, TARGET)
                    .msg("listen failed")
                    .field("addr", addr)
                    .field("error", e.to_string())
                    .emit();
                std::process::exit(1);
            }
        }
        None => {
            let stdin = std::io::stdin();
            let result = serve_session(stdin.lock(), std::io::stdout(), &opts);
            if let Some(path) = &obs_out {
                write_obs_out(path);
            }
            match result {
                Ok(()) => {}
                Err(e @ ServeError::BadFrame(_)) => {
                    firm_obs::event(Level::Error, TARGET)
                        .msg("session failed")
                        .field("error", e.to_string())
                        .emit();
                    std::process::exit(2);
                }
                Err(e) => {
                    firm_obs::event(Level::Error, TARGET)
                        .msg("session failed")
                        .field("error", e.to_string())
                        .emit();
                    std::process::exit(1);
                }
            }
        }
    }
}

/// Exports the run's observability as firm-wire JSONL: every buffered
/// event, then one final metrics snapshot frame.
fn write_obs_out(path: &str) {
    let mut jsonl = firm_obs::drain_events_jsonl();
    jsonl.push_str(&firm_wire::encode_line(&firm_obs::metrics().snapshot()));
    if let Err(e) = std::fs::write(path, jsonl) {
        firm_obs::event(Level::Error, TARGET)
            .msg("failed to write --obs-out file")
            .field("path", path)
            .field("error", e.to_string())
            .emit();
    }
}

fn usage(problem: &str) -> ! {
    let mut out = String::new();
    if !problem.is_empty() {
        out.push_str(&format!("firm-fleet-worker: {problem}\n"));
    }
    out.push_str(
        "usage: firm-fleet-worker [--listen host:port] [--heartbeat-ms N]\n\
         \x20                        [--log-level LEVEL] [--obs-out PATH]\n\
         \n\
         stdio mode (default): serve one coordinator session on stdin/stdout.\n\
         --listen host:port    serve a session per TCP connection, forever.\n\
         --heartbeat-ms N      liveness pulse interval (default 200, 0 disables).\n\
         --log-level LEVEL     off|error|warn|info|debug|trace (overrides FIRM_LOG).\n\
         --obs-out PATH        write events + metrics as firm-wire JSONL on exit\n\
         \x20                     (stdio mode only).\n",
    );
    let _ = std::io::stderr().write_all(out.as_bytes());
    std::process::exit(if problem.is_empty() { 0 } else { 64 });
}
