//! How frames reach a worker: the [`Transport`] abstraction.
//!
//! The fleet protocol ([`crate::protocol`]) is a byte stream of
//! newline-delimited wire frames in each direction, so a transport only
//! has to provide three things: a writable half, a readable half, and a
//! way to terminate the peer. Two implementations exist:
//!
//! * [`PipeTransport`] — spawns a `firm-fleet-worker` subprocess on
//!   this host and speaks frames over its stdin/stdout (the original
//!   single-host sharding path). Reconnecting respawns the binary, so
//!   the supervisor's restart-and-replay works out of the box.
//! * [`TcpTransport`] — connects to a `firm-fleet-worker --listen addr`
//!   on any host and speaks the *same* frames over the socket. The
//!   initial connect retries patiently (workers are often still binding
//!   when the runner starts); a *re*connect after a failure retries
//!   with bounded exponential backoff inside a shorter window — long
//!   enough to ride out a worker restart or a transient partition,
//!   short enough that a worker that is gone for good does not stall
//!   redistribution of its work.
//!
//! The codec does not change between transports — a frame captured from
//! a pipe byte-for-byte equals the same frame on a socket — which is
//! why the fleet's bit-identity guarantee carries to multi-node
//! deployments unchanged: the transport moves bytes, the catalog index
//! orders results, and nothing else has an opinion.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One live byte-stream session with a worker, as produced by
/// [`Transport::connect`]. The supervisor moves the halves onto
/// dedicated writer/reader threads and keeps the control handle for
/// itself.
pub struct Connection {
    /// The coordinator→worker half (request frames).
    pub writer: Box<dyn Write + Send>,
    /// The worker→coordinator half (hello/heartbeat/response frames).
    pub reader: Box<dyn BufRead + Send>,
    /// Out-of-band termination and cleanup.
    pub control: Box<dyn ConnectionControl>,
}

/// Out-of-band control over one connection: forceful termination (for
/// presumed-wedged workers) and graceful teardown (after EOF).
pub trait ConnectionControl: Send {
    /// Forcefully terminates the session: kills the subprocess or shuts
    /// the socket down in both directions. Unblocks any reader thread
    /// parked on the stream. Idempotent.
    fn kill(&mut self);

    /// Gracefully finishes after the writer half has been dropped
    /// (which signals EOF to the worker): reaps the subprocess / closes
    /// the socket. Returns an error if the worker exited abnormally.
    fn finish(&mut self) -> io::Result<()>;
}

/// A way to open (and re-open) sessions with one worker slot.
///
/// `connect` is called once at fleet start and again each time the
/// supervisor replaces a failed connection; an `Err` from a reconnect
/// marks the slot dead and its work is redistributed to the survivors.
pub trait Transport: Send {
    /// A human-readable name for failure messages, e.g.
    /// `pipe:firm-fleet-worker` or `tcp:10.0.0.7:7401`.
    fn label(&self) -> String;

    /// Opens a fresh session with the worker.
    fn connect(&mut self) -> io::Result<Connection>;
}

// ---------------------------------------------------------------------
// Subprocess pipes.
// ---------------------------------------------------------------------

/// Frames over a spawned `firm-fleet-worker`'s stdin/stdout.
pub struct PipeTransport {
    bin: PathBuf,
}

impl PipeTransport {
    /// A transport that spawns `bin` for each session.
    pub fn new(bin: PathBuf) -> Self {
        PipeTransport { bin }
    }
}

struct PipeControl {
    child: Child,
}

impl ConnectionControl for PipeControl {
    fn kill(&mut self) {
        // Kill + wait: the wait both reaps the zombie and guarantees
        // the stdout pipe is closed, so the reader thread unparks.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn finish(&mut self) -> io::Result<()> {
        let status = self.child.wait()?;
        if status.success() {
            Ok(())
        } else {
            Err(io::Error::other(format!("worker exited with {status}")))
        }
    }
}

impl Transport for PipeTransport {
    fn label(&self) -> String {
        format!(
            "pipe:{}",
            self.bin
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| self.bin.display().to_string())
        )
    }

    fn connect(&mut self) -> io::Result<Connection> {
        let mut child = Command::new(&self.bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let writer = child.stdin.take().expect("worker stdin piped");
        let reader = BufReader::new(child.stdout.take().expect("worker stdout piped"));
        Ok(Connection {
            writer: Box::new(writer),
            reader: Box::new(reader),
            control: Box::new(PipeControl { child }),
        })
    }
}

// ---------------------------------------------------------------------
// TCP sockets.
// ---------------------------------------------------------------------

/// Frames over a TCP socket to a `firm-fleet-worker --listen addr`.
pub struct TcpTransport {
    addr: String,
    connect_window: Duration,
    reconnect_window: Duration,
    connected_before: bool,
}

impl TcpTransport {
    /// How long the *initial* connect keeps retrying before giving up —
    /// generous because runners and workers usually start together and
    /// the worker may not have bound its listener yet.
    pub const DEFAULT_CONNECT_WINDOW: Duration = Duration::from_secs(10);

    /// How long a *re*connect after a failure keeps retrying. Shorter
    /// than the initial window: a reconnect blocks the supervisor's
    /// recycle of this slot, and a worker that does not come back
    /// within a couple of seconds should have its work redistributed.
    pub const DEFAULT_RECONNECT_WINDOW: Duration = Duration::from_secs(2);

    /// The first backoff sleep; doubles per failed dial attempt.
    const BACKOFF_FLOOR: Duration = Duration::from_millis(25);

    /// Backoff sleeps never exceed this.
    const BACKOFF_CAP: Duration = Duration::from_millis(400);

    /// A transport that dials `addr` (e.g. `127.0.0.1:7401`).
    pub fn new(addr: impl Into<String>) -> Self {
        TcpTransport {
            addr: addr.into(),
            connect_window: Self::DEFAULT_CONNECT_WINDOW,
            reconnect_window: Self::DEFAULT_RECONNECT_WINDOW,
            connected_before: false,
        }
    }

    /// Overrides the initial-connect retry window.
    pub fn connect_window(mut self, window: Duration) -> Self {
        self.connect_window = window;
        self
    }

    /// Overrides the reconnect-after-failure retry window.
    pub fn reconnect_window(mut self, window: Duration) -> Self {
        self.reconnect_window = window;
        self
    }
}

struct TcpControl {
    stream: TcpStream,
}

impl ConnectionControl for TcpControl {
    /// "Kill" over TCP reaches only the connection, not the peer: the
    /// worker's session thread notices the dead socket at its next read
    /// or write, but a simulation already in flight runs to completion
    /// on the worker's CPU first (there is no remote signal to abort
    /// it). The supervisor's replay correctness never depends on the
    /// orphaned computation — its eventual response dies with the
    /// connection — it is purely wasted remote work.
    fn kill(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn finish(&mut self) -> io::Result<()> {
        // The write half is already closed (writer dropped); shutting
        // down the rest is best-effort — the worker stays alive to
        // serve its next session.
        let _ = self.stream.shutdown(Shutdown::Both);
        Ok(())
    }
}

/// A write handle whose `Drop` half-closes the socket, mirroring how
/// dropping a `ChildStdin` sends EOF to a subprocess — the worker's
/// serve loop sees end-of-input and finishes the session cleanly.
struct TcpWriteHalf(TcpStream);

impl Write for TcpWriteHalf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl Drop for TcpWriteHalf {
    fn drop(&mut self) {
        let _ = self.0.shutdown(Shutdown::Write);
    }
}

impl Transport for TcpTransport {
    fn label(&self) -> String {
        format!("tcp:{}", self.addr)
    }

    fn connect(&mut self) -> io::Result<Connection> {
        // A reconnect-after-failure gets the same retry treatment as
        // the initial connect, just inside a tighter window: bounded
        // exponential backoff until the deadline, then the slot is
        // declared dead and its work redistributed. Each backoff sleep
        // lands in the `fleet.reconnect.backoff_us` histogram.
        let reconnect = self.connected_before;
        let window = if reconnect {
            self.reconnect_window
        } else {
            self.connect_window
        };
        let deadline = Instant::now() + window;
        let backoff_hist =
            reconnect.then(|| firm_obs::metrics().histogram("fleet.reconnect.backoff_us"));
        let mut backoff = Self::BACKOFF_FLOOR;
        let stream = loop {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => break stream,
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => {
                    let sleep = backoff.min(deadline.saturating_duration_since(Instant::now()));
                    if let Some(hist) = &backoff_hist {
                        hist.record(sleep.as_micros() as u64);
                    }
                    std::thread::sleep(sleep);
                    backoff = (backoff * 2).min(Self::BACKOFF_CAP);
                }
            }
        };
        self.connected_before = true;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        let control = TcpControl {
            stream: stream.try_clone()?,
        };
        Ok(Connection {
            writer: Box::new(TcpWriteHalf(stream)),
            reader: Box::new(BufReader::new(ReadHalf(read_half))),
            control: Box::new(control),
        })
    }
}

/// A read handle over a cloned stream (keeps the reader thread's
/// borrow separate from the writer's).
struct ReadHalf(TcpStream);

impl Read for ReadHalf {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn tcp_transport_retries_until_the_listener_binds() {
        // Reserve a port, then release it so the first connects fail.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);

        let addr2 = addr.clone();
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            // Retry the rebind: a concurrent test could briefly grab
            // the port during the release window above.
            let listener = loop {
                match TcpListener::bind(&addr2) {
                    Ok(l) => break l,
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            };
            let (mut sock, _) = listener.accept().expect("accept");
            sock.write_all(b"{\"ok\":true}\n").expect("write");
        });

        let mut transport = TcpTransport::new(addr).connect_window(Duration::from_secs(5));
        let mut conn = transport.connect().expect("connect retried until bind");
        let mut line = String::new();
        conn.reader.read_line(&mut line).expect("read");
        assert_eq!(line, "{\"ok\":true}\n");
        server.join().expect("server thread");
    }

    #[test]
    fn tcp_reconnect_retries_with_backoff_until_the_worker_returns() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let first = std::thread::spawn(move || {
            let _ = listener.accept();
            // Dropping the listener takes the worker "down"; the
            // restart below brings it back on the same port.
        });

        let mut transport = TcpTransport::new(addr.clone())
            .connect_window(Duration::from_secs(5))
            .reconnect_window(Duration::from_secs(5));
        let conn = transport.connect().expect("first connect");
        drop(conn);
        first.join().expect("first server thread");

        // The worker restarts ~200 ms later; the reconnect's backoff
        // retries must ride out the gap instead of failing on the
        // first refused dial.
        let addr2 = addr.clone();
        let restarted = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            let listener = loop {
                match TcpListener::bind(&addr2) {
                    Ok(l) => break l,
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            };
            let (mut sock, _) = listener.accept().expect("accept");
            sock.write_all(b"{\"back\":true}\n").expect("write");
        });
        let mut conn = transport
            .connect()
            .expect("reconnect retried until restart");
        let mut line = String::new();
        conn.reader.read_line(&mut line).expect("read");
        assert_eq!(line, "{\"back\":true}\n");
        restarted.join().expect("restarted server thread");
    }

    #[test]
    fn tcp_reconnect_gives_up_after_its_bounded_window() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let _ = listener.accept();
        });

        let mut transport = TcpTransport::new(addr)
            .connect_window(Duration::from_secs(5))
            .reconnect_window(Duration::from_millis(300));
        let conn = transport.connect().expect("first connect");
        drop(conn);
        server.join().expect("server thread");
        // The worker is gone for good: the reconnect must retry only
        // within its own bounded window, never the full initial one.
        let start = Instant::now();
        assert!(transport.connect().is_err());
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(3),
            "reconnect overshot its bounded window: {elapsed:?}"
        );
    }

    #[test]
    fn pipe_transport_labels_name_the_binary() {
        let t = PipeTransport::new(PathBuf::from("/x/y/firm-fleet-worker"));
        assert_eq!(t.label(), "pipe:firm-fleet-worker");
        assert_eq!(TcpTransport::new("1.2.3.4:7").label(), "tcp:1.2.3.4:7");
    }
}
